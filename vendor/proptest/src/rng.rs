//! Deterministic PRNG (SplitMix64) used by all strategies.

/// A small, fast, deterministic random generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi]` inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `num / den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        debug_assert!(den > 0);
        (self.next_u64() % den as u64) < num as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range_u64(5, 9);
            assert!((5..=9).contains(&v));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
