//! `any::<T>()` and the [`Arbitrary`] trait.

use std::marker::PhantomData;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy over the full value range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values across a wide magnitude range.

        rng.unit_f64() * 2e12 - 1e12
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::pattern::Pattern::parse("\\PC")
            .generate(rng)
            .chars()
            .next()
            .expect("one char")
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::new(9);
        let mut bytes = std::collections::HashSet::new();
        for _ in 0..200 {
            bytes.insert(any::<u8>().generate(&mut rng));
        }
        assert!(bytes.len() > 50);
        let f = any::<f64>().generate(&mut rng);
        assert!(f.is_finite());
    }
}
