//! Tiny string-pattern generator covering the regex subset this workspace
//! uses in strategies: character classes `[a-z0-9 @#!.,$]` (with ranges),
//! the printable-character class `\PC`, literal characters, and `{m}` /
//! `{m,n}` repeat counts.

use crate::rng::TestRng;

const UNICODE_EXTRAS: &[char] = &['é', 'ß', 'Ω', 'д', 'ç', 'ñ', '中', '🙂', '€', '—', 'а', 'ö'];

#[derive(Debug, Clone)]
enum Atom {
    /// Explicit character set.
    Class(Vec<char>),
    /// Any printable character (`\PC`): ASCII graphic/space plus a sprinkle
    /// of multi-byte codepoints so UTF-8 handling gets exercised.
    Printable,
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A parsed pattern: a sequence of repeated atoms.
#[derive(Debug, Clone)]
pub struct Pattern {
    pieces: Vec<Piece>,
}

impl Pattern {
    /// Parse `src`; panics on syntax this mini-engine does not support, so
    /// unsupported patterns fail loudly at test time rather than silently
    /// generating the wrong language.
    pub fn parse(src: &str) -> Pattern {
        let chars: Vec<char> = src.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {src:?}"));
                    let set = parse_class(&chars[i + 1..close], src);
                    i = close + 1;
                    Atom::Class(set)
                }
                '\\' => {
                    let tail: String = chars[i + 1..].iter().take(2).collect();
                    if tail.starts_with("PC") {
                        i += 3;
                        Atom::Printable
                    } else {
                        let c = *chars
                            .get(i + 1)
                            .unwrap_or_else(|| panic!("dangling escape in pattern {src:?}"));
                        i += 2;
                        Atom::Literal(c)
                    }
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {src:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in {src:?}")),
                        hi.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in {src:?}")),
                    ),
                    None => {
                        let n = body
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat in {src:?}"));
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted repeat in pattern {src:?}");
            pieces.push(Piece { atom, min, max });
        }
        Pattern { pieces }
    }

    /// Generate one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                match &piece.atom {
                    Atom::Class(set) => out.push(set[rng.below(set.len())]),
                    Atom::Literal(c) => out.push(*c),
                    Atom::Printable => out.push(printable(rng)),
                }
            }
        }
        out
    }
}

fn parse_class(body: &[char], src: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in pattern {src:?}");
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            assert!(lo <= hi, "inverted class range in pattern {src:?}");
            for cp in lo..=hi {
                if let Some(c) = char::from_u32(cp) {
                    set.push(c);
                }
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

fn printable(rng: &mut TestRng) -> char {
    if rng.ratio(1, 8) {
        UNICODE_EXTRAS[rng.below(UNICODE_EXTRAS.len())]
    } else {
        // ASCII space through tilde.
        char::from_u32(32 + rng.below(95) as u32).expect("printable ascii")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_range_and_repeat() {
        let p = Pattern::parse("[a-d]{0,12}");
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = p.generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn mixed_class_literals() {
        let p = Pattern::parse("[a-z0-9 @#!.,$]{0,60}");
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let s = p.generate(&mut rng);
            assert!(s.chars().count() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " @#!.,$".contains(c)));
        }
    }

    #[test]
    fn printable_class_produces_valid_utf8_strings() {
        let p = Pattern::parse("\\PC{0,16}");
        let mut rng = TestRng::new(3);
        let mut saw_multibyte = false;
        for _ in 0..500 {
            let s = p.generate(&mut rng);
            assert!(s.chars().count() <= 16);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            saw_multibyte |= s.len() != s.chars().count();
        }
        assert!(saw_multibyte, "unicode extras should appear");
    }

    #[test]
    fn single_char_class_defaults_to_one() {
        let p = Pattern::parse("[a-c]");
        let mut rng = TestRng::new(4);
        for _ in 0..50 {
            assert_eq!(p.generate(&mut rng).chars().count(), 1);
        }
    }

    #[test]
    fn exact_repeat() {
        let p = Pattern::parse("[x]{3}");
        let mut rng = TestRng::new(5);
        assert_eq!(p.generate(&mut rng), "xxx");
    }
}
