//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// An inclusive size interval, converted from the usual range syntaxes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed size.
    pub min: usize,
    /// Largest allowed size.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below(self.max - self.min + 1)
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`; duplicate keys collapse, so the map may
/// come out smaller than the drawn size (matching proptest semantics of a
/// best-effort size).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        for _ in 0..n {
            out.insert(self.key.generate(rng), self.value.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_respect_range() {
        let strat = vec(0u8..=9, 2..5);
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x <= 9));
        }
    }

    #[test]
    fn nested_vec() {
        let strat = vec(vec(0usize..3, 1..3), 1..4);
        let mut rng = TestRng::new(2);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty());
    }

    #[test]
    fn btree_map_bounded() {
        let strat = btree_map("[a-c]", 0u8..5, 0..6);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let m = strat.generate(&mut rng);
            assert!(m.len() < 6);
        }
    }
}
