//! Character strategies.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Uniform characters in `[lo, hi]` (inclusive); surrogate gaps are
/// re-rolled.
pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "inverted char range");
    CharRange { lo, hi }
}

/// See [`range`].
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    lo: char,
    hi: char,
}

impl Strategy for CharRange {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        loop {
            let cp = rng.range_u64(self.lo as u64, self.hi as u64) as u32;
            if let Some(c) = char::from_u32(cp) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_range() {
        let strat = range('a', 'z');
        let mut rng = TestRng::new(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let c = strat.generate(&mut rng);
            assert!(c.is_ascii_lowercase());
            seen.insert(c);
        }
        assert!(seen.len() > 20, "covers most of the range");
    }
}
