//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Module alias so `prop::sample::Index` etc. resolve, as in real proptest.
pub use crate as prop;
