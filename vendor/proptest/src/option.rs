//! `Option` strategies.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// `Some` with probability 3/4, `None` with probability 1/4.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.ratio(1, 4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let strat = of(0u8..=255);
        let mut rng = TestRng::new(1);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..400 {
            match strat.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 100 && none > 20, "some={some} none={none}");
    }
}
