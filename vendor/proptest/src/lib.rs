//! Vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_recursive` and boxing, `any::<T>()`, string-pattern strategies
//! (`"[a-z]{1,6}"`, `"\\PC{0,16}"`), numeric range strategies, tuples,
//! [`collection::vec`] / [`collection::btree_map`], [`option::of`],
//! [`sample::subsequence`] / [`sample::Index`], [`char::range`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test PRNG (seeded from the test name, overridable
//! case count via `PROPTEST_CASES`), and failing cases are **not shrunk**
//! — the failing case index is reported instead so the run can be replayed.

pub mod arbitrary;
pub mod char;
pub mod collection;
pub mod option;
pub mod pattern;
pub mod prelude;
pub mod rng;
pub mod sample;
pub mod strategy;

pub use arbitrary::{any, Arbitrary};
pub use rng::TestRng;

/// Number of cases each property runs, from `PROPTEST_CASES` (default 48).
pub fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Deterministic RNG for one (test, case) pair.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(seed ^ ((case as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15)
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item expands to a normal test that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases_from_env();
                for case in 0..cases {
                    let mut __cx_rng = $crate::test_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __cx_rng);
                    )+
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {case}/{cases} of `{}` failed (replay: deterministic seed)",
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )+
    };
}

/// Assert inside a property body (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
