//! Sampling strategies: random indexes and subsequences.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A generated index that projects onto any runtime collection length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Wrap a raw value.
    pub fn new(raw: usize) -> Self {
        Index { raw }
    }

    /// Project onto `[0, len)`; `len` must be nonzero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.raw % len
    }
}

/// Strategy for order-preserving subsequences of `items` whose length is
/// drawn from `size` (clamped to the collection length).
pub fn subsequence<T: Clone>(
    items: Vec<T>,
    size: impl Into<crate::collection::SizeRange>,
) -> SubsequenceStrategy<T> {
    SubsequenceStrategy {
        items,
        size: size.into(),
    }
}

/// See [`subsequence`].
pub struct SubsequenceStrategy<T> {
    items: Vec<T>,
    size: crate::collection::SizeRange,
}

impl<T: Clone> Strategy for SubsequenceStrategy<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let want = self.size.pick(rng).min(self.items.len());
        // Floyd's algorithm for `want` distinct indices, then sort to keep
        // original order.
        let mut picked: Vec<usize> = Vec::with_capacity(want);
        let n = self.items.len();
        for j in n - want..n {
            let t = rng.below(j + 1);
            if picked.contains(&t) {
                picked.push(j);
            } else {
                picked.push(t);
            }
        }
        picked.sort_unstable();
        picked.into_iter().map(|i| self.items[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_projects() {
        let i = Index::new(1_000_003);
        assert!(i.index(7) < 7);
        assert_eq!(i.index(1), 0);
    }

    #[test]
    fn subsequence_preserves_order_and_size() {
        let strat = subsequence(vec![1, 2, 3, 4, 5], 1..4);
        let mut rng = TestRng::new(6);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..4).contains(&s.len()));
            for w in s.windows(2) {
                assert!(w[0] < w[1], "order preserved: {s:?}");
            }
        }
    }

    #[test]
    fn subsequence_size_clamps_to_len() {
        let strat = subsequence(vec![1, 2], 1..10);
        let mut rng = TestRng::new(7);
        for _ in 0..50 {
            assert!(strat.generate(&mut rng).len() <= 2);
        }
    }
}
