//! The [`Strategy`] trait and core combinators.

use std::rc::Rc;

use crate::pattern::Pattern;
use crate::rng::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Box into a clonable, dynamically-typed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// level below and returns the strategy for the level above. `depth`
    /// bounds nesting; the remaining size hints are accepted for API
    /// compatibility and unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            // Lean toward leaves so expected tree size stays bounded.
            strat = Union::weighted(vec![(2, leaf.clone()), (1, deeper)]).boxed();
        }
        strat
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies of the same value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    /// Uniform choice over `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice over `(weight, strategy)` arms.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "Union requires at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "Union requires positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.range_u64(0, self.total_weight as u64 - 1) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// String-pattern strategies: `"[a-z]{1,6}"`, `"\\PC{0,16}"`, literals.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        Pattern::parse(self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_u64(self.start as u64, self.end as u64 - 1) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_u64(*self.start() as u64, *self.end() as u64) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.range_u64(0, span - 1) as i64) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i64).wrapping_sub(*self.start() as i64) as u64;
                    (*self.start() as i64).wrapping_add(rng.range_u64(0, span) as i64) as $t
                }
            }
        )+
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_map_and_union() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = (0usize..8).generate(&mut rng);
            assert!(v < 8);
            let v = (1u8..=255).generate(&mut rng);
            assert!(v >= 1);
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
        let doubled = (0usize..4).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert!(doubled.generate(&mut rng) % 2 == 0);
        }
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }
}
