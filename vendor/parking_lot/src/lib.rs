//! Vendored stand-in for `parking_lot`, implemented over `std::sync`.
//!
//! Provides the subset of the parking_lot API the workspace uses: `Mutex`
//! and `RwLock` whose guards are returned directly (no `LockResult`
//! poisoning dance). Poisoned locks are recovered transparently — the
//! workspace never relies on poisoning semantics, matching parking_lot's
//! behaviour of not poisoning at all.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
