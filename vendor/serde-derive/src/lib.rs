//! No-op derive macros for the vendored `serde` shim.
//!
//! The workspace only uses `#[derive(serde::Serialize, serde::Deserialize)]`
//! as forward-looking annotations; nothing serializes through serde yet (the
//! docstore has its own binary encoding). With no network access to a crates
//! registry, these derives expand to nothing so the annotations stay legal.

use proc_macro::TokenStream;

/// Expands to nothing; accepts any input item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any input item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
