//! Vendored stand-in for the `bytes` crate.
//!
//! Implements the subset of the API the docstore's binary encoding and WAL
//! use: [`BytesMut`] as a growable write buffer, [`Bytes`] as a cheaply
//! sliceable read view (shared via `Arc`), and the [`Buf`] / [`BufMut`]
//! traits with the little-endian accessors the encoding calls.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read-side trait: consume primitives from the front of a buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Advance the read cursor by `n` (panics if `n > remaining`).
    fn advance(&mut self, n: usize);
    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side trait: append primitives to a buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer for building frames.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Append raw bytes (Vec-style alias for [`BufMut::put_slice`]).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Freeze into an immutable, sliceable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }

    /// Copy the contents out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Drop all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// An immutable, cheaply cloneable and sliceable view of shared bytes.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// A view over a static slice (copied; fine for the small test inputs).
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::copy_from_slice(src)
    }

    /// A view copied out of an arbitrary slice.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy the viewed bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Split off and return the first `n` bytes, advancing self past them.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// A sub-view of this view (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.to_vec(), b"xyz");
    }

    #[test]
    fn split_and_slice_share_storage() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        let s = head.slice(1..4);
        assert_eq!(&s[..], b"ell");
    }

    #[test]
    fn remaining_tracks_reads() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.remaining(), 4);
        b.get_u8();
        assert_eq!(b.remaining(), 3);
        assert!(!b.is_empty());
    }
}
