//! Vendored stand-in for the `serde` facade.
//!
//! The workspace derives `serde::Serialize` / `serde::Deserialize` on a
//! handful of types as forward-looking annotations; actual persistence goes
//! through `cryptext-docstore`'s own binary encoding. This shim re-exports
//! no-op derive macros so those annotations compile without registry access.
//! If real serde becomes available, swapping the path dependency for the
//! crates.io package is a drop-in change.

pub use serde_derive_shim::{Deserialize, Serialize};
