//! Vendored stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — `Criterion`,
//! benchmark groups, `Bencher::iter` / `iter_batched`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — as
//! a simple wall-clock harness: per benchmark it runs a short warm-up,
//! collects a fixed number of timed samples, and prints mean / p50 / p99
//! per-iteration times. No statistics engine, no HTML reports, but honest
//! comparable numbers on the same machine within the same run.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized; the shim treats all variants alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Explicit iteration count per batch.
    NumBatches(u64),
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_count: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 20,
            target_sample_time: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_count_override: None,
        }
    }

    /// Register a stand-alone benchmark outside any group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) {
        let stats = run_bench(self.sample_count, self.target_sample_time, f);
        print_result(name.as_ref(), &stats, None);
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_count_override: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count_override = Some(n.clamp(5, 200));
        self
    }

    /// Declare per-iteration throughput for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self
            .sample_count_override
            .unwrap_or(self.criterion.sample_count);
        let stats = run_bench(samples, self.criterion.target_sample_time, f);
        print_result(
            &format!("{}/{}", self.name, name.as_ref()),
            &stats,
            self.throughput,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing statistics (nanoseconds per iteration).
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Mean ns/iter over all samples.
    pub mean_ns: f64,
    /// Median ns/iter.
    pub p50_ns: f64,
    /// 99th-percentile ns/iter.
    pub p99_ns: f64,
}

/// The per-benchmark measurement handle passed to bench closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    sample_budget: usize,
}

impl Bencher {
    /// Time `f` repeatedly, recording per-iteration wall time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
            self.samples.push(ns);
        }
    }

    /// Time `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_budget {
            let mut total = Duration::ZERO;
            for _ in 0..self.iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            self.samples
                .push(total.as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }
}

fn run_bench(samples: usize, target: Duration, mut f: impl FnMut(&mut Bencher)) -> Stats {
    // Calibration pass: one iteration per sample, one sample.
    let mut probe = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_budget: 1,
    };
    f(&mut probe);
    let per_iter_ns = probe.samples.first().copied().unwrap_or(1.0).max(1.0);
    let iters = ((target.as_nanos() as f64 / per_iter_ns).ceil() as u64).clamp(1, 1_000_000);

    let mut bencher = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(samples),
        sample_budget: samples,
    };
    f(&mut bencher);
    stats_of(&mut bencher.samples)
}

fn stats_of(samples: &mut [f64]) -> Stats {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = samples.len().max(1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    let pick = |q: f64| samples[(((n - 1) as f64) * q).round() as usize];
    Stats {
        mean_ns: mean,
        p50_ns: if samples.is_empty() { 0.0 } else { pick(0.5) },
        p99_ns: if samples.is_empty() { 0.0 } else { pick(0.99) },
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn print_result(name: &str, stats: &Stats, throughput: Option<Throughput>) {
    let mut line = format!(
        "{name:<44} time: [mean {} p50 {} p99 {}]",
        fmt_ns(stats.mean_ns),
        fmt_ns(stats.p50_ns),
        fmt_ns(stats.p99_ns)
    );
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Bytes(n) => format!(
                "{:.1} MiB/s",
                n as f64 / (stats.mean_ns / 1e9) / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / (stats.mean_ns / 1e9)),
        };
        line.push_str(&format!(" thrpt: {per_sec}"));
    }
    println!("{line}");
}

/// Bundle benchmark functions into a runnable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn stats_quantiles() {
        let mut s: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let st = stats_of(&mut s);
        assert!((st.mean_ns - 50.5).abs() < 1e-9);
        assert!(st.p50_ns >= 50.0 && st.p50_ns <= 51.0);
        assert!(st.p99_ns >= 99.0);
    }
}
