//! # CrypText
//!
//! A Rust reproduction of **"CRYPTEXT: Database and Interactive Toolkit of
//! Human-Written Text Perturbations in the Wild"** (ICDE 2023).
//!
//! This facade crate re-exports the whole workspace under one roof. The
//! short tour:
//!
//! * [`core`] (re-exported from `cryptext-core`) — the CrypText system:
//!   the human-written token database (`H_k` hash maps over a customized
//!   Soundex), Look Up, Normalization, Perturbation, Social Listening and
//!   the authenticated service facade.
//! * [`phonetics`] — classic + customized Soundex.
//! * [`confusables`] — visual-similarity tables (leet, homoglyphs, accents).
//! * [`editdist`] — Levenshtein/Damerau distances with bounded variants.
//! * [`tokenizer`] — social-media tokenizer with byte spans.
//! * [`docstore`] — embedded document database (MongoDB substitute).
//! * [`cache`] — sharded TTL+LRU cache (Redis substitute).
//! * [`gateway`] — overload-resilient front-end: admission control,
//!   single-flight coalescing, deadlines/retries, graceful drain.
//! * [`lm`] — n-gram language model (BERT coherency-score substitute).
//! * [`ml`] — text classifiers (Google NLP API substitutes for Fig. 4).
//! * [`attacks`] — TextBugger/VIPER/DeepWordBug baselines + the
//!   human-perturbation generator.
//! * [`corpus`] — lexicons and synthetic corpus builders.
//! * [`stream`] — simulated Reddit/Twitter platforms with PushShift-style
//!   search.
//!
//! ## Quickstart
//!
//! ```
//! use cryptext::prelude::*;
//!
//! // Build a token database from a tiny corpus (Table I of the paper).
//! let corpus = [
//!     "the dirrty republicans",
//!     "thee dirty repubLIEcans",
//!     "the dirty republic@@ns",
//! ];
//! let mut db = TokenDatabase::in_memory();
//! for sentence in corpus {
//!     db.ingest_text(sentence);
//! }
//!
//! // Look Up perturbations of "republicans" under the SMS property.
//! let cryptext = CrypText::new(db);
//! let hits = cryptext.look_up("republicans", LookupParams::new(1, 1)).unwrap();
//! let tokens: Vec<&str> = hits.iter().map(|h| h.token.as_str()).collect();
//! assert!(tokens.contains(&"repubLIEcans"));
//! assert!(!tokens.contains(&"republic@@ns")); // edit distance 2 > d=1
//! ```

pub use cryptext_attacks as attacks;
pub use cryptext_cache as cache;
pub use cryptext_common as common;
pub use cryptext_confusables as confusables;
pub use cryptext_core as core;
pub use cryptext_corpus as corpus;
pub use cryptext_docstore as docstore;
pub use cryptext_editdist as editdist;
pub use cryptext_gateway as gateway;
pub use cryptext_http as http;
pub use cryptext_lm as lm;
pub use cryptext_ml as ml;
pub use cryptext_phonetics as phonetics;
pub use cryptext_stream as stream;
pub use cryptext_tokenizer as tokenizer;

/// Commonly used items, importable with `use cryptext::prelude::*`.
pub mod prelude {
    pub use cryptext_common::{Error, Result};
    pub use cryptext_core::database::TokenDatabase;
    pub use cryptext_core::lookup::{LookupHit, LookupParams};
    pub use cryptext_core::normalize::{NormalizeParams, Normalizer};
    pub use cryptext_core::perturb::{PerturbParams, Perturber as TextPerturber};
    pub use cryptext_core::CrypText;
    pub use cryptext_phonetics::{CustomSoundex, SoundexCode};
}
