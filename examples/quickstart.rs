//! Quickstart: build a token database, then exercise all three core
//! functions — Look Up, Normalization, Perturbation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cryptext::core::{NormalizeParams, PerturbParams};
use cryptext::prelude::*;

fn main() -> Result<()> {
    // 1. Curate a database from raw human-written text (Table I corpus
    //    plus a few wild perturbations).
    let mut db = TokenDatabase::with_lexicon();
    for post in [
        "the dirrty republicans",
        "thee dirty repubLIEcans",
        "the dirty republic@@ns",
        "the demokRATs keep lying",
        "Biden belongs to the democrats",
        "the vacc1ne mandate is terrible",
        "the vaccine mandate was announced",
        "thinking about suic1de",
        "suicide prevention is important",
    ] {
        db.ingest_text(post);
    }
    let stats = db.stats();
    println!(
        "database: {} unique tokens across {} phonetic sounds (k = 1)",
        stats.unique_tokens, stats.unique_sounds[1]
    );

    let cryptext = CrypText::new(db);

    // 2. Look Up: the perturbation set of "republicans" (SMS property,
    //    paper defaults k = 1, d = 3).
    let hits = cryptext.look_up("republicans", LookupParams::paper_default())?;
    println!("\nLook Up  P_x for x = \"republicans\":");
    for h in &hits {
        println!(
            "  {:<14} count={} distance={}",
            h.token, h.count, h.distance
        );
    }

    // 3. Normalization: de-perturb a noisy post.
    let noisy = "the demokRATs pushed the vacc1ne mandate";
    let normalized = cryptext.normalize(noisy, NormalizeParams::default())?;
    println!("\nNormalize:");
    println!("  in : {noisy}");
    println!("  out: {}", normalized.text);
    for c in &normalized.corrections {
        println!(
            "    {} → {} (score {:.2})",
            c.original, c.replacement, c.score
        );
    }

    // 4. Perturbation: rewrite clean text with observed human spellings.
    let clean = "the democrats discussed the vaccine";
    let perturbed = cryptext.perturb(clean, PerturbParams::with_ratio(0.5))?;
    println!("\nPerturb (r = 50%):");
    println!("  in : {clean}");
    println!("  out: {}", perturbed.text);
    for r in &perturbed.replacements {
        println!("    {} → {}", r.original, r.replacement);
    }
    Ok(())
}
