//! The §III-E use case: monitor how perturbations of a watch-word are
//! used over time, with frequency and sentiment timelines.
//!
//! ```text
//! cargo run --release --example social_listening
//! ```

use cryptext::core::database::TokenDatabase;
use cryptext::core::listening::{ListeningConfig, SocialListener};
use cryptext::stream::{SocialPlatform, StreamConfig};

fn main() {
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 5_000,
        seed: 99,
        ..StreamConfig::default()
    });
    let mut db = TokenDatabase::in_memory();
    for post in platform.posts() {
        db.ingest_text(&post.text);
    }

    let listener = SocialListener::new(&db);
    let config = ListeningConfig {
        buckets: 6,
        ..ListeningConfig::default()
    };
    for word in ["vaccine", "democrats"] {
        let report = listener.watch(&platform, word, &config).expect("watch");
        println!(
            "watching {:?} — {} total posts across {} spellings",
            word,
            report.total_posts(),
            report.terms.len()
        );
        for term in report.terms.iter().take(8) {
            let spark: String = term
                .counts
                .iter()
                .map(|&c| match c {
                    0 => ' ',
                    1..=4 => '▁',
                    5..=14 => '▃',
                    15..=39 => '▅',
                    _ => '█',
                })
                .collect();
            println!(
                "  {:<16} {:>5} posts |{}| negative {:.0}%{}",
                term.term,
                term.total,
                spark,
                term.overall_negative_fraction() * 100.0,
                if term.is_perturbation {
                    "  (perturbation)"
                } else {
                    ""
                }
            );
        }
        println!();
    }
    println!(
        "Perturbed spellings cluster in negative content — the signal a\n\
         platform gatekeeper would use for evasion-aware moderation (§III-E)."
    );
}
