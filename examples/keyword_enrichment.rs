//! The §III-B use case: enrich a sensitive-topic search query with
//! human-written perturbations to reach content that clean keywords miss.
//!
//! ```text
//! cargo run --release --example keyword_enrichment
//! ```

use cryptext::core::database::TokenDatabase;
use cryptext::core::{look_up, LookupParams};
use cryptext::corpus::Sentiment;
use cryptext::stream::{SearchQuery, SocialPlatform, StreamConfig};

fn main() {
    // A month of simulated social traffic.
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 4_000,
        seed: 2021,
        ..StreamConfig::default()
    });

    // The crawler-built token database over the same feed.
    let mut db = TokenDatabase::in_memory();
    for post in platform.posts() {
        db.ingest_text(&post.text);
    }

    for keyword in ["vaccine", "democrats"] {
        // Plain query.
        let plain = platform.search(&SearchQuery::keyword(keyword));

        // Enriched query: keyword + its Look Up perturbations.
        let perturbations = look_up(
            &db,
            keyword,
            LookupParams::paper_default()
                .perturbations_only()
                .observed(),
        )
        .expect("lookup");
        let mut terms = vec![keyword.to_string()];
        terms.extend(perturbations.iter().map(|h| h.token.clone()));
        let enriched = platform.search(&SearchQuery::any_of(terms.clone()));

        let neg = |posts: &[cryptext::stream::Post]| {
            if posts.is_empty() {
                return 0.0;
            }
            posts
                .iter()
                .filter(|p| p.sentiment == Sentiment::Negative)
                .count() as f64
                / posts.len() as f64
        };

        println!("keyword: {keyword:?}");
        println!("  query terms       : {}", terms.join(", "));
        println!(
            "  plain search      : {} posts, {:.0}% negative",
            plain.total,
            neg(&plain.posts) * 100.0
        );
        println!(
            "  enriched search   : {} posts, {:.0}% negative",
            enriched.total,
            neg(&enriched.posts) * 100.0
        );
        println!(
            "  unreachable posts : {} (only findable via perturbed spellings)",
            enriched.total - plain.total
        );
        println!();
    }
}
