//! The §III-C use case: de-noise a perturbed training corpus with
//! Normalization and measure the downstream classifier lift.
//!
//! ```text
//! cargo run --release --example denoise_pipeline
//! ```

use cryptext::core::database::TokenDatabase;
use cryptext::core::{CrypText, NormalizeParams};
use cryptext::corpus::{generator, CorpusConfig};
use cryptext::ml::{accuracy, Classifier, Example, NaiveBayes};
use cryptext::stream::{SocialPlatform, StreamConfig};

fn main() {
    // A heavily perturbed labelled corpus (the kind of noisy user text a
    // moderation team actually gets).
    let noisy = generator::generate(CorpusConfig {
        n_docs: 2_400,
        seed: 64,
        perturb_prob_negative: 0.8,
        perturb_prob_positive: 0.5,
        secondary_perturb_prob: 0.3,
        ..CorpusConfig::default()
    });
    let (train_docs, test_docs) = noisy.docs.split_at(1_600);

    // The CrypText normalizer, backed by a database built from a wild feed.
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 5_000,
        seed: 65,
        ..StreamConfig::default()
    });
    let mut db = TokenDatabase::with_lexicon();
    for post in platform.posts() {
        db.ingest_text(&post.text);
    }
    let cryptext = CrypText::new(db);
    let normalize = |text: &str| {
        cryptext
            .normalize(text, NormalizeParams::default())
            .expect("normalize")
            .text
    };

    // Pipeline A: train and test on raw noisy text.
    let raw_train: Vec<Example> = train_docs
        .iter()
        .map(|d| Example::new(d.text.clone(), usize::from(d.toxic)))
        .collect();
    // Pipeline B: de-noise both sides with CrypText first.
    let clean_train: Vec<Example> = train_docs
        .iter()
        .map(|d| Example::new(normalize(&d.text), usize::from(d.toxic)))
        .collect();

    let raw_model = NaiveBayes::train(&raw_train, 2, 1.0);
    let denoised_model = NaiveBayes::train(&clean_train, 2, 1.0);

    let y_true: Vec<usize> = test_docs.iter().map(|d| usize::from(d.toxic)).collect();
    let raw_pred: Vec<usize> = test_docs
        .iter()
        .map(|d| raw_model.predict(&d.text))
        .collect();
    let denoised_pred: Vec<usize> = test_docs
        .iter()
        .map(|d| denoised_model.predict(&normalize(&d.text)))
        .collect();

    let corrected: usize = test_docs
        .iter()
        .map(|d| {
            cryptext
                .normalize(&d.text, NormalizeParams::default())
                .expect("normalize")
                .corrections
                .len()
        })
        .sum();

    println!("toxicity classification on heavily perturbed text:");
    println!(
        "  raw pipeline       : {:.1}%",
        accuracy(&y_true, &raw_pred) * 100.0
    );
    println!(
        "  de-noised pipeline : {:.1}%  ({} tokens corrected in the test set)",
        accuracy(&y_true, &denoised_pred) * 100.0,
        corrected
    );
    println!();
    println!(
        "Normalizing with CrypText folds out-of-vocabulary perturbations\n\
         back onto dictionary words, restoring the lexical evidence the\n\
         model was trained on (§III-C use case 1)."
    );
}
