//! The paper's deployment shape, end to end: CrypText behind the
//! overload-resilient gateway behind a real HTTP/1.1 socket.
//!
//! ```sh
//! cargo run --example serve_http
//! # then, from another shell (the server prints the issued token):
//! curl -H "Authorization: Bearer <token>" \
//!   'http://127.0.0.1:8087/lookup?q=vacc1ne'
//! curl -H "Authorization: Bearer <token>" -X POST --data 'the vacc1ne mandate' \
//!   'http://127.0.0.1:8087/normalize'
//! curl 'http://127.0.0.1:8087/stats'
//! ```
//!
//! Ctrl-C (or `kill -TERM`) is simulated here by serving for a fixed
//! window, then running the graceful drain: accepts stop, in-flight
//! requests finish, the flush hook runs, and only then does the
//! listener close.

use std::sync::Arc;
use std::time::Duration;

use cryptext::common::SystemClock;
use cryptext::core::database::TokenDatabase;
use cryptext::core::service::{CryptextService, ServiceConfig};
use cryptext::core::CrypText;
use cryptext::gateway::{Gateway, GatewayConfig};
use cryptext::http::{HttpConfig, HttpServer};
use cryptext::stream::{SocialPlatform, StreamConfig};

fn main() {
    // A database curated from simulated social traffic (stands in for
    // the paper's Reddit/Twitter ingest).
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 2_000,
        seed: 77,
        ..StreamConfig::default()
    });
    let mut db = TokenDatabase::with_lexicon();
    for post in platform.posts() {
        db.ingest_text(&post.text);
    }

    let service = Arc::new(CryptextService::new(
        CrypText::new(db),
        ServiceConfig::default(),
        Arc::new(SystemClock),
    ));
    let token = service.issue_token("serve-http-demo");
    let gateway = Arc::new(Gateway::new(service, GatewayConfig::default()));

    let server = HttpServer::bind(gateway, HttpConfig::default(), "127.0.0.1:8087")
        .expect("bind 127.0.0.1:8087");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();

    println!("serving on http://{addr}");
    println!("bearer token: {}", token.as_str());
    println!(
        "try:  curl -H 'Authorization: Bearer {}' \\",
        token.as_str()
    );
    println!("        'http://{addr}/lookup?q=vacc1ne'");
    println!("stats: curl 'http://{addr}/stats'");
    println!("(shutting down gracefully after 60s)");

    // A real deployment would hook this to SIGTERM; the example uses a
    // timer so `cargo run --example serve_http` terminates on its own.
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(60));
        handle.shutdown();
    });

    let report = server.serve();
    println!(
        "drained: {} requests served, {} connections open at drain, quiesced: {}",
        report.requests_served, report.connections_at_drain, report.drain.quiesced
    );
}
