//! The §III-D use case (Fig. 4): stress-test a toxicity classifier with
//! realistic human-written perturbations and compare against a machine
//! baseline.
//!
//! ```text
//! cargo run --release --example robustness_evaluation
//! ```

use cryptext::attacks::{perturb_text, TextBugger};
use cryptext::common::SplitMix64;
use cryptext::core::database::TokenDatabase;
use cryptext::core::{CrypText, PerturbParams};
use cryptext::corpus::{generator, CorpusConfig};
use cryptext::ml::{accuracy, train_test_split, Classifier, Example, NaiveBayes};
use cryptext::stream::{SocialPlatform, StreamConfig};

fn main() {
    // Train a toxicity model on clean text.
    let clean = generator::generate(CorpusConfig {
        n_docs: 2_000,
        seed: 7,
        perturb_prob_negative: 0.0,
        perturb_prob_positive: 0.0,
        secondary_perturb_prob: 0.0,
        ..CorpusConfig::default()
    });
    let examples: Vec<Example> = clean
        .docs
        .iter()
        .map(|d| Example::new(d.text.clone(), usize::from(d.toxic)))
        .collect();
    let (train, test) = train_test_split(&examples, 0.3, 1);
    let model = NaiveBayes::train(&train, 2, 1.0);

    // CrypText database of wild perturbations.
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 4_000,
        seed: 13,
        ..StreamConfig::default()
    });
    let mut db = TokenDatabase::with_lexicon();
    for post in platform.posts() {
        db.ingest_text(&post.text);
    }
    let cryptext = CrypText::new(db);

    let y_true: Vec<usize> = test.iter().map(|e| e.label).collect();
    println!(
        "toxicity accuracy under perturbation (test set: {} docs)",
        test.len()
    );
    println!("{:>5} {:>18} {:>12}", "r", "cryptext (human)", "textbugger");
    for ratio in [0.0, 0.15, 0.25, 0.5] {
        // CrypText: only observed human-written replacements.
        let human: Vec<usize> = test
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let out = cryptext
                    .perturb(&e.text, PerturbParams::with_ratio(ratio).seeded(i as u64))
                    .expect("perturb");
                model.predict(&out.text)
            })
            .collect();
        // Machine baseline.
        let machine: Vec<usize> = test
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let mut rng = SplitMix64::new(i as u64);
                let out = perturb_text(&TextBugger, &e.text, ratio, &mut rng);
                model.predict(&out.text)
            })
            .collect();
        println!(
            "{:>4.0}% {:>17.1}% {:>11.1}%",
            ratio * 100.0,
            accuracy(&y_true, &human) * 100.0,
            accuracy(&y_true, &machine) * 100.0,
        );
    }
    println!();
    println!(
        "CrypText's rewrites use only spellings observed in human text, so\n\
         the measured degradation reflects realistic noise, not synthetic\n\
         worst-case attacks (§III-D)."
    );
}
