//! The unified stats surface: one report type over every layer's
//! counters, with its own wire serialization.
//!
//! Before this module each layer exposed its own snapshot type
//! ([`GatewayStatsSnapshot`], the service's `CacheTierSnapshot`, the
//! tier-2 store's `StoreStats`) and every consumer stitched them
//! together by hand. [`StatsReport`] is the one type operators see:
//! [`Gateway::stats_report`](crate::Gateway::stats_report) returns it and
//! `GET /stats` serves [`StatsReport::to_json`] verbatim.

use cryptext_cache::{CacheStats, StoreStats};
use cryptext_core::service::CacheTierSnapshot;

use crate::GatewayStatsSnapshot;

/// Point-in-time counters across the whole front-end: the gateway's
/// admission/execution layers plus the service's cache hierarchy
/// (tier-1 caches, tier-2 store), under one roof.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Admission, coalescing, retry, and outcome counters.
    pub gateway: GatewayStatsSnapshot,
    /// Cache-hierarchy counters (tier-1 tiers, negative hits, tier-2).
    pub cache: CacheTierSnapshot,
    /// Is the gateway refusing new admissions right now?
    pub draining: bool,
}

impl StatsReport {
    /// Current data generation (part of every cache key; bumps on
    /// ingest). Mirrored here because wire consumers compare it against
    /// the `X-Cryptext-Generation` response header.
    pub fn generation(&self) -> u64 {
        self.cache.generation
    }

    /// The `GET /stats` body: one JSON document, keys stable for
    /// scraping.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"gateway\":");
        push_gateway(&mut out, &self.gateway);
        out.push_str(",\"cache\":");
        push_cache(&mut out, &self.cache);
        out.push_str(&format!(",\"draining\":{}}}", self.draining));
        out
    }
}

fn push_gateway(out: &mut String, g: &GatewayStatsSnapshot) {
    out.push_str(&format!(
        concat!(
            "{{\"admitted\":{},\"queue_waits\":{},\"shed_queue_full\":{},",
            "\"shed_draining\":{},\"queue_deadline_expired\":{},",
            "\"executions\":{},\"retries\":{},\"completed_ok\":{},",
            "\"failed\":{},\"deadline_exceeded\":{},",
            "\"coalesced_followers\":{},\"promoted_followers\":{},",
            "\"active_now\":{},\"queued_now\":{}}}"
        ),
        g.admitted,
        g.queue_waits,
        g.shed_queue_full,
        g.shed_draining,
        g.queue_deadline_expired,
        g.executions,
        g.retries,
        g.completed_ok,
        g.failed,
        g.deadline_exceeded,
        g.coalesced_followers,
        g.promoted_followers,
        g.active_now,
        g.queued_now,
    ));
}

fn push_cache(out: &mut String, c: &CacheTierSnapshot) {
    out.push_str("{\"lookup\":");
    push_tier(out, &c.lookup);
    out.push_str(",\"normalize\":");
    push_tier(out, &c.normalize);
    out.push_str(",\"normalize_results\":");
    push_tier(out, &c.normalize_results);
    out.push_str(&format!(
        concat!(
            ",\"negative_hits\":{},\"generation\":{},",
            "\"invalidation_bumps\":{},\"invalidated_entries\":{},",
            "\"tier2_attached\":{},\"tier2\":"
        ),
        c.negative_hits,
        c.generation,
        c.invalidation_bumps,
        c.invalidated_entries,
        c.tier2_attached,
    ));
    push_store(out, &c.tier2);
    out.push('}');
}

fn push_tier(out: &mut String, t: &CacheStats) {
    out.push_str(&format!(
        concat!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},",
            "\"expirations\":{},\"inserts\":{}}}"
        ),
        t.hits, t.misses, t.evictions, t.expirations, t.inserts,
    ));
}

fn push_store(out: &mut String, s: &StoreStats) {
    out.push_str(&format!(
        concat!(
            "{{\"hits\":{},\"misses\":{},\"inserts\":{},\"evictions\":{},",
            "\"expirations\":{},\"invalidated\":{},\"put_errors\":{}}}"
        ),
        s.hits, s.misses, s.inserts, s.evictions, s.expirations, s.invalidated, s.put_errors,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_every_layer_under_one_document() {
        let mut report = StatsReport::default();
        report.gateway.admitted = 7;
        report.gateway.queued_now = 2;
        report.cache.lookup.hits = 3;
        report.cache.generation = 5;
        report.cache.tier2.put_errors = 1;
        report.draining = true;

        let json = report.to_json();
        assert!(json.starts_with("{\"gateway\":{\"admitted\":7,"));
        assert!(json.contains("\"queued_now\":2}"));
        assert!(json.contains("\"cache\":{\"lookup\":{\"hits\":3,"));
        assert!(json.contains("\"generation\":5,"));
        assert!(json.contains("\"put_errors\":1}"));
        assert!(json.ends_with(",\"draining\":true}"));
        assert_eq!(report.generation(), 5);

        // Balanced braces — the document parses structurally.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
