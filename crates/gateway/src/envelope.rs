//! The unified request/response envelope — one typed entry point for
//! every route, so wire layers (HTTP, benches, tests) speak a single
//! vocabulary instead of three ad-hoc method signatures.
//!
//! A [`Request`] is route + input + parameters + per-call options; the
//! route is implied by the parameter variant, so a request can never
//! pair Lookup parameters with the Normalize lane. A [`Response`] is the
//! typed output plus the metadata a cache in front of the service needs:
//! the data generation the result was computed under and a
//! [`CacheDisposition`] saying whether tier-1 served it. The typed
//! convenience methods on `Gateway` (`look_up`, `normalize`, `perturb`)
//! are thin shims over [`Gateway::handle`](crate::Gateway::handle).

use cryptext_common::jsonfmt;
use cryptext_core::lookup::{LookupHit, LookupParams};
use cryptext_core::normalize::{NormalizationResult, NormalizeParams};
use cryptext_core::perturb::{PerturbParams, PerturbationOutcome};
use cryptext_core::service::Served;

use crate::gateway::CallOptions;
use crate::RouteClass;

/// Parameters for one route; the variant *is* the route selection.
#[derive(Debug, Clone, Copy)]
pub enum RouteParams {
    /// Look Up: `P_x` retrieval for one token.
    Lookup(LookupParams),
    /// Normalization: perturbed text back to dictionary words.
    Normalize(NormalizeParams),
    /// Perturbation: rewriting a text with database perturbations.
    Perturb(PerturbParams),
}

impl RouteParams {
    /// The route class these parameters select.
    pub fn route(&self) -> RouteClass {
        match self {
            RouteParams::Lookup(_) => RouteClass::Lookup,
            RouteParams::Normalize(_) => RouteClass::Normalize,
            RouteParams::Perturb(_) => RouteClass::Perturb,
        }
    }
}

/// One request through the gateway: the input text (a token for Look Up,
/// a whole text otherwise), the route-selecting parameters, and per-call
/// overrides.
#[derive(Debug, Clone)]
pub struct Request {
    /// The query token (Lookup) or source text (Normalize/Perturb).
    pub input: String,
    /// Route + parameters.
    pub params: RouteParams,
    /// Per-call deadline/retry overrides.
    pub opts: CallOptions,
}

impl Request {
    /// A Look Up request with default call options.
    pub fn lookup(token: impl Into<String>, params: LookupParams) -> Self {
        Request {
            input: token.into(),
            params: RouteParams::Lookup(params),
            opts: CallOptions::default(),
        }
    }

    /// A Normalization request with default call options.
    pub fn normalize(text: impl Into<String>, params: NormalizeParams) -> Self {
        Request {
            input: text.into(),
            params: RouteParams::Normalize(params),
            opts: CallOptions::default(),
        }
    }

    /// A Perturbation request with default call options.
    pub fn perturb(text: impl Into<String>, params: PerturbParams) -> Self {
        Request {
            input: text.into(),
            params: RouteParams::Perturb(params),
            opts: CallOptions::default(),
        }
    }

    /// Replace the call options.
    pub fn with_opts(mut self, opts: CallOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The route class this request targets.
    pub fn route(&self) -> RouteClass {
        self.params.route()
    }
}

/// Typed output of one route.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteOutput {
    /// Look Up hits, rank order.
    Lookup(Vec<LookupHit>),
    /// The normalized text with its corrections.
    Normalize(NormalizationResult),
    /// The perturbed text with its replacements.
    Perturb(PerturbationOutcome),
}

impl RouteOutput {
    /// The Look Up hits, if this is a Lookup output.
    pub fn into_lookup(self) -> Option<Vec<LookupHit>> {
        match self {
            RouteOutput::Lookup(hits) => Some(hits),
            _ => None,
        }
    }

    /// The Normalization result, if this is a Normalize output.
    pub fn into_normalize(self) -> Option<NormalizationResult> {
        match self {
            RouteOutput::Normalize(r) => Some(r),
            _ => None,
        }
    }

    /// The Perturbation outcome, if this is a Perturb output.
    pub fn into_perturb(self) -> Option<PerturbationOutcome> {
        match self {
            RouteOutput::Perturb(o) => Some(o),
            _ => None,
        }
    }

    /// The wire body: a JSON document per route (see `crates/http`'s
    /// README for the exact shapes).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        match self {
            RouteOutput::Lookup(hits) => {
                out.push_str("{\"hits\":[");
                for (i, h) in hits.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"token\":");
                    jsonfmt::push_str_escaped(&mut out, &h.token);
                    out.push_str(&format!(
                        ",\"count\":{},\"distance\":{},\"is_english\":{}}}",
                        h.count, h.distance, h.is_english
                    ));
                }
                out.push_str("]}");
            }
            RouteOutput::Normalize(r) => {
                out.push_str("{\"text\":");
                jsonfmt::push_str_escaped(&mut out, &r.text);
                out.push_str(",\"corrections\":[");
                for (i, c) in r.corrections.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"original\":");
                    jsonfmt::push_str_escaped(&mut out, &c.original);
                    out.push_str(",\"replacement\":");
                    jsonfmt::push_str_escaped(&mut out, &c.replacement);
                    out.push_str(&format!(
                        ",\"start\":{},\"end\":{},\"score\":{},\"candidates\":[",
                        c.span.start,
                        c.span.end,
                        jsonfmt::float(c.score)
                    ));
                    for (j, cand) in c.candidates.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str("{\"word\":");
                        jsonfmt::push_str_escaped(&mut out, &cand.word);
                        out.push_str(&format!(
                            ",\"score\":{},\"distance\":{}}}",
                            jsonfmt::float(cand.score),
                            cand.distance
                        ));
                    }
                    out.push_str("]}");
                }
                out.push_str("]}");
            }
            RouteOutput::Perturb(o) => {
                out.push_str("{\"text\":");
                jsonfmt::push_str_escaped(&mut out, &o.text);
                out.push_str(",\"replacements\":[");
                for (i, r) in o.replacements.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"original\":");
                    jsonfmt::push_str_escaped(&mut out, &r.original);
                    out.push_str(",\"replacement\":");
                    jsonfmt::push_str_escaped(&mut out, &r.replacement);
                    out.push_str(&format!(
                        ",\"start\":{},\"end\":{}}}",
                        r.span.start, r.span.end
                    ));
                }
                out.push_str(&format!("],\"misses\":{}}}", o.misses));
            }
        }
        out
    }
}

/// How the service answered, from a front cache's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Tier-1 served the exact result without recomputation. Coalesced
    /// followers inherit their leader's disposition — the cohort shared
    /// one execution, hit or not.
    Hit,
    /// The result was computed (and is now cached for the next caller).
    Cold,
    /// The route is uncacheable (Perturbation re-rolls its RNG per call).
    Bypass,
}

impl CacheDisposition {
    /// Stable lower-case label (the `X-Cryptext-Cache` header value).
    pub fn label(&self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Cold => "cold",
            CacheDisposition::Bypass => "bypass",
        }
    }

    /// Can a cache in front of the service store this response at all?
    pub fn cacheable(&self) -> bool {
        !matches!(self, CacheDisposition::Bypass)
    }

    pub(crate) fn from_served(served: Served) -> Self {
        match served {
            Served::Tier1Hit => CacheDisposition::Hit,
            Served::Cold => CacheDisposition::Cold,
        }
    }
}

/// One response from the gateway: the typed output plus the metadata a
/// CDN-style cache keys on. `body_json` renders the wire body on demand,
/// so in-process callers (the typed shims, benches) never pay for
/// serialization they don't use.
#[derive(Debug, Clone)]
pub struct Response {
    /// The typed route output.
    pub output: RouteOutput,
    /// Data generation the result was computed under; bumps on ingest.
    pub generation: u64,
    /// Whether tier-1 served it (drives `Cache-Control`/`Age` hints).
    pub cache: CacheDisposition,
}

impl Response {
    /// The JSON wire body.
    pub fn body_json(&self) -> Vec<u8> {
        self.output.to_json().into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_core::normalize::{Candidate, Correction};
    use cryptext_core::perturb::AppliedPerturbation;

    #[test]
    fn params_variant_selects_the_route() {
        assert_eq!(
            Request::lookup("x", LookupParams::paper_default()).route(),
            RouteClass::Lookup
        );
        assert_eq!(
            Request::normalize("x", NormalizeParams::default()).route(),
            RouteClass::Normalize
        );
        assert_eq!(
            Request::perturb("x", PerturbParams::with_ratio(0.5)).route(),
            RouteClass::Perturb
        );
    }

    #[test]
    fn lookup_json_shape() {
        let out = RouteOutput::Lookup(vec![LookupHit {
            token: "va\"xx".into(),
            count: 3,
            distance: 1,
            is_english: false,
        }]);
        assert_eq!(
            out.to_json(),
            r#"{"hits":[{"token":"va\"xx","count":3,"distance":1,"is_english":false}]}"#
        );
        assert_eq!(RouteOutput::Lookup(vec![]).to_json(), r#"{"hits":[]}"#);
    }

    #[test]
    fn normalize_json_shape() {
        let out = RouteOutput::Normalize(NormalizationResult {
            text: "the vaccine".into(),
            corrections: vec![Correction {
                original: "vacc1ne".into(),
                replacement: "vaccine".into(),
                span: 4..11,
                score: 1.5,
                candidates: vec![Candidate {
                    word: "vaccine".into(),
                    score: 1.5,
                    distance: 1,
                }],
            }],
        });
        assert_eq!(
            out.to_json(),
            concat!(
                r#"{"text":"the vaccine","corrections":[{"original":"vacc1ne","#,
                r#""replacement":"vaccine","start":4,"end":11,"score":1.5,"#,
                r#""candidates":[{"word":"vaccine","score":1.5,"distance":1}]}]}"#
            )
        );
    }

    #[test]
    fn perturb_json_shape() {
        let out = RouteOutput::Perturb(PerturbationOutcome {
            text: "the vacc1ne".into(),
            replacements: vec![AppliedPerturbation {
                original: "vaccine".into(),
                replacement: "vacc1ne".into(),
                span: 4..11,
            }],
            misses: 2,
        });
        assert_eq!(
            out.to_json(),
            concat!(
                r#"{"text":"the vacc1ne","replacements":[{"original":"vaccine","#,
                r#""replacement":"vacc1ne","start":4,"end":11}],"misses":2}"#
            )
        );
    }

    #[test]
    fn disposition_labels_and_cacheability() {
        assert_eq!(CacheDisposition::Hit.label(), "hit");
        assert_eq!(CacheDisposition::Cold.label(), "cold");
        assert_eq!(CacheDisposition::Bypass.label(), "bypass");
        assert!(CacheDisposition::Hit.cacheable());
        assert!(CacheDisposition::Cold.cacheable());
        assert!(!CacheDisposition::Bypass.cacheable());
        assert_eq!(
            CacheDisposition::from_served(Served::Tier1Hit),
            CacheDisposition::Hit
        );
        assert_eq!(
            CacheDisposition::from_served(Served::Cold),
            CacheDisposition::Cold
        );
    }
}
