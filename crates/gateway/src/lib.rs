//! Overload-resilient service gateway.
//!
//! [`Gateway`] is a layered front-end over
//! [`CryptextService`](cryptext_core::service::CryptextService) — the same
//! onion-of-layers shape a tower-style HTTP router puts in front of a
//! backend, built here without an async runtime (the execution core is a
//! dispatcher over the process-wide worker pool in
//! [`cryptext_common::par`]). A request crosses the layers outermost-in:
//!
//! 1. **Admission control** ([`admission`]) — per-[`RouteClass`] bounded
//!    concurrency with a bounded wait queue. A full queue sheds the
//!    request *immediately* with [`Error::Overloaded`] carrying a
//!    `retry_after_ms` hint; overload degrades throughput for the excess,
//!    never latency for the admitted.
//! 2. **Authorization** — the service's own token + rate-limit gate,
//!    charged exactly once per admitted request
//!    ([`CryptextService::authorize_request`](cryptext_core::service::CryptextService::authorize_request)).
//!    Running it *after* admission means a token revoked while requests
//!    sit in the queue rejects them deterministically at dequeue.
//! 3. **Single-flight coalescing** ([`singleflight`]) — duplicate
//!    in-flight lookups/normalizations attach to the leader and receive
//!    the leader's exact result bytes; a leader that fails retryably
//!    promotes one follower instead of failing the cohort.
//! 4. **Deadline + retry budget** ([`deadline`]) — one [`Deadline`] per
//!    request, checked at every layer boundary and probed cooperatively
//!    inside the store walk; retryable failures get a bounded number of
//!    jitter-backoff retries, but only while the deadline still has
//!    budget.
//! 5. **Execution** — the request body runs on a pool worker; the caller
//!    waits under its deadline and detaches on expiry (the worker still
//!    finishes, releases its admission slot, and settles any flight).
//!
//! Draining reverses the onion: [`Gateway::begin_drain`] stops admissions
//! (queued waiters shed, new arrivals shed), in-flight requests finish
//! under the drain deadline, then a flush hook (the durable store's
//! delta-log sync) runs before shutdown.
//!
//! [`Error::Overloaded`]: cryptext_common::Error::Overloaded

pub mod admission;
pub mod deadline;
pub mod envelope;
pub mod gateway;
pub mod singleflight;
pub mod stats;

use std::sync::atomic::AtomicU64;

use cryptext_common::metrics::{Counter, Gauge, Histogram, MetricsRegistry};

pub use deadline::Deadline;
pub use envelope::{CacheDisposition, Request, Response, RouteOutput, RouteParams};
pub use gateway::{CallOptions, DrainReport, Gateway};
pub use singleflight::{FollowerOutcome, Join, SingleFlight};
pub use stats::StatsReport;

/// The route classes the gateway budgets independently, mirroring the
/// service's endpoint families. Heavy routes (perturbation rewrites a
/// whole text) get their own lane so they cannot starve cheap lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteClass {
    /// Look Up: `P_x` retrieval for one token.
    Lookup,
    /// Normalization: perturbed text back to dictionary words.
    Normalize,
    /// Perturbation: rewriting a text with database perturbations.
    Perturb,
    /// Social Listening: timeline scans over a platform stream.
    Listening,
}

impl RouteClass {
    /// All route classes, in lane order.
    pub const ALL: [RouteClass; 4] = [
        RouteClass::Lookup,
        RouteClass::Normalize,
        RouteClass::Perturb,
        RouteClass::Listening,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            RouteClass::Lookup => 0,
            RouteClass::Normalize => 1,
            RouteClass::Perturb => 2,
            RouteClass::Listening => 3,
        }
    }

    /// Stable lower-case name (stats, bench reports).
    pub fn name(self) -> &'static str {
        match self {
            RouteClass::Lookup => "lookup",
            RouteClass::Normalize => "normalize",
            RouteClass::Perturb => "perturb",
            RouteClass::Listening => "listening",
        }
    }
}

/// Concurrency budget for one route class.
#[derive(Debug, Clone, Copy)]
pub struct RouteBudget {
    /// Requests executing at once; the `max_concurrent + 1`-th admitted
    /// request waits in the queue instead.
    pub max_concurrent: usize,
    /// Requests allowed to wait for a slot; arrival `max_queued + 1`
    /// is shed immediately.
    pub max_queued: usize,
}

impl RouteBudget {
    /// Budget of `max_concurrent` executing plus `max_queued` waiting.
    pub fn new(max_concurrent: usize, max_queued: usize) -> Self {
        RouteBudget {
            max_concurrent: max_concurrent.max(1),
            max_queued,
        }
    }

    /// Total requests this lane holds before shedding.
    pub fn capacity(&self) -> usize {
        self.max_concurrent + self.max_queued
    }
}

/// Gateway configuration: per-route budgets plus the timing knobs shared
/// by every request.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Budget for [`RouteClass::Lookup`].
    pub lookup: RouteBudget,
    /// Budget for [`RouteClass::Normalize`].
    pub normalize: RouteBudget,
    /// Budget for [`RouteClass::Perturb`].
    pub perturb: RouteBudget,
    /// Budget for [`RouteClass::Listening`].
    pub listening: RouteBudget,
    /// Deadline granted when [`CallOptions::deadline_ms`] is unset.
    pub default_deadline_ms: u64,
    /// Retries granted to retryable failures when
    /// [`CallOptions::max_retries`] is unset.
    pub max_retries: u32,
    /// Base backoff between retries; attempt `n` waits roughly
    /// `base * 2^(n-1)` plus jitter (capped — see [`gateway`]).
    pub retry_backoff_ms: u64,
    /// The `retry_after_ms` hint attached to shed requests.
    pub shed_retry_after_ms: u64,
    /// Real-time budget [`Gateway::drain_with`] waits for in-flight
    /// requests before flushing anyway.
    pub drain_deadline_ms: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            lookup: RouteBudget::new(8, 16),
            normalize: RouteBudget::new(4, 8),
            perturb: RouteBudget::new(2, 4),
            listening: RouteBudget::new(2, 4),
            default_deadline_ms: 2_000,
            max_retries: 2,
            retry_backoff_ms: 5,
            shed_retry_after_ms: 25,
            drain_deadline_ms: 5_000,
        }
    }
}

impl GatewayConfig {
    /// The budget for one route class.
    pub fn budget(&self, route: RouteClass) -> RouteBudget {
        match route {
            RouteClass::Lookup => self.lookup,
            RouteClass::Normalize => self.normalize,
            RouteClass::Perturb => self.perturb,
            RouteClass::Listening => self.listening,
        }
    }

    /// Sum of all `max_concurrent` budgets — what the gateway asks the
    /// worker pool to hold ready.
    pub fn total_concurrency(&self) -> usize {
        RouteClass::ALL
            .iter()
            .map(|&r| self.budget(r).max_concurrent)
            .sum()
    }
}

/// The gateway's instrument bundle: registry-native counters plus the
/// per-route queue-wait histograms. Read them through
/// [`Gateway::stats`], which projects the point-in-time snapshot, or
/// through the service's [`MetricsRegistry`] once
/// [`GatewayStats::register`] has run (the handles share cells, so both
/// views are always the same numbers).
#[derive(Debug, Default)]
pub(crate) struct GatewayStats {
    pub admitted: Counter,
    pub shed_queue_full: Counter,
    pub shed_draining: Counter,
    pub queue_deadline_expired: Counter,
    pub executions: Counter,
    pub retries: Counter,
    pub completed_ok: Counter,
    pub failed: Counter,
    pub deadline_exceeded: Counter,
    pub coalesced_followers: Counter,
    pub promoted_followers: Counter,
    /// Queue wait per admitted-after-waiting request, µs, indexed by
    /// [`RouteClass::index`]. The legacy `queue_waits` counter is now a
    /// projection: the sum of these histograms' observation counts.
    pub queue_wait_us: [Histogram; 4],
    /// Requests executing right now; refreshed on every snapshot/render.
    pub active_now: Gauge,
    /// Requests queued right now; refreshed on every snapshot/render.
    pub queued_now: Gauge,
    /// Backoff jitter nonce: kept separate from the `retries` counter so
    /// each retry draws a unique value even under concurrent increments
    /// (a get-then-inc on the counter could hand two retriers the same
    /// jitter).
    pub retry_nonce: AtomicU64,
}

impl GatewayStats {
    /// Register every gateway instrument with `registry` under the
    /// workspace `cryptext_gateway_*` names. Call once per registry;
    /// duplicate names panic — the gateway owns its service's registry
    /// slice, so construct at most one gateway per service instance.
    pub(crate) fn register(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "cryptext_gateway_admitted_total",
            "Requests that passed admission (straight in or after queueing)",
            &[],
            &self.admitted,
        );
        registry.register_counter(
            "cryptext_gateway_shed_queue_full_total",
            "Requests shed because the wait queue was full",
            &[],
            &self.shed_queue_full,
        );
        registry.register_counter(
            "cryptext_gateway_shed_draining_total",
            "Requests shed because the gateway was draining",
            &[],
            &self.shed_draining,
        );
        registry.register_counter(
            "cryptext_gateway_queue_deadline_expired_total",
            "Queued requests whose deadline expired before a slot freed",
            &[],
            &self.queue_deadline_expired,
        );
        registry.register_counter(
            "cryptext_gateway_executions_total",
            "Execution jobs dispatched (leaders and uncoalesced calls)",
            &[],
            &self.executions,
        );
        registry.register_counter(
            "cryptext_gateway_retries_total",
            "Retry attempts across all requests",
            &[],
            &self.retries,
        );
        registry.register_counter(
            "cryptext_gateway_completed_ok_total",
            "Requests that returned Ok to their caller",
            &[],
            &self.completed_ok,
        );
        registry.register_counter(
            "cryptext_gateway_failed_total",
            "Requests that returned an error (sheds and detaches excluded)",
            &[],
            &self.failed,
        );
        registry.register_counter(
            "cryptext_gateway_deadline_exceeded_total",
            "Callers that detached with DeadlineExceeded",
            &[],
            &self.deadline_exceeded,
        );
        registry.register_counter(
            "cryptext_gateway_coalesced_followers_total",
            "Requests that attached to an in-flight leader instead of executing",
            &[],
            &self.coalesced_followers,
        );
        registry.register_counter(
            "cryptext_gateway_promoted_followers_total",
            "Followers promoted to leader after a retryable leader failure",
            &[],
            &self.promoted_followers,
        );
        for route in RouteClass::ALL {
            registry.register_histogram(
                "cryptext_gateway_queue_wait_us",
                "Admission queue wait per queued-then-admitted request (microseconds)",
                &[("route", route.name())],
                &self.queue_wait_us[route.index()],
            );
        }
        registry.register_gauge(
            "cryptext_gateway_active_now",
            "Requests executing right now, across all routes",
            &[],
            &self.active_now,
        );
        registry.register_gauge(
            "cryptext_gateway_queued_now",
            "Requests waiting in admission queues right now",
            &[],
            &self.queued_now,
        );
    }

    /// Admitted requests that queued first, across all routes — the
    /// legacy `queue_waits` counter as a histogram-count projection.
    pub(crate) fn queue_waits_total(&self) -> u64 {
        self.queue_wait_us.iter().map(|h| h.count()).sum()
    }
}

/// A point-in-time copy of the gateway's counters and gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStatsSnapshot {
    /// Requests that passed admission (straight in or after queueing).
    pub admitted: u64,
    /// Admitted requests that had to wait in the queue first.
    pub queue_waits: u64,
    /// Requests shed because the wait queue was full.
    pub shed_queue_full: u64,
    /// Requests shed because the gateway was draining.
    pub shed_draining: u64,
    /// Queued requests whose deadline expired before a slot freed.
    pub queue_deadline_expired: u64,
    /// Execution jobs dispatched (leaders and uncoalesced calls).
    pub executions: u64,
    /// Retry attempts across all requests.
    pub retries: u64,
    /// Requests that returned `Ok` to their caller.
    pub completed_ok: u64,
    /// Requests that returned an error (excluding sheds, which are
    /// counted above, and caller deadline detaches).
    pub failed: u64,
    /// Callers that detached with `DeadlineExceeded` (queue waits
    /// excluded — those are `queue_deadline_expired`).
    pub deadline_exceeded: u64,
    /// Requests that attached to an in-flight leader instead of
    /// executing.
    pub coalesced_followers: u64,
    /// Followers promoted to leader after a retryable leader failure.
    pub promoted_followers: u64,
    /// Requests executing right now, across all routes.
    pub active_now: usize,
    /// Requests waiting in admission queues right now.
    pub queued_now: usize,
}
