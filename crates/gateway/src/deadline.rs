//! Per-request deadline budgets.
//!
//! A [`Deadline`] is created once at admission and threaded through every
//! layer; it measures time on the *service's* injected
//! [`Clock`](cryptext_common::Clock), so gateway deadlines and the rate
//! limiter's windows share one notion of time (a simulated clock in
//! tests freezes both coherently).
//!
//! Blocking waits, by contrast, cannot sleep on the injected clock — a
//! frozen [`SimClock`](cryptext_common::SimClock) would park them
//! forever even when the event they wait for (a freed slot, a settled
//! flight) arrives via condvar notification. Every wait in this crate is
//! therefore a condvar loop over short **real-time** slices
//! ([`WAIT_SLICE`]) that re-checks the injected clock each wake: notified
//! progress is observed immediately, and expiry is observed within one
//! slice of the clock saying so.

use std::sync::Arc;
use std::time::Duration;

use cryptext_common::{Clock, Error, Result, Timestamp};

/// How long a blocking wait parks before re-checking its predicate and
/// the injected clock. Small enough that simulated-clock expiry is seen
/// promptly; large enough that a parked waiter costs ~no CPU.
pub(crate) const WAIT_SLICE: Duration = Duration::from_millis(2);

/// A request's time budget: a start instant on the injected clock plus a
/// span in milliseconds. Cheap to clone; clones share the clock.
#[derive(Clone)]
pub struct Deadline {
    clock: Arc<dyn Clock>,
    start: Timestamp,
    budget_ms: u64,
}

impl std::fmt::Debug for Deadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deadline")
            .field("start", &self.start)
            .field("budget_ms", &self.budget_ms)
            .field("remaining_ms", &self.remaining_ms())
            .finish()
    }
}

impl Deadline {
    /// Start a budget of `budget_ms` now (on `clock`).
    pub fn new(clock: Arc<dyn Clock>, budget_ms: u64) -> Self {
        let start = clock.now();
        Deadline {
            clock,
            start,
            budget_ms,
        }
    }

    /// The granted budget, in milliseconds.
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// Milliseconds spent since the deadline started.
    pub fn elapsed_ms(&self) -> u64 {
        self.clock.now().saturating_sub(self.start)
    }

    /// Milliseconds of budget left (0 when expired).
    pub fn remaining_ms(&self) -> u64 {
        self.budget_ms.saturating_sub(self.elapsed_ms())
    }

    /// Has the budget run out?
    pub fn expired(&self) -> bool {
        self.remaining_ms() == 0
    }

    /// The cancellation probe shape the cancellable store walk consumes:
    /// `Some(DeadlineExceeded)` once expired, `None` while budget
    /// remains.
    pub fn probe(&self) -> Option<Error> {
        self.expired().then_some(Error::DeadlineExceeded {
            budget_ms: self.budget_ms,
        })
    }

    /// Layer-boundary check: `Err(DeadlineExceeded)` once expired.
    pub fn check(&self) -> Result<()> {
        match self.probe() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_common::SimClock;

    #[test]
    fn budget_counts_down_on_the_injected_clock() {
        let clock = SimClock::new(1_000);
        let d = Deadline::new(Arc::new(clock.clone()), 50);
        assert_eq!(d.remaining_ms(), 50);
        assert!(!d.expired());
        assert!(d.check().is_ok());

        clock.advance(49);
        assert_eq!(d.remaining_ms(), 1);
        assert!(d.probe().is_none());

        clock.advance(1);
        assert!(d.expired());
        assert!(matches!(
            d.probe(),
            Some(Error::DeadlineExceeded { budget_ms: 50 })
        ));
        assert!(d.check().is_err());
    }

    #[test]
    fn zero_budget_is_born_expired_and_overshoot_saturates() {
        let clock = SimClock::new(0);
        let d = Deadline::new(Arc::new(clock.clone()), 0);
        assert!(d.expired());
        clock.advance(10_000);
        assert_eq!(d.remaining_ms(), 0, "no underflow past expiry");
    }

    #[test]
    fn clones_share_the_clock_and_start() {
        let clock = SimClock::new(0);
        let d = Deadline::new(Arc::new(clock.clone()), 10);
        let d2 = d.clone();
        clock.advance(10);
        assert!(d.expired() && d2.expired(), "clones expire together");
    }
}
