//! Single-flight coalescing: duplicate in-flight work runs once.
//!
//! A [`SingleFlight`] group maps a request key (route + input hash + DB
//! generation, computed by the gateway) to the one **leader** executing
//! it. Duplicates arriving while the leader runs attach as **followers**
//! and receive the leader's exact result — `Ok` values are clones of the
//! same bytes, errors are broadcast via
//! [`Error::duplicate`](cryptext_common::Error::duplicate) so a
//! non-`Clone` error still reaches every waiter with its category and
//! message intact.
//!
//! **Leader failure does not doom the cohort.** When a leader settles
//! with a retryable error (or with its own personal `DeadlineExceeded`)
//! while followers wait, the flight is left *abandoned* instead of
//! completed: exactly one follower promotes to leader and executes with
//! its own deadline and retry budget; the rest keep waiting on the new
//! leader. Only non-retryable errors (bad input, unauthorized) broadcast
//! — those would fail identically for every follower anyway.
//!
//! Waiting follows the crate-wide rule ([`crate::deadline`]): condvar
//! waits in real-time slices, expiry measured on the injected clock. A
//! follower whose deadline expires detaches ([`FollowerOutcome::TimedOut`])
//! without disturbing the flight.

use std::collections::hash_map::Entry;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use cryptext_common::hash::FxHashMap;
use cryptext_common::{Error, Result};

use crate::deadline::{Deadline, WAIT_SLICE};

/// One coalescing group (the gateway keeps one per coalescable route).
pub struct SingleFlight<V> {
    flights: Mutex<FxHashMap<u64, Arc<Flight<V>>>>,
}

impl<V> Default for SingleFlight<V> {
    fn default() -> Self {
        SingleFlight {
            flights: Mutex::new(FxHashMap::default()),
        }
    }
}

impl<V> std::fmt::Debug for SingleFlight<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFlight")
            .field("in_flight", &lock(&self.flights).len())
            .finish()
    }
}

/// One in-flight execution that followers wait on.
pub struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

enum FlightState<V> {
    /// A leader is executing; `waiters` followers wait.
    Running { waiters: usize },
    /// The leader failed retryably; the next follower to wake claims
    /// leadership.
    Abandoned { waiters: usize },
    /// Final result, broadcast to every waiter.
    Done(Result<V>),
}

/// What [`SingleFlight::join`] made of the caller.
pub enum Join<V> {
    /// No duplicate in flight: the caller must execute and then
    /// [`settle`](SingleFlight::settle) the key.
    Leader,
    /// A leader is already executing; wait on the flight.
    Follower(Arc<Flight<V>>),
}

/// How a follower's wait ended.
pub enum FollowerOutcome<V> {
    /// The leader settled; this is its result (cloned value or
    /// duplicated error).
    Settled(Result<V>),
    /// The leader failed retryably and this follower was promoted: it
    /// must now execute and settle the key itself.
    Promoted,
    /// The follower's own deadline expired first.
    TimedOut,
}

/// How [`SingleFlight::settle`] disposed of the flight (stats/tests).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Settled {
    /// Result broadcast, flight retired.
    Done,
    /// Retryable failure with live waiters: flight left for promotion.
    Abandoned,
    /// No flight under the key (every follower already detached and the
    /// last one cleaned up).
    NoFlight,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clone an `Ok` for one more waiter, or duplicate the error so each
/// waiter owns a faithful copy.
fn duplicate_result<V: Clone>(r: &Result<V>) -> Result<V> {
    match r {
        Ok(v) => Ok(v.clone()),
        Err(e) => Err(e.duplicate()),
    }
}

/// Should a failed leader hand the flight to a follower instead of
/// broadcasting? Retryable errors, plus the leader's own deadline expiry
/// — a leader that ran out of *its* budget says nothing about the
/// followers' budgets.
fn promotes(e: &Error) -> bool {
    e.is_retryable() || matches!(e, Error::DeadlineExceeded { .. })
}

impl<V: Clone> SingleFlight<V> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Join the flight for `key`: the first caller becomes the leader,
    /// later callers attach as followers. A leader **must** eventually
    /// [`settle`](Self::settle) the key, or followers wait out their
    /// deadlines.
    pub fn join(&self, key: u64) -> Join<V> {
        let mut map = lock(&self.flights);
        match map.entry(key) {
            Entry::Occupied(entry) => {
                let flight = Arc::clone(entry.get());
                // Register under the flight lock while still holding the
                // map lock (the same order `settle` uses), so the waiter
                // count can never miss a concurrent settle.
                match &mut *lock(&flight.state) {
                    FlightState::Running { waiters } | FlightState::Abandoned { waiters } => {
                        *waiters += 1
                    }
                    // Unreachable: settles remove the entry under the
                    // map lock before marking Done. Registering is still
                    // harmless — wait() returns the result immediately.
                    FlightState::Done(_) => {}
                }
                Join::Follower(flight)
            }
            Entry::Vacant(entry) => {
                entry.insert(Arc::new(Flight {
                    state: Mutex::new(FlightState::Running { waiters: 0 }),
                    cv: Condvar::new(),
                }));
                Join::Leader
            }
        }
    }

    /// Deliver the leader's final result for `key`.
    ///
    /// A promotable failure (see module docs) with followers still
    /// waiting leaves the flight abandoned for one of them to claim;
    /// anything else broadcasts and retires the flight.
    pub(crate) fn settle(&self, key: u64, result: &Result<V>) -> Settled {
        let mut map = lock(&self.flights);
        let Some(flight) = map.get(&key).map(Arc::clone) else {
            return Settled::NoFlight;
        };
        let mut st = lock(&flight.state);
        let waiters = match *st {
            FlightState::Running { waiters } | FlightState::Abandoned { waiters } => waiters,
            FlightState::Done(_) => 0,
        };
        if let Err(e) = result {
            if promotes(e) && waiters > 0 {
                *st = FlightState::Abandoned { waiters };
                drop(st);
                drop(map);
                flight.cv.notify_all();
                return Settled::Abandoned;
            }
        }
        map.remove(&key);
        *st = FlightState::Done(duplicate_result(result));
        drop(st);
        drop(map);
        flight.cv.notify_all();
        Settled::Done
    }

    /// Wait on a flight joined as a follower.
    pub fn wait(&self, flight: &Arc<Flight<V>>, deadline: &Deadline) -> FollowerOutcome<V> {
        let mut st = lock(&flight.state);
        loop {
            match &mut *st {
                FlightState::Done(r) => return FollowerOutcome::Settled(duplicate_result(r)),
                FlightState::Abandoned { waiters } => {
                    // Claim leadership for this follower; the rest keep
                    // waiting on the (again-running) flight.
                    *st = FlightState::Running {
                        waiters: *waiters - 1,
                    };
                    return FollowerOutcome::Promoted;
                }
                FlightState::Running { waiters } => {
                    if deadline.expired() {
                        *waiters -= 1;
                        drop(st);
                        return FollowerOutcome::TimedOut;
                    }
                }
            }
            let (guard, _) = flight
                .cv
                .wait_timeout(st, WAIT_SLICE)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Flights currently in the map (tests/leak checks).
    pub fn in_flight(&self) -> usize {
        lock(&self.flights).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_common::{SimClock, SystemClock};

    fn frozen_deadline() -> Deadline {
        Deadline::new(Arc::new(SimClock::new(0)), 1_000)
    }

    #[test]
    fn followers_receive_the_leaders_exact_value() {
        let sf: Arc<SingleFlight<Vec<u8>>> = Arc::new(SingleFlight::new());
        assert!(matches!(sf.join(7), Join::Leader));

        let mut handles = Vec::new();
        for _ in 0..3 {
            let sf = Arc::clone(&sf);
            handles.push(std::thread::spawn(move || match sf.join(7) {
                Join::Follower(flight) => match sf.wait(&flight, &frozen_deadline()) {
                    FollowerOutcome::Settled(r) => r.unwrap(),
                    _ => panic!("follower expected a settled result"),
                },
                Join::Leader => panic!("leader already exists"),
            }));
        }
        // Let every follower attach before settling.
        loop {
            let map = lock(&sf.flights);
            let attached = map.get(&7).map(|f| match *lock(&f.state) {
                FlightState::Running { waiters } => waiters,
                _ => 0,
            });
            drop(map);
            if attached == Some(3) {
                break;
            }
            std::thread::sleep(WAIT_SLICE);
        }
        assert_eq!(sf.settle(7, &Ok(vec![1, 2, 3])), Settled::Done);
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![1, 2, 3]);
        }
        assert_eq!(sf.in_flight(), 0, "settled flight retired");
    }

    #[test]
    fn non_retryable_errors_broadcast_as_duplicates() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        assert!(matches!(sf.join(1), Join::Leader));
        let sf2 = Arc::clone(&sf);
        let follower = std::thread::spawn(move || match sf2.join(1) {
            Join::Follower(flight) => match sf2.wait(&flight, &frozen_deadline()) {
                FollowerOutcome::Settled(r) => r,
                _ => panic!("expected settled"),
            },
            Join::Leader => panic!("leader already exists"),
        });
        while sf.in_flight() == 0 {
            std::thread::sleep(WAIT_SLICE);
        }
        // Give the follower a moment to attach; broadcast works whether
        // or not it has (Done is observed on next wake).
        std::thread::sleep(WAIT_SLICE);
        let err = Error::InvalidArgument("k too large".into());
        assert_eq!(sf.settle(1, &Err(err)), Settled::Done);
        match follower.join().unwrap() {
            Err(Error::InvalidArgument(msg)) => assert_eq!(msg, "k too large"),
            other => panic!("expected duplicated InvalidArgument, got {other:?}"),
        }
    }

    #[test]
    fn retryable_leader_failure_promotes_exactly_one_follower() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        assert!(matches!(sf.join(9), Join::Leader));

        let mut handles = Vec::new();
        for _ in 0..2 {
            let sf = Arc::clone(&sf);
            handles.push(std::thread::spawn(move || match sf.join(9) {
                Join::Follower(flight) => match sf.wait(&flight, &frozen_deadline()) {
                    FollowerOutcome::Promoted => {
                        // The promoted follower executes and settles.
                        assert_eq!(sf.settle(9, &Ok(77)), Settled::Done);
                        ("promoted", 77)
                    }
                    FollowerOutcome::Settled(r) => ("settled", r.unwrap()),
                    FollowerOutcome::TimedOut => panic!("unexpected timeout"),
                },
                Join::Leader => panic!("leader already exists"),
            }));
        }
        loop {
            let map = lock(&sf.flights);
            let attached = map.get(&9).map(|f| match *lock(&f.state) {
                FlightState::Running { waiters } => waiters,
                _ => 0,
            });
            drop(map);
            if attached == Some(2) {
                break;
            }
            std::thread::sleep(WAIT_SLICE);
        }

        let overloaded = Error::Overloaded { retry_after_ms: 5 };
        assert_eq!(sf.settle(9, &Err(overloaded)), Settled::Abandoned);

        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let promoted = outcomes
            .iter()
            .filter(|(role, _)| *role == "promoted")
            .count();
        assert_eq!(promoted, 1, "exactly one follower claims leadership");
        assert!(outcomes.iter().all(|&(_, v)| v == 77));
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn retryable_failure_with_no_waiters_just_retires_the_flight() {
        let sf: SingleFlight<u32> = SingleFlight::new();
        assert!(matches!(sf.join(3), Join::Leader));
        let err = Error::Overloaded { retry_after_ms: 5 };
        assert_eq!(sf.settle(3, &Err(err)), Settled::Done);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn follower_deadline_detaches_without_disturbing_the_flight() {
        let sf: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
        assert!(matches!(sf.join(4), Join::Leader));
        let flight = match sf.join(4) {
            Join::Follower(f) => f,
            Join::Leader => panic!("leader already exists"),
        };
        let short = Deadline::new(Arc::new(SystemClock), 10);
        assert!(matches!(
            sf.wait(&flight, &short),
            FollowerOutcome::TimedOut
        ));
        // The leader is unaffected and can still settle for nobody.
        assert_eq!(sf.settle(4, &Ok(1)), Settled::Done);
    }
}
