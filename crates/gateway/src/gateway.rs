//! The gateway proper: the layer onion assembled over one
//! [`CryptextService`], plus the pool-backed execution core and the
//! graceful-drain path.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use cryptext_common::hash::{fx_hash_bytes, fx_hash_str};
use cryptext_common::metrics::MetricsRegistry;
use cryptext_common::{failpoint, par, Error, Result};
use cryptext_core::database::TokenDatabase;
use cryptext_core::lookup::{LookupHit, LookupParams};
use cryptext_core::normalize::{NormalizationResult, NormalizeParams};
use cryptext_core::perturb::{PerturbParams, PerturbationOutcome};
use cryptext_core::service::{ApiToken, CryptextService, Served};
use cryptext_core::TokenStore;

use crate::admission::{Acquired, Permit, RouteAdmission};
use crate::deadline::{Deadline, WAIT_SLICE};
use crate::envelope::{CacheDisposition, Request, Response, RouteOutput, RouteParams};
use crate::singleflight::{FollowerOutcome, Join, SingleFlight};
use crate::stats::StatsReport;
use crate::{GatewayConfig, GatewayStats, GatewayStatsSnapshot, RouteClass};

/// Backoff never exceeds this, so exhausting a retry budget stays cheap
/// even with a large base (and debug-mode tests stay fast).
const MAX_BACKOFF_MS: u64 = 100;

/// Per-call overrides; `Default` inherits the gateway's configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct CallOptions {
    /// Deadline budget for this call (ms); `None` uses
    /// [`GatewayConfig::default_deadline_ms`].
    pub deadline_ms: Option<u64>,
    /// Retry budget for this call; `None` uses
    /// [`GatewayConfig::max_retries`].
    pub max_retries: Option<u32>,
}

impl CallOptions {
    /// Override only the deadline.
    pub fn with_deadline_ms(deadline_ms: u64) -> Self {
        CallOptions {
            deadline_ms: Some(deadline_ms),
            ..CallOptions::default()
        }
    }

    /// Disable retries for this call.
    pub fn no_retries(mut self) -> Self {
        self.max_retries = Some(0);
        self
    }
}

/// A request through the front half of the onion — admission passed,
/// authorization passed — carrying everything the execution core needs:
/// the lane permit, the request deadline, and the remaining retry
/// budget. (Previously an anonymous `(Permit, Deadline, u32)` tuple
/// load-bearing at three call sites.)
struct Admitted {
    permit: Permit,
    deadline: Deadline,
    retries: u32,
}

/// What [`Gateway::drain_with`] observed.
#[derive(Debug)]
pub struct DrainReport {
    /// Every in-flight request finished before the drain deadline.
    pub quiesced: bool,
    /// Requests still running (or queued) when the flush started —
    /// nonzero only when the drain deadline fired first.
    pub in_flight_at_flush: usize,
    /// Real milliseconds spent waiting for quiescence.
    pub waited_ms: u64,
    /// Error from the flush hook (or the `gateway.drain.flush`
    /// failpoint), if any. A failed flush is reported, not swallowed:
    /// recovery then falls back to the durable store's committed prefix.
    pub flush_error: Option<Error>,
    /// Expired cache entries reaped from every tier after the flush —
    /// drain leaves no expired entries behind.
    pub cache_expired_reaped: usize,
}

/// The caller side of one dispatched execution: a slot the pool worker
/// fills and a condvar the (possibly detaching) caller waits on.
struct Completion<V> {
    slot: Mutex<Option<Result<V>>>,
    cv: Condvar,
}

impl<V> Completion<V> {
    fn new() -> Self {
        Completion {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<V>) {
        *lock(&self.slot) = Some(result);
        self.cv.notify_all();
    }

    /// Wait for the worker under the caller's deadline; `None` means the
    /// deadline expired first and the caller detaches (the worker still
    /// finishes and releases its resources).
    fn wait(&self, deadline: &Deadline) -> Option<Result<V>> {
        let mut slot = lock(&self.slot);
        loop {
            if let Some(result) = slot.take() {
                return Some(result);
            }
            if deadline.expired() {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(slot, WAIT_SLICE)
                .unwrap_or_else(|e| e.into_inner());
            slot = guard;
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The shared, retryable request body every layer hands down: invoked
/// once per attempt with the service and the request's deadline.
type RequestBody<S, V> = Arc<dyn Fn(&CryptextService<S>, &Deadline) -> Result<V> + Send + Sync>;

/// The overload-resilient front-end. See the crate docs for the layer
/// walk; construction wires every layer over one shared service.
pub struct Gateway<S: TokenStore + Send + Sync + 'static = TokenDatabase> {
    service: Arc<CryptextService<S>>,
    config: GatewayConfig,
    routes: [Arc<RouteAdmission>; 4],
    /// One coalescing group for every cacheable route: keys are prefixed
    /// with the route name, so lanes can't collide, and carrying the
    /// [`Served`] provenance in the flight value means coalesced
    /// followers inherit their leader's cache disposition.
    flights: Arc<SingleFlight<(RouteOutput, Served)>>,
    /// Database generation mixed into coalescing keys: bumping it after
    /// an ingest means new requests can never attach to a flight whose
    /// leader read the pre-ingest store.
    generation: AtomicU64,
    draining: AtomicBool,
    stats: Arc<GatewayStats>,
}

impl<S: TokenStore + Send + Sync + 'static> std::fmt::Debug for Gateway<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("config", &self.config)
            .field("draining", &self.draining.load(Ordering::Acquire))
            .field("stats", &self.stats())
            .finish()
    }
}

impl<S: TokenStore + Send + Sync + 'static> Gateway<S> {
    /// Front `service` with the gateway, pre-growing the shared worker
    /// pool to the configured concurrency so steady-state dispatches
    /// never pay a thread spawn. The gateway's counters and queue-wait
    /// histograms register with the service's [`MetricsRegistry`] here —
    /// one gateway per service instance (duplicate registration panics).
    pub fn new(service: Arc<CryptextService<S>>, config: GatewayConfig) -> Self {
        par::ensure_pool_capacity(config.total_concurrency());
        let routes = [
            RouteAdmission::new(config.lookup),
            RouteAdmission::new(config.normalize),
            RouteAdmission::new(config.perturb),
            RouteAdmission::new(config.listening),
        ];
        let stats = Arc::new(GatewayStats::default());
        stats.register(service.metrics());
        Gateway {
            service,
            config,
            routes,
            flights: Arc::new(SingleFlight::new()),
            generation: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stats,
        }
    }

    /// The fronted service.
    pub fn service(&self) -> &Arc<CryptextService<S>> {
        &self.service
    }

    /// The active configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Counters plus point-in-time gauges — a projection of the same
    /// registry cells `GET /metrics` renders ([`Self::metrics_text`]):
    /// `queue_waits` is the summed count of the per-route queue-wait
    /// histograms, everything else reads its registered counter.
    pub fn stats(&self) -> GatewayStatsSnapshot {
        let s = &self.stats;
        let active_now: usize = self.routes.iter().map(|r| r.active()).sum();
        let queued_now: usize = self.routes.iter().map(|r| r.queued()).sum();
        s.active_now.set(active_now as i64);
        s.queued_now.set(queued_now as i64);
        GatewayStatsSnapshot {
            admitted: s.admitted.get(),
            queue_waits: s.queue_waits_total(),
            shed_queue_full: s.shed_queue_full.get(),
            shed_draining: s.shed_draining.get(),
            queue_deadline_expired: s.queue_deadline_expired.get(),
            executions: s.executions.get(),
            retries: s.retries.get(),
            completed_ok: s.completed_ok.get(),
            failed: s.failed.get(),
            deadline_exceeded: s.deadline_exceeded.get(),
            coalesced_followers: s.coalesced_followers.get(),
            promoted_followers: s.promoted_followers.get(),
            active_now,
            queued_now,
        }
    }

    /// The service's metrics registry — the gateway's instruments live
    /// in it alongside every other layer's.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.service.metrics()
    }

    /// The `GET /metrics` body: every registered instrument in
    /// Prometheus text exposition format, with the point-in-time gauges
    /// (active/queued) refreshed first.
    pub fn metrics_text(&self) -> String {
        let _ = self.stats(); // refresh active_now / queued_now gauges
        self.service.metrics().render_prometheus()
    }

    /// The unified operator surface: every layer's counters in one
    /// report ([`Gateway::stats`] + [`Self::cache_stats`] + the draining
    /// flag). `GET /stats` serves `stats_report().to_json()`.
    pub fn stats_report(&self) -> StatsReport {
        StatsReport {
            gateway: self.stats(),
            cache: self.service.cache_tier_stats(),
            draining: self.is_draining(),
        }
    }

    /// Invalidate coalescing *and* the service's result caches across a
    /// store mutation (call after ingest/reshard): in-flight leaders
    /// finish and serve their cohort the pre-mutation result, no *new*
    /// request joins them, and the version bump forwarded to the service
    /// flushes every cached result (tier-1 keys + the tier-2 namespace).
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.service.bump_generation();
    }

    /// Cache-hierarchy counters of the fronted service.
    pub fn cache_stats(&self) -> cryptext_core::service::CacheTierSnapshot {
        self.service.cache_tier_stats()
    }

    /// Is the gateway refusing new admissions?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    // ---- the layer onion ------------------------------------------------

    /// Run `f` through every layer except coalescing: admission on
    /// `route`, authorization for `auth`, then pool execution under a
    /// deadline with bounded retries. `f` may run multiple times (once
    /// per retry) and must be self-contained (`'static`): it receives
    /// the service and the request deadline each attempt.
    pub fn call<V, F>(
        &self,
        route: RouteClass,
        auth: &ApiToken,
        opts: CallOptions,
        f: F,
    ) -> Result<V>
    where
        V: Clone + Send + 'static,
        F: Fn(&CryptextService<S>, &Deadline) -> Result<V> + Send + Sync + 'static,
    {
        let Admitted {
            permit,
            deadline,
            retries,
        } = self.admit_and_authorize(route, auth, opts)?;
        self.execute::<V>(permit, deadline, retries, None, Arc::new(f))
    }

    /// [`Self::call`] plus single-flight coalescing in `flights` under
    /// `key`: duplicates of an in-flight request attach to its leader
    /// instead of executing. Every caller is admitted and charged
    /// individually *before* attaching — coalescing shares the work, not
    /// the authorization.
    ///
    /// The typed endpoints ([`Self::look_up`], [`Self::normalize`]) feed
    /// the gateway's internal groups; external callers with their own
    /// coalescable work bring their own [`SingleFlight`] group and key.
    pub fn call_coalesced<V, F>(
        &self,
        route: RouteClass,
        key: u64,
        auth: &ApiToken,
        opts: CallOptions,
        flights: &Arc<SingleFlight<V>>,
        f: F,
    ) -> Result<V>
    where
        V: Clone + Send + 'static,
        F: Fn(&CryptextService<S>, &Deadline) -> Result<V> + Send + Sync + 'static,
    {
        let Admitted {
            permit,
            deadline,
            retries,
        } = self.admit_and_authorize(route, auth, opts)?;
        let f: RequestBody<S, V> = Arc::new(f);
        match flights.join(key) {
            Join::Leader => self.execute(
                permit,
                deadline,
                retries,
                Some((key, Arc::clone(flights))),
                f,
            ),
            Join::Follower(flight) => {
                self.stats.coalesced_followers.inc();
                match flights.wait(&flight, &deadline) {
                    FollowerOutcome::Settled(result) => {
                        self.count_outcome(&result);
                        result
                    }
                    FollowerOutcome::Promoted => {
                        self.stats.promoted_followers.inc();
                        self.execute(
                            permit,
                            deadline,
                            retries,
                            Some((key, Arc::clone(flights))),
                            f,
                        )
                    }
                    FollowerOutcome::TimedOut => {
                        self.stats.deadline_exceeded.inc();
                        Err(Error::DeadlineExceeded {
                            budget_ms: deadline.budget_ms(),
                        })
                    }
                }
            }
        }
    }

    /// Admission + authorization, the shared front half of every call.
    fn admit_and_authorize(
        &self,
        route: RouteClass,
        auth: &ApiToken,
        opts: CallOptions,
    ) -> Result<Admitted> {
        let deadline = Deadline::new(
            self.service.clock(),
            opts.deadline_ms.unwrap_or(self.config.default_deadline_ms),
        );
        let retries = opts.max_retries.unwrap_or(self.config.max_retries);
        if self.is_draining() {
            self.stats.shed_draining.inc();
            return Err(Error::Overloaded {
                retry_after_ms: self.config.shed_retry_after_ms,
            });
        }
        let acquired = self.routes[route.index()]
            .acquire(&deadline, &self.draining, self.config.shed_retry_after_ms)
            .inspect_err(|e| match e {
                Error::Overloaded { .. } => {
                    if self.is_draining() {
                        self.stats.shed_draining.inc();
                    } else {
                        self.stats.shed_queue_full.inc();
                    }
                }
                Error::DeadlineExceeded { .. } => {
                    self.stats.queue_deadline_expired.inc();
                }
                _ => {}
            })?;
        let Acquired { permit, queue_wait } = acquired;
        self.stats.admitted.inc();
        if let Some(wait) = queue_wait {
            self.stats.queue_wait_us[route.index()].observe(wait.as_micros() as u64);
        }
        // Authorization runs *after* admission (a revocation while the
        // request queued rejects it here, deterministically) and charges
        // the token's rate window exactly once for this call.
        self.service.authorize_request(auth)?;
        Ok(Admitted {
            permit,
            deadline,
            retries,
        })
    }

    /// The execution core: hand the request body to a pool worker, wait
    /// under the caller's deadline, detach on expiry. The worker owns the
    /// admission permit and the flight settlement, so a detached caller
    /// never leaks a slot or strands a cohort.
    fn execute<V: Clone + Send + 'static>(
        &self,
        permit: Permit,
        deadline: Deadline,
        max_retries: u32,
        flight: Option<(u64, Arc<SingleFlight<V>>)>,
        f: RequestBody<S, V>,
    ) -> Result<V> {
        self.stats.executions.inc();
        let completion = Arc::new(Completion::new());
        let job = {
            let completion = Arc::clone(&completion);
            let service = Arc::clone(&self.service);
            let stats = Arc::clone(&self.stats);
            let backoff_base = self.config.retry_backoff_ms;
            let deadline = deadline.clone();
            move || {
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    run_attempts(&service, &deadline, max_retries, backoff_base, &stats, &*f)
                }))
                .unwrap_or_else(|_| {
                    Err(Error::Internal(
                        "gateway execution panicked; request failed cleanly".into(),
                    ))
                });
                if let Some((key, flights)) = flight {
                    flights.settle(key, &result);
                }
                drop(permit);
                completion.complete(result);
            }
        };
        // A refused dispatch (pool exhausted, or we *are* a pool worker)
        // degrades to inline execution — same semantics, no detach.
        if let Err(job) = par::spawn(job) {
            job();
        }
        match completion.wait(&deadline) {
            Some(result) => {
                self.count_outcome(&result);
                result
            }
            None => {
                self.stats.deadline_exceeded.inc();
                Err(Error::DeadlineExceeded {
                    budget_ms: deadline.budget_ms(),
                })
            }
        }
    }

    fn count_outcome<V>(&self, result: &Result<V>) {
        let counter = if result.is_ok() {
            &self.stats.completed_ok
        } else {
            &self.stats.failed
        };
        counter.inc();
    }

    // ---- typed endpoints ------------------------------------------------

    /// Coalescing key for one endpoint invocation: route, exact input,
    /// parameters, and the current DB generation.
    fn coalesce_key(&self, material: &str) -> u64 {
        let generation = self.generation.load(Ordering::Acquire);
        fx_hash_bytes(
            &[
                fx_hash_str(material).to_le_bytes(),
                generation.to_le_bytes(),
            ]
            .concat(),
        )
    }

    /// The unified entry point: one [`Request`] in, one [`Response`]
    /// out, for every route. Cacheable routes (Look Up, Normalization)
    /// go through single-flight coalescing keyed on route, exact input,
    /// parameters, and generation; Perturbation runs uncoalesced (the
    /// seeded RNG makes byte-identical duplicates rare enough that
    /// sharing buys nothing) and is marked [`CacheDisposition::Bypass`].
    ///
    /// The typed shims ([`Self::look_up`], [`Self::normalize`],
    /// [`Self::perturb`]) unwrap the envelope for in-process callers;
    /// wire layers serve [`Response::body_json`] plus the cache
    /// metadata.
    pub fn handle(&self, auth: &ApiToken, req: Request) -> Result<Response> {
        // Snapshot before dispatch: the result is computed under *at
        // least* this generation (a concurrent bump splits the coalesce
        // key, so a stale flight can't serve a post-bump request).
        let generation = self.generation.load(Ordering::Acquire);
        let input = req.input;
        let (output, served) = match req.params {
            RouteParams::Lookup(params) => {
                let key = self.coalesce_key(&format!(
                    "lookup\u{1}{input}\u{1}{}\u{1}{}\u{1}{}\u{1}{}",
                    params.k, params.d, params.exclude_identity, params.observed_only
                ));
                let flights = Arc::clone(&self.flights);
                self.call_coalesced(
                    RouteClass::Lookup,
                    key,
                    auth,
                    req.opts,
                    &flights,
                    move |svc, deadline| {
                        let mut probe = || deadline.probe();
                        svc.look_up_prechecked_traced(&input, params, &mut probe)
                            .map(|(hits, served)| (RouteOutput::Lookup(hits), served))
                    },
                )?
            }
            RouteParams::Normalize(params) => {
                let key = self.coalesce_key(&format!(
                    "normalize\u{1}{input}\u{1}{}\u{1}{}\u{1}{}\u{1}{}\u{1}{}",
                    params.k,
                    params.d,
                    params.edit_penalty,
                    params.prior_weight,
                    params.max_candidates
                ));
                let flights = Arc::clone(&self.flights);
                self.call_coalesced(
                    RouteClass::Normalize,
                    key,
                    auth,
                    req.opts,
                    &flights,
                    move |svc, _| {
                        svc.normalize_prechecked_traced(&input, params)
                            .map(|(r, served)| (RouteOutput::Normalize(r), served))
                    },
                )?
            }
            RouteParams::Perturb(params) => {
                let (output, _) =
                    self.call(RouteClass::Perturb, auth, req.opts, move |svc, _| {
                        svc.perturb_prechecked(&input, params)
                            .map(|o| (RouteOutput::Perturb(o), Served::Cold))
                    })?;
                return Ok(Response {
                    output,
                    generation,
                    cache: CacheDisposition::Bypass,
                });
            }
        };
        Ok(Response {
            output,
            generation,
            cache: CacheDisposition::from_served(served),
        })
    }

    /// Look Up through the full onion, coalesced: concurrent duplicate
    /// queries (same token, parameters, and generation) execute once and
    /// share the leader's exact hits. The store walk is cooperatively
    /// cancellable — an expired deadline aborts it mid-walk. Thin shim
    /// over [`Self::handle`].
    pub fn look_up(
        &self,
        auth: &ApiToken,
        token: &str,
        params: LookupParams,
        opts: CallOptions,
    ) -> Result<Vec<LookupHit>> {
        self.handle(auth, Request::lookup(token, params).with_opts(opts))
            .map(|resp| {
                resp.output
                    .into_lookup()
                    .expect("lookup request yields lookup output")
            })
    }

    /// Normalization through the full onion, coalesced on the exact text
    /// and parameters. Thin shim over [`Self::handle`].
    pub fn normalize(
        &self,
        auth: &ApiToken,
        text: &str,
        params: NormalizeParams,
        opts: CallOptions,
    ) -> Result<NormalizationResult> {
        self.handle(auth, Request::normalize(text, params).with_opts(opts))
            .map(|resp| {
                resp.output
                    .into_normalize()
                    .expect("normalize request yields normalize output")
            })
    }

    /// Perturbation through the onion, uncoalesced. Thin shim over
    /// [`Self::handle`].
    pub fn perturb(
        &self,
        auth: &ApiToken,
        text: &str,
        params: PerturbParams,
        opts: CallOptions,
    ) -> Result<PerturbationOutcome> {
        self.handle(auth, Request::perturb(text, params).with_opts(opts))
            .map(|resp| {
                resp.output
                    .into_perturb()
                    .expect("perturb request yields perturb output")
            })
    }

    // ---- graceful drain -------------------------------------------------

    /// Stop admitting: new arrivals and queued waiters shed with
    /// [`Error::Overloaded`]; in-flight requests keep their permits and
    /// finish.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        for route in &self.routes {
            route.wake_all();
        }
    }

    /// Re-open admissions (after a completed drain, e.g. in tests that
    /// exercise drain-then-recover).
    pub fn end_drain(&self) {
        self.draining.store(false, Ordering::Release);
    }

    /// Graceful drain: stop admissions, wait for in-flight requests
    /// under the (real-time) drain deadline, then run `flush` — the
    /// durable store's delta-log sync in a durable deployment. The
    /// report says whether quiescence was reached and carries any flush
    /// error; it never panics and never hangs past the deadline.
    pub fn drain_with(&self, flush: impl FnOnce() -> Result<()>) -> DrainReport {
        self.begin_drain();
        // The drain budget is operational wall-clock time (how long the
        // operator waits), not simulated request time — a frozen test
        // clock must not stall shutdown forever.
        let started = std::time::Instant::now();
        let budget = Duration::from_millis(self.config.drain_deadline_ms);
        loop {
            let busy: usize = self.routes.iter().map(|r| r.active() + r.queued()).sum();
            if busy == 0 || started.elapsed() >= budget {
                break;
            }
            std::thread::sleep(WAIT_SLICE);
        }
        let in_flight_at_flush: usize = self.routes.iter().map(|r| r.active() + r.queued()).sum();
        let flush_error = failpoint::check("gateway.drain.flush")
            .and_then(|_| flush())
            .err();
        // A drained service leaves no expired cache entries behind: reap
        // every tier eagerly (after the flush, when traffic has stopped).
        let cache_expired_reaped = self.service.sweep_caches();
        DrainReport {
            quiesced: in_flight_at_flush == 0,
            in_flight_at_flush,
            waited_ms: started.elapsed().as_millis() as u64,
            flush_error,
            cache_expired_reaped,
        }
    }

    /// [`Self::drain_with`] with no flush hook.
    pub fn drain(&self) -> DrainReport {
        self.drain_with(|| Ok(()))
    }
}

/// One request's attempt loop, run on the worker: deadline check, the
/// `gateway.execute` failpoint (chaos arm: `delay@N:MS` stalls, `kill@N`
/// injects a retryable I/O error), the body, then bounded jittered
/// backoff for retryable failures while deadline budget remains.
fn run_attempts<S, V>(
    service: &CryptextService<S>,
    deadline: &Deadline,
    max_retries: u32,
    backoff_base_ms: u64,
    stats: &GatewayStats,
    f: &(dyn Fn(&CryptextService<S>, &Deadline) -> Result<V> + Send + Sync),
) -> Result<V>
where
    S: TokenStore + Send + Sync + 'static,
{
    let mut attempt: u32 = 0;
    loop {
        if let Some(e) = deadline.probe() {
            return Err(e);
        }
        let result = match failpoint::check("gateway.execute") {
            Ok(()) => f(service, deadline),
            Err(e) => Err(e),
        };
        match result {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt < max_retries && !deadline.expired() => {
                attempt += 1;
                stats.retries.inc();
                let nonce = stats.retry_nonce.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(backoff_ms(
                    backoff_base_ms,
                    attempt,
                    nonce,
                )));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Exponential backoff with deterministic-per-nonce jitter: attempt `n`
/// waits `base * 2^(n-1)` plus up to one extra `base`, capped at
/// [`MAX_BACKOFF_MS`]. The nonce (the global retry counter) decorrelates
/// concurrent retriers without needing an RNG.
fn backoff_ms(base: u64, attempt: u32, nonce: u64) -> u64 {
    let base = base.max(1);
    let exp = base.saturating_mul(1 << (attempt - 1).min(6));
    let jitter = fx_hash_bytes(&nonce.to_le_bytes()) % base;
    exp.saturating_add(jitter).min(MAX_BACKOFF_MS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_common::{SimClock, SystemClock};
    use cryptext_core::service::ServiceConfig;
    use cryptext_core::CrypText;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;

    fn test_service(limit: u32) -> (Arc<CryptextService<TokenDatabase>>, SimClock) {
        let mut db = TokenDatabase::in_memory();
        for text in [
            "the dirrty republicans",
            "thee dirty repubLIEcans",
            "the dirty republic@@ns",
            "vaccine vacc1ne vaxxine mandates",
            "democrats demokkkrats dem0crats",
        ] {
            db.ingest_text(text);
        }
        let clock = SimClock::new(0);
        let svc = CryptextService::new(
            CrypText::new(db),
            ServiceConfig {
                rate_limit_per_minute: limit,
                ..ServiceConfig::default()
            },
            Arc::new(clock.clone()),
        );
        (Arc::new(svc), clock)
    }

    fn small_gateway(limit: u32) -> (Arc<Gateway<TokenDatabase>>, SimClock) {
        let (svc, clock) = test_service(limit);
        (Arc::new(Gateway::new(svc, GatewayConfig::default())), clock)
    }

    #[test]
    fn typed_endpoints_match_the_direct_service() {
        let (gw, _) = small_gateway(1_000_000);
        let token = gw.service().issue_token("unit");

        let direct = gw
            .service()
            .look_up(&token, "republicans", LookupParams::paper_default())
            .unwrap();
        let gated = gw
            .look_up(
                &token,
                "republicans",
                LookupParams::paper_default(),
                CallOptions::default(),
            )
            .unwrap();
        assert_eq!(gated, direct, "gateway adds layers, not different bytes");

        let direct = gw
            .service()
            .normalize(&token, "the vacc1ne mandates", NormalizeParams::default())
            .unwrap();
        let gated = gw
            .normalize(
                &token,
                "the vacc1ne mandates",
                NormalizeParams::default(),
                CallOptions::default(),
            )
            .unwrap();
        assert_eq!(gated, direct);

        let direct = gw
            .service()
            .perturb(
                &token,
                "the dirty republicans",
                PerturbParams::with_ratio(1.0),
            )
            .unwrap();
        let gated = gw
            .perturb(
                &token,
                "the dirty republicans",
                PerturbParams::with_ratio(1.0),
                CallOptions::default(),
            )
            .unwrap();
        assert_eq!(gated, direct, "seeded perturbation is deterministic");

        let stats = gw.stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.completed_ok, 3);
        assert_eq!((stats.active_now, stats.queued_now), (0, 0));
    }

    #[test]
    fn retryable_failures_consume_the_retry_budget_then_surface() {
        let (gw, _) = small_gateway(1_000_000);
        let token = gw.service().issue_token("retry");
        let calls = Arc::new(AtomicUsize::new(0));

        // Fails retryably twice, succeeds on the third attempt.
        let calls2 = Arc::clone(&calls);
        let out: Result<u32> = gw.call(
            RouteClass::Listening,
            &token,
            CallOptions::default(),
            move |_, _| {
                if calls2.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(Error::Overloaded { retry_after_ms: 1 })
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(gw.stats().retries, 2);

        // Non-retryable errors surface immediately, no retry spent.
        let before = gw.stats().retries;
        let out: Result<u32> = gw.call(
            RouteClass::Listening,
            &token,
            CallOptions::default(),
            |_, _| Err(Error::InvalidArgument("nope".into())),
        );
        assert!(matches!(out, Err(Error::InvalidArgument(_))));
        assert_eq!(gw.stats().retries, before);
    }

    #[test]
    fn caller_detaches_on_deadline_and_the_worker_still_releases_the_slot() {
        // Real clock so the caller's wait can actually expire.
        let svc = Arc::new(CryptextService::new(
            CrypText::new(TokenDatabase::in_memory()),
            ServiceConfig::default(),
            Arc::new(SystemClock),
        ));
        let gw: Arc<Gateway<TokenDatabase>> = Arc::new(Gateway::new(svc, GatewayConfig::default()));
        let token = gw.service().issue_token("slow");

        let (release_tx, release_rx) = channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let out: Result<u32> = gw.call(
            RouteClass::Listening,
            &token,
            CallOptions::with_deadline_ms(30).no_retries(),
            move |_, _| {
                let _ = lock(&release_rx).recv_timeout(Duration::from_secs(10));
                Ok(1)
            },
        );
        assert!(matches!(
            out,
            Err(Error::DeadlineExceeded { budget_ms: 30 })
        ));
        assert_eq!(gw.stats().deadline_exceeded, 1);

        // The detached worker still holds the slot until released…
        assert_eq!(gw.stats().active_now, 1);
        release_tx.send(()).unwrap();
        while gw.stats().active_now != 0 {
            std::thread::sleep(WAIT_SLICE);
        }
        // …and a fresh request then sails through.
        let ok: Result<u32> = gw.call(
            RouteClass::Listening,
            &token,
            CallOptions::default(),
            |_, _| Ok(2),
        );
        assert_eq!(ok.unwrap(), 2);
    }

    #[test]
    fn a_panicking_request_fails_cleanly_without_poisoning_the_lane() {
        let (gw, _) = small_gateway(1_000_000);
        let token = gw.service().issue_token("boom");
        let out: Result<u32> = gw.call(
            RouteClass::Perturb,
            &token,
            CallOptions::default(),
            |_, _| panic!("request body exploded"),
        );
        assert!(matches!(out, Err(Error::Internal(_))));
        let ok: Result<u32> = gw.call(
            RouteClass::Perturb,
            &token,
            CallOptions::default(),
            |_, _| Ok(3),
        );
        assert_eq!(ok.unwrap(), 3);
        assert_eq!(gw.stats().active_now, 0);
    }

    #[test]
    fn drain_sheds_then_recovers_admissions() {
        let (gw, _) = small_gateway(1_000_000);
        let token = gw.service().issue_token("ops");
        let report = gw.drain_with(|| Ok(()));
        assert!(report.quiesced);
        assert!(report.flush_error.is_none());
        assert!(matches!(
            gw.look_up(
                &token,
                "vaccine",
                LookupParams::paper_default(),
                CallOptions::default()
            ),
            Err(Error::Overloaded { .. })
        ));
        assert!(gw.stats().shed_draining >= 1);

        gw.end_drain();
        assert!(gw
            .look_up(
                &token,
                "vaccine",
                LookupParams::paper_default(),
                CallOptions::default()
            )
            .is_ok());
    }

    #[test]
    fn bump_generation_splits_coalescing_keys() {
        let (gw, _) = small_gateway(1_000_000);
        let before = gw.coalesce_key("lookup\u{1}x");
        gw.bump_generation();
        assert_ne!(before, gw.coalesce_key("lookup\u{1}x"));
    }

    #[test]
    fn bump_generation_forwards_to_service_cache_tiers() {
        let (gw, _) = small_gateway(1_000_000);
        let token = gw.service().issue_token("bump");

        gw.look_up(
            &token,
            "vaccine",
            LookupParams::paper_default(),
            CallOptions::default(),
        )
        .unwrap();
        assert_eq!(gw.service().cache_stats().inserts, 1);

        gw.bump_generation();
        let tiers = gw.cache_stats();
        assert_eq!(tiers.generation, 1, "service version advanced");
        assert_eq!(tiers.invalidation_bumps, 1);
        assert!(tiers.invalidated_entries >= 1, "cached lookup flushed");

        // The flushed entry is recomputed, not served stale.
        gw.look_up(
            &token,
            "vaccine",
            LookupParams::paper_default(),
            CallOptions::default(),
        )
        .unwrap();
        assert_eq!(gw.service().cache_stats().misses, 2);
        assert_eq!(gw.service().cache_stats().hits, 0);
    }

    #[test]
    fn drain_reaps_expired_cache_entries() {
        let (gw, clock) = small_gateway(1_000_000);
        let token = gw.service().issue_token("drain-sweep");

        gw.look_up(
            &token,
            "vaccine",
            LookupParams::paper_default(),
            CallOptions::default(),
        )
        .unwrap();
        gw.normalize(
            &token,
            "the vacc1ne mandates",
            NormalizeParams::default(),
            CallOptions::default(),
        )
        .unwrap();

        clock.advance(ServiceConfig::default().cache_ttl_ms + 1);
        let report = gw.drain_with(|| Ok(()));
        assert!(report.quiesced);
        assert!(
            report.cache_expired_reaped >= 2,
            "drain leaves no expired entries behind (reaped {})",
            report.cache_expired_reaped
        );
        gw.end_drain();
    }

    #[test]
    fn backoff_is_bounded_and_grows_with_attempts() {
        let a1 = backoff_ms(5, 1, 0);
        let a3 = backoff_ms(5, 3, 0);
        assert!((5..10).contains(&a1));
        assert!((20..25).contains(&a3));
        assert_eq!(backoff_ms(50, 6, 1), MAX_BACKOFF_MS);
        assert_eq!(backoff_ms(0, 1, 0), 1, "zero base still makes progress");
    }

    #[test]
    fn revoked_token_rejects_at_the_auth_layer() {
        let (gw, _) = small_gateway(1_000_000);
        let token = gw.service().issue_token("gone");
        gw.service().revoke_token(&token);
        assert!(matches!(
            gw.look_up(
                &token,
                "vaccine",
                LookupParams::paper_default(),
                CallOptions::default()
            ),
            Err(Error::Unauthorized(_))
        ));
    }
}
