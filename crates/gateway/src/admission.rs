//! Admission control: bounded concurrency with a bounded wait queue.
//!
//! One [`RouteAdmission`] guards one route class. At most
//! `max_concurrent` requests hold execution [`Permit`]s; the next
//! `max_queued` wait on a condvar; everyone past that is shed
//! *immediately* with [`Error::Overloaded`] — the load-shedding contract
//! is that overload costs the excess a fast typed error, never the
//! admitted cohort unbounded queueing delay.
//!
//! Waits are deadline-bounded ([`Deadline`]) and drain-aware: once the
//! owning gateway flips its draining flag and wakes the lanes, every
//! queued waiter sheds with `Overloaded` rather than starting new work
//! on a service that is shutting down.
//!
//! Queue order is depth-bounded but not strictly FIFO: waiters race for
//! a freed slot on wakeup, which is the usual condvar admission shape
//! and keeps the fast path a single mutex acquire.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use cryptext_common::{Error, Result};

use crate::deadline::{Deadline, WAIT_SLICE};
use crate::RouteBudget;

#[derive(Debug, Default)]
struct AdmState {
    active: usize,
    queued: usize,
}

/// Admission gate for one route class.
#[derive(Debug)]
pub struct RouteAdmission {
    budget: RouteBudget,
    state: Mutex<AdmState>,
    cv: Condvar,
}

/// A successfully acquired slot: the permit plus how long the request
/// queued first, if it did ([`None`] means a free slot admitted it
/// immediately — the gateway records the wait into its per-route
/// queue-wait histogram). The gateway folds this into its own
/// [`Admitted`](crate::gateway::Admitted) once authorization also
/// passes.
#[derive(Debug)]
pub(crate) struct Acquired {
    pub permit: Permit,
    pub queue_wait: Option<Duration>,
}

/// An execution slot on one route. Dropping it frees the slot and wakes
/// queued waiters — the drop may happen on a pool worker long after the
/// admitting caller detached, which is exactly how a detached request
/// keeps counting against the lane until it truly finishes.
pub struct Permit {
    route: Arc<RouteAdmission>,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit").finish_non_exhaustive()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = lock(&self.route.state);
        st.active -= 1;
        drop(st);
        self.route.cv.notify_all();
    }
}

/// Lock that shrugs off poisoning: admission state is two counters whose
/// updates never unwind mid-change, and execution panics are caught on
/// the worker, so a poisoned mutex here carries no torn state.
fn lock<'a>(m: &'a Mutex<AdmState>) -> MutexGuard<'a, AdmState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl RouteAdmission {
    pub(crate) fn new(budget: RouteBudget) -> Arc<Self> {
        Arc::new(RouteAdmission {
            budget,
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
        })
    }

    /// Requests currently holding permits.
    pub fn active(&self) -> usize {
        lock(&self.state).active
    }

    /// Requests currently waiting for a permit.
    pub fn queued(&self) -> usize {
        lock(&self.state).queued
    }

    /// Wake every queued waiter so it re-checks the draining flag.
    pub(crate) fn wake_all(&self) {
        self.cv.notify_all();
    }

    /// Admit one request or shed it.
    ///
    /// * free slot → permit, immediately;
    /// * full slots, queue room → wait until a slot frees, the deadline
    ///   expires (`DeadlineExceeded`), or draining starts (`Overloaded`);
    /// * full slots, full queue (or already draining) → `Overloaded`
    ///   right now, with `shed_retry_after_ms` as the backoff hint.
    pub(crate) fn acquire(
        self: &Arc<Self>,
        deadline: &Deadline,
        draining: &AtomicBool,
        shed_retry_after_ms: u64,
    ) -> Result<Acquired> {
        let overloaded = || Error::Overloaded {
            retry_after_ms: shed_retry_after_ms,
        };
        let mut st = lock(&self.state);
        if draining.load(Ordering::Acquire) {
            return Err(overloaded());
        }
        if st.active < self.budget.max_concurrent {
            st.active += 1;
            return Ok(Acquired {
                permit: Permit {
                    route: Arc::clone(self),
                },
                queue_wait: None,
            });
        }
        if st.queued >= self.budget.max_queued {
            return Err(overloaded());
        }
        st.queued += 1;
        // Real time, not the (possibly simulated) request clock: the
        // queue-wait histogram measures actual condvar occupancy.
        let queued_at = Instant::now();
        loop {
            // Real-time slices so a frozen simulated clock cannot park
            // the wait past a notification (see `deadline` module docs).
            let (guard, _) = self
                .cv
                .wait_timeout(st, WAIT_SLICE)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if draining.load(Ordering::Acquire) {
                st.queued -= 1;
                return Err(overloaded());
            }
            if st.active < self.budget.max_concurrent {
                st.queued -= 1;
                st.active += 1;
                return Ok(Acquired {
                    permit: Permit {
                        route: Arc::clone(self),
                    },
                    queue_wait: Some(queued_at.elapsed()),
                });
            }
            if deadline.expired() {
                st.queued -= 1;
                return Err(Error::DeadlineExceeded {
                    budget_ms: deadline.budget_ms(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_common::{SimClock, SystemClock};

    fn deadline_ms(ms: u64) -> Deadline {
        Deadline::new(Arc::new(SystemClock), ms)
    }

    fn frozen_deadline() -> Deadline {
        // A frozen clock never expires the budget: waits end only via
        // notification or draining.
        Deadline::new(Arc::new(SimClock::new(0)), 1_000)
    }

    #[test]
    fn admits_up_to_concurrency_then_sheds_past_the_queue() {
        let route = RouteAdmission::new(RouteBudget::new(2, 1));
        let draining = AtomicBool::new(false);
        let d = frozen_deadline();

        let p1 = route.acquire(&d, &draining, 25).unwrap();
        let p2 = route.acquire(&d, &draining, 25).unwrap();
        assert!(p1.queue_wait.is_none() && p2.queue_wait.is_none());
        assert_eq!((route.active(), route.queued()), (2, 0));

        // Third would queue; occupy the queue slot from another thread,
        // then the fourth arrival must shed immediately.
        let route2 = Arc::clone(&route);
        let waiter = std::thread::spawn(move || {
            let draining = AtomicBool::new(false);
            route2.acquire(&frozen_deadline(), &draining, 25)
        });
        while route.queued() != 1 {
            std::thread::sleep(WAIT_SLICE);
        }
        match route.acquire(&d, &draining, 25) {
            Err(Error::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 25),
            other => panic!("expected shed, got {other:?}"),
        }

        // Freeing one slot admits the queued waiter.
        drop(p1.permit);
        let admitted = waiter.join().unwrap().unwrap();
        assert!(
            admitted.queue_wait.is_some(),
            "queued request records its wait"
        );
        assert_eq!((route.active(), route.queued()), (2, 0));
        drop(admitted.permit);
        drop(p2.permit);
        assert_eq!(route.active(), 0);
    }

    #[test]
    fn queued_wait_times_out_with_deadline_exceeded() {
        let route = RouteAdmission::new(RouteBudget::new(1, 4));
        let draining = AtomicBool::new(false);
        let _hold = route.acquire(&frozen_deadline(), &draining, 25).unwrap();
        let err = route
            .acquire(&deadline_ms(20), &draining, 25)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { budget_ms: 20 }));
        assert_eq!(route.queued(), 0, "timed-out waiter left the queue");
    }

    #[test]
    fn draining_sheds_new_arrivals_and_queued_waiters() {
        let route = RouteAdmission::new(RouteBudget::new(1, 4));
        let draining = Arc::new(AtomicBool::new(false));
        let hold = route.acquire(&frozen_deadline(), &draining, 25).unwrap();

        let (route2, draining2) = (Arc::clone(&route), Arc::clone(&draining));
        let queued = std::thread::spawn(move || {
            route2
                .acquire(&frozen_deadline(), &draining2, 25)
                .map(|_| ())
        });
        while route.queued() != 1 {
            std::thread::sleep(WAIT_SLICE);
        }

        draining.store(true, Ordering::Release);
        route.wake_all();
        assert!(matches!(
            queued.join().unwrap(),
            Err(Error::Overloaded { .. })
        ));
        assert!(matches!(
            route.acquire(&frozen_deadline(), &draining, 25).map(|_| ()),
            Err(Error::Overloaded { .. })
        ));
        drop(hold);
    }
}
