//! Minimal data-parallel helpers over a persistent worker pool.
//!
//! The service facade fans bulk Look Up / Normalize traffic across cores
//! and the database parallelizes corpus ingest; a work-stealing runtime
//! (rayon) is not available in this environment, so this module provides
//! the two primitives those paths need. Outputs are returned **in input
//! order**, so parallel callers observe exactly the sequential results.
//!
//! # The pool
//!
//! Earlier revisions spawned fresh scoped threads per [`par_map`] call,
//! which put a floor of tens of microseconds under every bulk request and
//! forced small batches (< 16 items) to stay sequential. Workers are now
//! **persistent**: a process-wide pool starts lazily on the first parallel
//! call, grows on demand up to the current [`max_threads`] reading (so
//! `CRYPTEXT_THREADS` keeps working, and keeps working even when it changes
//! between calls), and parks idle workers on a shared job channel. A
//! dispatch is one channel send instead of a thread spawn, so batches as
//! small as two items can fan out profitably.
//!
//! The calling thread always participates as the last worker, and work is
//! handed out from a shared atomic cursor, so a call makes progress even
//! when every pool worker is busy with someone else's batch. Calls made
//! *from inside* a pool worker (nested parallelism) run sequentially rather
//! than risk waiting on their own queue slot.
//!
//! # Safety model
//!
//! Helper jobs reach into the caller's stack (the input slice, the mapping
//! closure, the result buffers) through a raw task pointer, guarded by a
//! revocable [`Gate`]: a helper may only dereference the pointer between a
//! successful `enter()` and the matching `exit()`, and [`par_map`] closes
//! the gate — waiting for any helper currently inside — before its frame
//! dies, panic or not (the worker loop never unwinds; panics are parked in
//! the task and re-raised by the caller). A helper that is still queued
//! behind some other batch when the gate closes becomes a no-op, so a
//! small call's latency is bounded by its own work, never by unrelated
//! batches ahead of it in the job queue.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on worker threads, respecting `CRYPTEXT_THREADS` when set.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("CRYPTEXT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Below this batch size even a pool dispatch (a channel send plus a latch
/// wait, single-digit microseconds) is not worth it. With persistent
/// workers this is only a guard against degenerate 0/1-item inputs, not
/// the old 16-item spawn-cost threshold.
const MIN_PARALLEL_ITEMS: usize = 2;

/// Hard cap on pool threads, guarding against absurd `CRYPTEXT_THREADS`
/// values. The pool never shrinks; workers park on the job channel.
const MAX_POOL_WORKERS: usize = 256;

/// A type-erased unit of work shipped to a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide worker pool: a shared MPMC-by-mutex job channel plus
/// two worker counters. `reserved` bounds growth (a slot is taken before
/// attempting a spawn); `live` counts only workers whose OS thread was
/// actually created, and is what callers size their dispatches by — so a
/// failed spawn can never make a caller submit a job no worker will take.
struct Pool {
    sender: Mutex<Sender<Job>>,
    receiver: Arc<Mutex<Receiver<Job>>>,
    reserved: AtomicUsize,
    live: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (sender, receiver) = channel::<Job>();
        Pool {
            sender: Mutex::new(sender),
            receiver: Arc::new(Mutex::new(receiver)),
            reserved: AtomicUsize::new(0),
            live: AtomicUsize::new(0),
        }
    })
}

thread_local! {
    /// True on pool worker threads. A nested [`par_map`] from inside a
    /// worker runs sequentially: dispatching to the pool from the pool can
    /// deadlock when every worker is already occupied by the ancestors of
    /// the nested call.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl Pool {
    /// Grow the pool to at least `want` workers (capped); returns how many
    /// workers exist afterwards — counting only workers whose thread was
    /// actually created. If the OS refuses a thread (resource exhaustion),
    /// the reservation is released and callers proceed with the live
    /// workers; a concurrent caller observing the transient reservation
    /// still sizes its dispatch by `live`, so no job is ever submitted
    /// that no worker will take.
    fn ensure_workers(&'static self, want: usize) -> usize {
        let want = want.min(MAX_POOL_WORKERS);
        loop {
            let have = self.reserved.load(Ordering::Acquire);
            if have >= want {
                return self.live.load(Ordering::Acquire);
            }
            if self
                .reserved
                .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let receiver = Arc::clone(&self.receiver);
            let spawned = std::thread::Builder::new()
                .name(format!("cryptext-pool-{have}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|f| f.set(true));
                    loop {
                        // Take the job out before running it so the channel
                        // lock is never held across user code.
                        let job = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // channel closed: process exit
                        }
                    }
                });
            match spawned {
                Ok(_) => {
                    self.live.fetch_add(1, Ordering::AcqRel);
                }
                Err(_) => {
                    // Release the reservation and serve with what we have.
                    self.reserved.fetch_sub(1, Ordering::AcqRel);
                    return self.live.load(Ordering::Acquire);
                }
            }
        }
    }

    fn submit(&self, job: Job) {
        self.sender
            .lock()
            .expect("pool sender lock")
            .send(job)
            .expect("pool job channel open");
    }
}

/// The revocable handshake between one [`par_map`] call and its queued
/// helper jobs. Helpers `enter()` before touching the caller's task and
/// `exit()` after; the caller `close_and_wait()`s when its items are done,
/// which flips the gate shut and waits **only for helpers currently
/// inside** — a helper still queued behind some other batch finds the gate
/// closed when it finally runs and returns without ever dereferencing the
/// (by then dead) task pointer. Small calls therefore never wait for
/// unrelated long batches ahead of them in the job queue.
#[derive(Default)]
struct Gate {
    state: Mutex<GateState>,
    idle: Condvar,
}

#[derive(Default)]
struct GateState {
    closed: bool,
    active: usize,
}

impl Gate {
    /// Try to start working on the gated task; `false` once closed.
    fn enter(&self) -> bool {
        let mut s = self.state.lock().expect("gate lock");
        if s.closed {
            return false;
        }
        s.active += 1;
        true
    }

    fn exit(&self) {
        let mut s = self.state.lock().expect("gate lock");
        s.active -= 1;
        if s.active == 0 {
            self.idle.notify_all();
        }
    }

    /// Shut the gate and wait for every helper currently inside to leave.
    fn close_and_wait(&self) {
        let mut s = self.state.lock().expect("gate lock");
        s.closed = true;
        while s.active > 0 {
            s = self.idle.wait(s).expect("gate wait");
        }
    }
}

/// Shared state of one in-flight parallel map: the input slice, the
/// mapping closure, the claim cursor, and the merged tagged results.
struct MapTask<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    batch: usize,
    cursor: AtomicUsize,
    results: Mutex<Vec<(usize, R)>>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<T, R, F> MapTask<'_, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    /// Claim batches off the cursor until the input is exhausted. Panics in
    /// the closure are captured (first one wins) rather than unwinding
    /// through the pool, and re-raised by the caller.
    fn run_worker(&self) {
        let n = self.items.len();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let start = self.cursor.fetch_add(self.batch, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + self.batch).min(n);
                for (i, item) in self.items[start..end].iter().enumerate() {
                    local.push((start + i, (self.f)(item)));
                }
            }
            local
        }));
        match outcome {
            Ok(local) => self.results.lock().expect("results lock").extend(local),
            Err(payload) => {
                let mut slot = self.panic.lock().expect("panic lock");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }
}

/// Map `f` over `items` in parallel, preserving input order in the output.
///
/// Work is handed out in small batches from a shared atomic cursor, so
/// skewed per-item costs (one giant bucket among thousands of small ones)
/// still balance across workers. Falls back to a sequential map for
/// singleton inputs, single-core hosts (`CRYPTEXT_THREADS=1` included),
/// and nested calls from inside a pool worker. Panics in `f` propagate to
/// the caller with their original payload.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = max_threads().min(items.len());
    if workers <= 1 || items.len() < MIN_PARALLEL_ITEMS || IS_POOL_WORKER.with(|flag| flag.get()) {
        return items.iter().map(f).collect();
    }
    par_map_pooled(items, workers, f)
}

/// The pool-dispatch branch of [`par_map`], with an explicit worker count
/// so tests exercise it even on single-core hosts. `workers` counts the
/// calling thread; `workers - 1` helper jobs are dispatched to the pool.
fn par_map_pooled<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    debug_assert!(workers >= 1 && n > 0);
    // Batched dynamic scheduling: each worker claims `batch` consecutive
    // indices at a time and records (index, result) pairs locally.
    let batch = (n / (workers * 8)).clamp(1, 256);
    let task = MapTask {
        items,
        f: &f,
        batch,
        cursor: AtomicUsize::new(0),
        results: Mutex::new(Vec::with_capacity(n)),
        panic: Mutex::new(None),
    };

    let pool = pool();
    let helpers = (workers - 1).min(pool.ensure_workers(workers - 1));
    let gate: Arc<Gate> = Arc::new(Gate::default());
    // Closing twice is a no-op, so the guard makes the gate shut on every
    // exit path — including an unwind out of the dispatch loop — while the
    // explicit close below still runs before results are read.
    struct CloseGate<'g>(&'g Gate);
    impl Drop for CloseGate<'_> {
        fn drop(&mut self) {
            self.0.close_and_wait();
        }
    }
    let close_guard = CloseGate(&gate);
    // Jobs are fully 'static: an Arc'd gate, the task address, and a
    // monomorphized runner. The pointer is only dereferenced between a
    // successful `enter()` and the matching `exit()`, and `close_and_wait`
    // below keeps the task alive for exactly that window.
    let task_addr = &task as *const MapTask<'_, T, R, F> as usize;
    unsafe fn run_task_at<T, R, F>(addr: usize)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        unsafe { (*(addr as *const MapTask<'_, T, R, F>)).run_worker() }
    }
    let runner: unsafe fn(usize) = run_task_at::<T, R, F>;
    // run_worker parks user panics, but its own result-merge could in
    // principle unwind (poisoned lock); exiting through a guard means even
    // that cannot strand the caller in close_and_wait.
    struct ExitGate(Arc<Gate>);
    impl Drop for ExitGate {
        fn drop(&mut self) {
            self.0.exit();
        }
    }
    for _ in 0..helpers {
        let gate = Arc::clone(&gate);
        pool.submit(Box::new(move || {
            if gate.enter() {
                let _exit = ExitGate(Arc::clone(&gate));
                // SAFETY: the gate is open, so the task outlives this call.
                unsafe { runner(task_addr) };
            }
        }));
    }
    // The calling thread is the final worker; run_worker never unwinds
    // (panics are parked in the task), so the gate is always closed before
    // the task leaves scope.
    task.run_worker();
    drop(close_guard);

    if let Some(payload) = task.panic.into_inner().expect("panic slot") {
        // Re-raise with the original payload so assertion messages and
        // locations survive the pool boundary.
        std::panic::resume_unwind(payload);
    }
    let mut tagged = task.results.into_inner().expect("results");
    tagged.sort_unstable_by_key(|(i, _)| *i);
    // Hard assert: if a helper died without merging (only reachable through
    // the exotic poisoned-merge path above), fail loudly rather than return
    // a silently truncated output.
    assert_eq!(tagged.len(), n, "parallel map lost results");
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Grow the shared worker pool to at least `want` workers (capped at the
/// pool's hard maximum) and return how many live workers exist afterwards.
///
/// Long-lived dispatchers (the service gateway) call this once at
/// construction, sized to their concurrency budget, so steady-state
/// [`spawn`] dispatches never pay a thread spawn. Unlike [`par_map`]'s
/// sizing this is independent of [`max_threads`]: a dispatcher's budget
/// counts *waiting* capacity, not compute parallelism.
pub fn ensure_pool_capacity(want: usize) -> usize {
    pool().ensure_workers(want)
}

/// Dispatch one fire-and-forget job to the shared worker pool. `Ok(())`
/// means the pool took the job; `Err(job)` hands it back untouched when
/// the caller must run it inline instead: either no worker could be
/// created, or the caller *is* a pool worker (a worker blocking on work it
/// queued behind itself is the classic self-deadlock).
///
/// A dispatched job is wrapped in `catch_unwind`, so a panicking job can
/// never kill a pool worker; callers that need the panic surfaced should
/// convert it to a result inside the job.
pub fn spawn<F: FnOnce() + Send + 'static>(job: F) -> std::result::Result<(), F> {
    if IS_POOL_WORKER.with(|flag| flag.get()) {
        return Err(job);
    }
    let pool = pool();
    if pool.ensure_workers(1) == 0 {
        return Err(job);
    }
    pool.submit(Box::new(move || {
        let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
    }));
    Ok(())
}

/// Fallible [`par_map`]: runs every item, then returns the first error in
/// input order (matching what a sequential `collect::<Result<_, _>>` would
/// surface) or the ordered successes.
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    par_map(items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
        assert_eq!(par_map(&[1u32, 2, 3], |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn matches_sequential_map_on_skewed_work() {
        let items: Vec<usize> = (0..333).collect();
        let seq: Vec<usize> = items.iter().map(|&x| (0..x % 50).sum::<usize>()).collect();
        let par = par_map(&items, |&x| (0..x % 50).sum::<usize>());
        assert_eq!(seq, par);
    }

    #[test]
    fn try_par_map_reports_first_error_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out: Result<Vec<usize>, usize> =
            try_par_map(&items, |&x| if x % 30 == 17 { Err(x) } else { Ok(x) });
        assert_eq!(out, Err(17));
        let ok: Result<Vec<usize>, usize> = try_par_map(&items[..10], |&x| Ok(x));
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_branch_preserves_order_and_results() {
        // par_map falls back to sequential on single-core hosts, so drive
        // the pool-dispatch branch directly with a fixed worker count.
        let items: Vec<usize> = (0..500).collect();
        for workers in [2, 3, 8] {
            let out = par_map_pooled(&items, workers, |&x| x * x);
            assert_eq!(out.len(), 500, "{workers} workers");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "{workers} workers, index {i}");
            }
        }
    }

    #[test]
    fn pool_workers_persist_across_calls() {
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map_pooled(&items, 3, |&x| x);
        let before = pool().live.load(Ordering::Acquire);
        assert!(before >= 2, "first call spawned helpers");
        for _ in 0..10 {
            let _ = par_map_pooled(&items, 3, |&x| x + 1);
        }
        // The pool is process-wide and sibling tests may grow it
        // concurrently, so only monotone bounds are asserted: same-width
        // calls never shrink it and nothing exceeds the cap.
        let after = pool().live.load(Ordering::Acquire);
        assert!(
            (before..=MAX_POOL_WORKERS).contains(&after),
            "{before} -> {after}"
        );
    }

    #[test]
    fn pool_grows_on_demand_but_never_beyond_cap() {
        let items: Vec<usize> = (0..64).collect();
        let _ = par_map_pooled(&items, 2, |&x| x);
        let _ = par_map_pooled(&items, 6, |&x| x);
        let spawned = pool().live.load(Ordering::Acquire);
        assert!(spawned >= 5, "pool grew to the widest request: {spawned}");
        assert!(spawned <= MAX_POOL_WORKERS);
    }

    #[test]
    fn tiny_batches_fan_out_through_the_pool() {
        // The old spawn-per-call design kept batches < 16 sequential; the
        // persistent pool handles a 2-item batch.
        let out = par_map_pooled(&[10usize, 20], 2, |&x| x * 3);
        assert_eq!(out, vec![30, 60]);
    }

    #[test]
    fn pooled_branch_panic_payload_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_pooled(&items, 4, |&x| {
                assert!(x != 20, "pooled boom at {x}");
                x
            })
        }));
        let payload = result.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("pooled boom at 20"), "{msg:?}");
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        // A panic must not kill pool workers: later calls still complete.
        let items: Vec<usize> = (0..64).collect();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_pooled(&items, 4, |&x| {
                assert!(x != 1, "first batch dies");
                x
            })
        }));
        let out = par_map_pooled(&items, 4, |&x| x + 1);
        assert_eq!(out.len(), 64);
        assert_eq!(out[5], 6);
    }

    #[test]
    fn worker_panic_payload_propagates() {
        let items: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                assert!(x != 50, "boom at {x}");
                x
            })
        }));
        // On single-core hosts par_map is sequential and the panic
        // propagates directly; on multi-core it crosses the pool. Either
        // way the original message must survive.
        let payload = result.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom at 50"), "original message kept: {msg:?}");
    }

    #[test]
    fn nested_calls_from_pool_workers_complete() {
        // f itself calls par_map: the inner call must detect it is on a
        // pool worker and run sequentially instead of deadlocking on a
        // fully-occupied pool.
        let items: Vec<usize> = (0..40).collect();
        let out = par_map_pooled(&items, 2, |&x| {
            let inner: Vec<usize> = (0..x % 7).collect();
            par_map(&inner, |&y| y * 2).into_iter().sum::<usize>() + x
        });
        let expect: Vec<usize> = items
            .iter()
            .map(|&x| (0..x % 7).map(|y| y * 2).sum::<usize>() + x)
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn concurrent_par_maps_from_many_threads() {
        // Several user threads sharing the pool at once: every call gets
        // complete, ordered results.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let items: Vec<usize> = (0..200).collect();
                    let out = par_map_pooled(&items, 3, |&x| x * t);
                    out.iter().enumerate().all(|(i, &v)| v == i * t)
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap(), "a concurrent call saw wrong results");
        }
    }

    #[test]
    fn spawn_runs_the_job_to_completion() {
        let (tx, rx) = channel::<u32>();
        assert!(spawn(move || {
            tx.send(41 + 1).unwrap();
        })
        .is_ok());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42
        );
    }

    #[test]
    fn spawn_survives_a_panicking_job() {
        let (tx, rx) = channel::<&'static str>();
        assert!(spawn(|| panic!("job dies, worker must not")).is_ok());
        assert!(spawn(move || {
            tx.send("alive").unwrap();
        })
        .is_ok());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            "alive"
        );
    }

    #[test]
    fn spawn_refuses_dispatch_from_a_pool_worker() {
        // A nested spawn from inside a pool worker must tell the caller to
        // run inline rather than queue behind itself.
        let (tx, rx) = channel::<bool>();
        assert!(spawn(move || {
            tx.send(spawn(|| {}).is_ok()).unwrap();
        })
        .is_ok());
        assert!(
            !rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            "nested spawn must be refused"
        );
    }

    #[test]
    fn ensure_pool_capacity_grows_and_reports() {
        let live = ensure_pool_capacity(3);
        assert!(live >= 3, "pool grew to request: {live}");
        assert!(ensure_pool_capacity(MAX_POOL_WORKERS + 100) <= MAX_POOL_WORKERS);
    }

    #[test]
    fn thread_cap_env_is_respected() {
        // max_threads is >= 1 even with garbage in the env var.
        assert!(max_threads() >= 1);
    }
}
