//! Minimal data-parallel helpers over `std::thread::scope`.
//!
//! The service facade fans bulk Look Up / Normalize traffic across cores
//! and the database parallelizes corpus ingest; a work-stealing runtime
//! (rayon) is not available in this environment, so this module provides
//! the two primitives those paths need. Outputs are returned **in input
//! order**, so parallel callers observe exactly the sequential results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads, respecting `CRYPTEXT_THREADS` when set.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("CRYPTEXT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Below this batch size the per-call thread spawn/join overhead (tens of
/// microseconds per worker) tends to exceed the work being parallelized,
/// so `par_map` stays sequential. A persistent worker pool would remove
/// this trade-off entirely (tracked in ROADMAP).
const MIN_PARALLEL_ITEMS: usize = 16;

/// Map `f` over `items` in parallel, preserving input order in the output.
///
/// Work is handed out in small batches from a shared atomic cursor, so
/// skewed per-item costs (one giant bucket among thousands of small ones)
/// still balance across workers. Falls back to a sequential map for tiny
/// inputs or single-core hosts. Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 || items.len() < MIN_PARALLEL_ITEMS {
        return items.iter().map(f).collect();
    }
    par_map_threaded(items, threads, f)
}

/// The scoped-thread branch of [`par_map`], with an explicit worker count
/// so tests exercise it even on single-core hosts.
fn par_map_threaded<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    // Batched dynamic scheduling: each worker claims `batch` consecutive
    // indices at a time and records (index, result) pairs locally.
    let batch = (n / (threads * 8)).clamp(1, 256);
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor_ref = &cursor;

    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor_ref.fetch_add(batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + batch).min(n);
                        for (i, item) in items[start..end].iter().enumerate() {
                            local.push((start + i, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => tagged.extend(local),
                // Re-raise with the original payload so assertion messages
                // and locations survive the thread boundary.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    tagged.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Fallible [`par_map`]: runs every item, then returns the first error in
/// input order (matching what a sequential `collect::<Result<_, _>>` would
/// surface) or the ordered successes.
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    par_map(items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
        assert_eq!(par_map(&[1u32, 2, 3], |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn matches_sequential_map_on_skewed_work() {
        let items: Vec<usize> = (0..333).collect();
        let seq: Vec<usize> = items.iter().map(|&x| (0..x % 50).sum::<usize>()).collect();
        let par = par_map(&items, |&x| (0..x % 50).sum::<usize>());
        assert_eq!(seq, par);
    }

    #[test]
    fn try_par_map_reports_first_error_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out: Result<Vec<usize>, usize> =
            try_par_map(&items, |&x| if x % 30 == 17 { Err(x) } else { Ok(x) });
        assert_eq!(out, Err(17));
        let ok: Result<Vec<usize>, usize> = try_par_map(&items[..10], |&x| Ok(x));
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_branch_preserves_order_and_results() {
        // par_map falls back to sequential on single-core hosts, so drive
        // the scoped-thread branch directly with a fixed worker count.
        let items: Vec<usize> = (0..500).collect();
        for threads in [2, 3, 8] {
            let out = par_map_threaded(&items, threads, |&x| x * x);
            assert_eq!(out.len(), 500, "{threads} threads");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "{threads} threads, index {i}");
            }
        }
    }

    #[test]
    fn threaded_branch_panic_payload_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_threaded(&items, 4, |&x| {
                assert!(x != 20, "threaded boom at {x}");
                x
            })
        }));
        let payload = result.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("threaded boom at 20"), "{msg:?}");
    }

    #[test]
    fn worker_panic_payload_propagates() {
        let items: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                assert!(x != 50, "boom at {x}");
                x
            })
        }));
        let payload = result.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom at 50"), "original message kept: {msg:?}");
    }

    #[test]
    fn thread_cap_env_is_respected() {
        // max_threads is >= 1 even with garbage in the env var.
        assert!(max_threads() >= 1);
    }
}
