//! Minimal hand-rolled JSON *writing* helpers.
//!
//! The workspace has no registry access, so wire-facing crates (the
//! gateway's response envelope, the HTTP server's bodies, the unified
//! stats report) serialize by hand instead of through a real serde. This
//! module keeps the fiddly parts — string escaping and float formatting —
//! in one audited place; structure (objects, arrays, commas) stays at the
//! call site where the shape is visible.
//!
//! Writing only: the workspace never *parses* JSON on a hot path, and the
//! bench checker's line-oriented `extract_ints` is deliberately not a
//! parser.

/// Append `s` to `out` as a JSON string literal, quotes included.
///
/// Escapes the two mandatory characters (`"`, `\`), the named control
/// shorthands, every other control byte as `\u00XX`, and — because the
/// emitted documents now carry operator-facing identifiers (metric and
/// label names) into transports we don't control — every non-ASCII
/// scalar as `\uXXXX` (UTF-16 surrogate pairs beyond the BMP). The
/// output is therefore pure printable ASCII: safe to embed in logs,
/// headers, and charset-confused clients, and it decodes to the
/// identical Unicode string.
pub fn push_str_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 || (c as u32) > 0x7E => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON string literal of `s` (allocating convenience form of
/// [`push_str_escaped`]).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_str_escaped(&mut out, s);
    out
}

/// Render an `f64` as a JSON number. JSON has no NaN/Infinity; those
/// degrade to `null` (the conventional lenient mapping) rather than
/// emitting an invalid document.
pub fn float(x: f64) -> String {
    if x.is_finite() {
        // `{}` on f64 is shortest-roundtrip, always contains enough
        // precision, and never produces exponent-free ambiguity JSON
        // parsers reject.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\tc\r"), "\"a\\nb\\tc\\r\"");
        assert_eq!(string("\u{08}\u{0C}"), "\"\\b\\f\"");
        assert_eq!(string("\u{01}"), "\"\\u0001\"");
        assert_eq!(string("\u{1F}\u{7F}"), "\"\\u001f\\u007f\"");
    }

    #[test]
    fn non_ascii_escapes_to_utf16_units() {
        assert_eq!(string("héllo ✓"), "\"h\\u00e9llo \\u2713\"");
        // Beyond the BMP: UTF-16 surrogate pair.
        assert_eq!(string("\u{1F600}"), "\"\\ud83d\\ude00\"");
        // Output is pure printable ASCII, always.
        for s in ["héllo ✓", "\u{1F600}", "mixé\u{7F}\u{0}"] {
            assert!(
                string(s).bytes().all(|b| (0x20..0x7F).contains(&b)),
                "non-ASCII leaked for {s:?}"
            );
        }
    }

    #[test]
    fn escaped_strings_stay_mandatory_json() {
        // Quote/backslash positions in the escaped output only ever
        // come from the escape sequences themselves.
        let out = string("a\"b\\c\u{00e9}");
        assert_eq!(out, "\"a\\\"b\\\\c\\u00e9\"");
        assert!(!out[1..out.len() - 1].contains("\u{00e9}"));
    }

    #[test]
    fn floats_render_finite_values_and_null_otherwise() {
        assert_eq!(float(1.5), "1.5");
        assert_eq!(float(0.0), "0");
        assert_eq!(float(-2.25), "-2.25");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
    }
}
