//! Deterministic fault injection for durability tests.
//!
//! A *failpoint* is a named crash boundary compiled into a write path
//! (WAL append, snapshot rename, log truncation, ...). In normal operation
//! a failpoint only bumps a hit counter — no branch is taken and no I/O is
//! touched. Under test, a failpoint can be armed to simulate a crash:
//!
//! * [`FailAction::Kill`] — the call site returns an injected I/O error
//!   *before* performing its write, as if the process died at that
//!   boundary.
//! * [`FailAction::Torn`]`(k)` — the call site writes only the first `k`
//!   bytes of its payload and then errors, simulating a torn write (a
//!   crash mid-`write(2)`).
//! * [`FailAction::Delay`]`(ms)` — the call site stalls `ms` milliseconds
//!   and then proceeds normally, simulating a slow disk or a stalled
//!   downstream (armed as `delay@N:MS`; the gateway's overload tests use
//!   it to manufacture deadline misses deterministically).
//!
//! Arming is deterministic and hit-indexed: a spec like `kill@3` fires on
//! the third hit *and every hit after it* — once a process is "dead" it
//! must not come back and write more bytes. That monotonic behaviour is
//! what makes kill-at-every-boundary sweeps sound: run once clean to count
//! boundaries, then re-run arming `kill@i` for each `i`, and each run
//! observes exactly the prefix of writes a real crash at boundary `i`
//! would have left behind.
//!
//! Two configuration planes exist:
//!
//! * **Thread-local** (tests): [`arm`] returns a guard; the config and hit
//!   counters are per-thread, so parallel `cargo test` threads never
//!   interfere.
//! * **Process-wide** (CI): the `CRYPTEXT_FAILPOINTS` environment variable
//!   holds `name=spec` pairs separated by `;`, e.g.
//!   `CRYPTEXT_FAILPOINTS="wal.append=torn@2:5;snapshot.rename=kill@1"`.
//!   Hit counters for env-armed points are process-global.
//!
//! The special name `*` matches every failpoint and is the lever for
//! exhaustive sweeps: `arm("*", "kill@7")` kills at the seventh write
//! boundary of any kind. Lookup order is thread-local exact name,
//! thread-local `*`, env exact name, env `*`.
//!
//! No external crates are involved; this is a few hash maps and a parser.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::error::Error;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Simulate a crash strictly before the write at this boundary.
    Kill,
    /// Write only the first `k` bytes of the payload, then crash.
    Torn(usize),
    /// Stall the call site for the given number of milliseconds before it
    /// proceeds normally — latency injection for overload/deadline tests.
    /// Unlike `Kill`, a delayed boundary is *not* dead: it completes.
    Delay(u64),
}

#[derive(Debug, Clone, Copy)]
struct FailConfig {
    action: FailAction,
    /// 1-based hit index at which the point starts firing (and keeps
    /// firing — a dead process stays dead).
    at_hit: u64,
}

/// Parse a spec string: `kill`, `kill@N`, `torn@N:K`.
fn parse_spec(spec: &str) -> Option<FailConfig> {
    let spec = spec.trim();
    if let Some(rest) = spec.strip_prefix("kill") {
        let at_hit = match rest.strip_prefix('@') {
            Some(n) => n.parse().ok()?,
            None if rest.is_empty() => 1,
            None => return None,
        };
        return Some(FailConfig {
            action: FailAction::Kill,
            at_hit,
        });
    }
    if let Some(rest) = spec.strip_prefix("torn@") {
        let (n, k) = rest.split_once(':')?;
        return Some(FailConfig {
            action: FailAction::Torn(k.trim().parse().ok()?),
            at_hit: n.trim().parse().ok()?,
        });
    }
    if let Some(rest) = spec.strip_prefix("delay@") {
        let (n, ms) = rest.split_once(':')?;
        return Some(FailConfig {
            action: FailAction::Delay(ms.trim().parse().ok()?),
            at_hit: n.trim().parse().ok()?,
        });
    }
    None
}

fn parse_env(value: &str) -> HashMap<String, FailConfig> {
    let mut out = HashMap::new();
    for pair in value.split([';', ',']) {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        if let Some((name, spec)) = pair.split_once('=') {
            if let Some(cfg) = parse_spec(spec) {
                out.insert(name.trim().to_string(), cfg);
            }
        }
    }
    out
}

/// The environment variable consulted for process-wide failpoint specs.
pub const ENV_VAR: &str = "CRYPTEXT_FAILPOINTS";

fn env_configs() -> &'static HashMap<String, FailConfig> {
    static CONFIGS: OnceLock<HashMap<String, FailConfig>> = OnceLock::new();
    CONFIGS.get_or_init(|| match std::env::var(ENV_VAR) {
        Ok(v) => parse_env(&v),
        Err(_) => HashMap::new(),
    })
}

fn env_counters() -> &'static Mutex<HashMap<String, u64>> {
    static COUNTERS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    static TL_CONFIGS: RefCell<HashMap<String, FailConfig>> = RefCell::new(HashMap::new());
    static TL_COUNTERS: RefCell<HashMap<String, u64>> = RefCell::new(HashMap::new());
}

/// Guard returned by [`arm`]; disarms the thread-local failpoint on drop.
#[derive(Debug)]
pub struct FailGuard {
    name: String,
}

impl Drop for FailGuard {
    fn drop(&mut self) {
        TL_CONFIGS.with(|c| c.borrow_mut().remove(&self.name));
    }
}

/// Arm a failpoint on the current thread. `spec` is `kill`, `kill@N`,
/// `torn@N:K` (fire at the N-th hit, writing K bytes first for torn), or
/// `delay@N:MS` (stall MS milliseconds at the N-th hit and after).
///
/// # Panics
/// Panics on a malformed spec — an armed-but-ignored failpoint would make
/// a crash test silently vacuous.
pub fn arm(name: &str, spec: &str) -> FailGuard {
    let cfg = parse_spec(spec).unwrap_or_else(|| panic!("bad failpoint spec {spec:?}"));
    TL_CONFIGS.with(|c| c.borrow_mut().insert(name.to_string(), cfg));
    FailGuard {
        name: name.to_string(),
    }
}

/// Reset this thread's hit counters (start of a fresh sweep iteration).
pub fn reset_hits() {
    TL_COUNTERS.with(|c| c.borrow_mut().clear());
}

/// Hits recorded on this thread for `name` (use `"*"` for the total
/// across all boundaries) since the last [`reset_hits`].
pub fn hits(name: &str) -> u64 {
    TL_COUNTERS.with(|c| c.borrow().get(name).copied().unwrap_or(0))
}

fn tl_config(name: &str) -> Option<(FailConfig, u64)> {
    TL_CONFIGS.with(|c| {
        let configs = c.borrow();
        for key in [name, "*"] {
            if let Some(cfg) = configs.get(key) {
                let count = TL_COUNTERS.with(|h| h.borrow().get(key).copied().unwrap_or(0));
                return Some((*cfg, count));
            }
        }
        None
    })
}

fn env_config(name: &str) -> Option<(FailConfig, u64)> {
    let configs = env_configs();
    for key in [name, "*"] {
        if let Some(cfg) = configs.get(key) {
            let mut counters = env_counters().lock().expect("failpoint counter lock");
            let count = counters.entry(key.to_string()).or_insert(0);
            *count += 1;
            return Some((*cfg, *count));
        }
    }
    None
}

/// Record a hit at failpoint `name` and return the action to take, if the
/// point is armed and its hit threshold is reached. Call sites must honor
/// the returned action by erroring out (after a partial write for
/// [`FailAction::Torn`]).
pub fn trigger(name: &str) -> Option<FailAction> {
    // Always count thread-locally so clean runs can measure boundary
    // counts for sweeps, both per-name and under the wildcard.
    let counts = TL_COUNTERS.with(|c| {
        let mut counters = c.borrow_mut();
        let n = {
            let e = counters.entry(name.to_string()).or_insert(0);
            *e += 1;
            *e
        };
        let all = {
            let e = counters.entry("*".to_string()).or_insert(0);
            *e += 1;
            *e
        };
        (n, all)
    });
    if let Some((cfg, _)) = tl_config(name) {
        // Re-resolve which counter applies: exact name uses the name
        // counter, wildcard uses the total counter.
        let hit = if TL_CONFIGS.with(|c| c.borrow().contains_key(name)) {
            counts.0
        } else {
            counts.1
        };
        if hit >= cfg.at_hit {
            return Some(cfg.action);
        }
        return None;
    }
    if let Some((cfg, hit)) = env_config(name) {
        if hit >= cfg.at_hit {
            return Some(cfg.action);
        }
    }
    None
}

/// The error a call site returns when a failpoint fires: an injected I/O
/// error whose message names the point, so tests can assert on it.
pub fn injected(name: &str) -> Error {
    Error::Io(std::io::Error::other(format!(
        "failpoint: injected crash at {name}"
    )))
}

/// True when `err` is an injected failpoint crash (vs a real I/O error).
pub fn is_injected(err: &Error) -> bool {
    matches!(err, Error::Io(e) if e.to_string().starts_with("failpoint:"))
}

/// Drive a *non-write* boundary (a service layer, a dispatch point): record
/// a hit at `name` and honor the armed action in place. `Delay` sleeps the
/// configured milliseconds and then lets the call proceed; `Kill` and
/// `Torn` (which has no byte budget to spend at a non-write site) return
/// the [`injected`] crash error. Unarmed points only count, as always.
pub fn check(name: &str) -> crate::Result<()> {
    match trigger(name) {
        None => Ok(()),
        Some(FailAction::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(FailAction::Kill) | Some(FailAction::Torn(_)) => Err(injected(name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_failpoint_only_counts() {
        reset_hits();
        assert_eq!(trigger("t.unarmed"), None);
        assert_eq!(trigger("t.unarmed"), None);
        assert_eq!(hits("t.unarmed"), 2);
        assert!(hits("*") >= 2);
    }

    #[test]
    fn kill_fires_at_and_after_threshold() {
        reset_hits();
        let _g = arm("t.kill", "kill@2");
        assert_eq!(trigger("t.kill"), None);
        assert_eq!(trigger("t.kill"), Some(FailAction::Kill));
        assert_eq!(trigger("t.kill"), Some(FailAction::Kill), "stays dead");
    }

    #[test]
    fn torn_carries_byte_budget() {
        reset_hits();
        let _g = arm("t.torn", "torn@1:5");
        assert_eq!(trigger("t.torn"), Some(FailAction::Torn(5)));
    }

    #[test]
    fn wildcard_matches_any_name() {
        reset_hits();
        let _g = arm("*", "kill@3");
        assert_eq!(trigger("t.a"), None);
        assert_eq!(trigger("t.b"), None);
        assert_eq!(trigger("t.c"), Some(FailAction::Kill));
    }

    #[test]
    fn guard_disarms_on_drop() {
        reset_hits();
        {
            let _g = arm("t.guarded", "kill@1");
            assert_eq!(trigger("t.guarded"), Some(FailAction::Kill));
        }
        assert_eq!(trigger("t.guarded"), None);
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(parse_spec("kill").unwrap().at_hit, 1);
        assert_eq!(parse_spec("kill@7").unwrap().at_hit, 7);
        let torn = parse_spec("torn@2:9").unwrap();
        assert_eq!(torn.at_hit, 2);
        assert_eq!(torn.action, FailAction::Torn(9));
        let delay = parse_spec("delay@3:25").unwrap();
        assert_eq!(delay.at_hit, 3);
        assert_eq!(delay.action, FailAction::Delay(25));
        assert!(parse_spec("explode@1").is_none());
        assert!(parse_spec("torn@x:y").is_none());
        assert!(parse_spec("delay@1").is_none());
        assert!(parse_spec("delay@a:b").is_none());
    }

    #[test]
    fn delay_fires_at_and_after_threshold_and_completes() {
        reset_hits();
        let _g = arm("t.delay", "delay@2:10");
        assert_eq!(trigger("t.delay"), None);
        let start = std::time::Instant::now();
        assert_eq!(trigger("t.delay"), Some(FailAction::Delay(10)));
        assert_eq!(trigger("t.delay"), Some(FailAction::Delay(10)));
        // trigger itself never sleeps; `check` does.
        assert!(start.elapsed().as_millis() < 10);
    }

    #[test]
    fn check_sleeps_on_delay_and_errors_on_kill() {
        reset_hits();
        {
            let _g = arm("t.check.delay", "delay@1:15");
            let start = std::time::Instant::now();
            assert!(check("t.check.delay").is_ok());
            assert!(start.elapsed().as_millis() >= 15);
        }
        {
            let _g = arm("t.check.kill", "kill@1");
            let err = check("t.check.kill").unwrap_err();
            assert!(is_injected(&err));
        }
        assert!(check("t.check.unarmed").is_ok());
        assert_eq!(hits("t.check.unarmed"), 1);
    }

    #[test]
    fn env_string_parsing() {
        let map = parse_env("a.b=kill@2; c.d=torn@1:3,, e=kill");
        assert_eq!(map.len(), 3);
        assert_eq!(map["a.b"].at_hit, 2);
        assert_eq!(map["c.d"].action, FailAction::Torn(3));
        assert_eq!(map["e"].at_hit, 1);
    }

    #[test]
    fn injected_errors_are_recognizable() {
        let err = injected("x.y");
        assert!(is_injected(&err));
        assert!(!is_injected(&Error::Io(std::io::Error::other(
            "disk on fire"
        ))));
    }
}
