//! # cryptext-common
//!
//! Shared infrastructure for the CrypText workspace.
//!
//! This crate deliberately has no heavyweight dependencies; it provides the
//! small building blocks every other crate needs:
//!
//! * [`error`] — the workspace-wide [`Error`](error::Error) type and
//!   [`Result`](error::Result) alias.
//! * [`hash`] — an Fx-style fast hasher plus [`FxHashMap`](hash::FxHashMap)
//!   / [`FxHashSet`](hash::FxHashSet) aliases (database-style hot maps should
//!   not pay SipHash costs).
//! * [`rng`] — deterministic, seedable PRNG ([`SplitMix64`](rng::SplitMix64))
//!   and sampling helpers used wherever reproducibility matters.
//! * [`clock`] — a simulated clock for the social-stream substrate and cache
//!   TTL logic, so tests never depend on wall time.
//! * [`interner`] — a thread-safe string interner used by the token database.
//! * [`par`] — order-preserving parallel map over scoped threads, backing
//!   the bulk service endpoints and parallel corpus ingest.
//! * [`text`] — tiny string helpers shared by tokenizer/phonetics.
//! * [`failpoint`] — deterministic fault injection for durability tests
//!   (kill / torn-write at named crash boundaries).
//! * [`metrics`] — the workspace-wide observability layer: lock-free
//!   counters, gauges, and log-scale latency histograms behind one
//!   [`MetricsRegistry`](metrics::MetricsRegistry), rendered as
//!   Prometheus text by the HTTP layer.

#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod failpoint;
pub mod hash;
pub mod interner;
pub mod jsonfmt;
pub mod metrics;
pub mod par;
pub mod rng;
pub mod text;

pub use clock::{system_clock, Clock, SimClock, SystemClock, TimeRange, Timestamp};
pub use error::{Error, Result};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use interner::{Interner, Symbol};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use rng::SplitMix64;
