//! Workspace-wide metrics: lock-free counters, gauges, and log-scale
//! latency histograms behind one [`MetricsRegistry`].
//!
//! Every layer of the stack records into handles from this module; the
//! four legacy snapshot types (`GatewayStatsSnapshot`,
//! `CacheTierSnapshot`, `StoreStats`, `StatsReport`) are projections of
//! the same cells, and `GET /metrics` renders the full registry as
//! Prometheus text.
//!
//! # Contract
//!
//! * **Naming.** `cryptext_<subsystem>_<what>[_<unit>][_total]`, e.g.
//!   `cryptext_gateway_admitted_total`, `cryptext_lookup_walk_us`,
//!   `cryptext_cache_hits_total`. Counters end in `_total`; histogram
//!   names carry their unit suffix (`_us` for microseconds).
//! * **Labels.** Label *keys* are `&'static str` by construction; label
//!   *values* are interned to `&'static str` via [`label_value`] (a
//!   bounded, deduplicated leak — use only for small closed sets such
//!   as route names, cache tiers, or HTTP status codes, never for
//!   request-derived strings).
//! * **Zero overhead when unused.** [`Counter`], [`Gauge`], and
//!   [`Histogram`] are standalone handles over atomics: they work
//!   without a registry, recording is a handful of relaxed atomic ops,
//!   and nothing allocates on the hot path. Registration
//!   (cold path) shares the same cells with the registry, so snapshots
//!   observe live values; an unregistered handle costs exactly the
//!   same to record into and is simply invisible to exports.
//! * **Snapshots.** [`MetricsRegistry::snapshot`] reads every cell with
//!   relaxed loads under the registration lock: the *set* of metrics is
//!   consistent, individual values are each atomically read (recorders
//!   are never blocked).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::clock::{Clock, Timestamp};
use crate::hash::FxHashSet;

// ---------------------------------------------------------------------
// label interning
// ---------------------------------------------------------------------

/// One label: interned static key and value.
pub type Label = (&'static str, &'static str);

fn label_pool() -> &'static Mutex<FxHashSet<&'static str>> {
    static POOL: OnceLock<Mutex<FxHashSet<&'static str>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(FxHashSet::default()))
}

/// Intern a dynamic label value into the process-wide static pool.
///
/// The pool deduplicates, so the leak is bounded by the number of
/// *distinct* values ever interned — use it for small closed sets
/// (status codes, route names), never for request-derived strings.
pub fn label_value(s: &str) -> &'static str {
    let mut pool = label_pool().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(existing) = pool.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------
// instruments
// ---------------------------------------------------------------------

/// A monotonically increasing counter (relaxed atomic increments).
///
/// Cloning shares the cell; a standalone counter works without a
/// registry and costs nothing extra when registered.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (e.g. `active_now`).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: powers of two `2^0 .. 2^26` plus the
/// overflow (`+Inf`) bucket. In microseconds that spans 1µs to ~67s,
/// which covers every latency this workspace records.
pub const HISTOGRAM_BUCKETS: usize = 28;

#[derive(Debug, Default)]
struct HistogramCells {
    /// Per-bucket observation counts (NOT cumulative; rendering
    /// accumulates them into Prometheus' cumulative `le` form).
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket log-scale histogram for latency-style values.
///
/// `observe` is unit-agnostic — production timers record microseconds
/// via [`Histogram::start_timer`], `SimClock`-driven tests record
/// simulated milliseconds via [`Histogram::start_clock_timer`] or call
/// `observe` with any delta directly.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

/// Index of the bucket whose upper bound (`2^i`) first covers `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the overflow bucket reuses the
/// next power of two as a finite stand-in for estimation).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    1u64 << i
}

/// Exclusive lower bound of bucket `i`.
#[inline]
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (relaxed atomics; no allocation).
    #[inline]
    pub fn observe(&self, v: u64) {
        self.cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// A real-time timer recording elapsed **microseconds** on drop.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// A timer against the workspace [`Clock`] abstraction, recording
    /// elapsed **milliseconds of clock time** on drop — under a
    /// [`crate::SimClock`] that is simulated time, so tests stay
    /// deterministic.
    #[inline]
    pub fn start_clock_timer<'a>(&self, clock: &'a dyn Clock) -> ClockTimer<'a> {
        ClockTimer {
            hist: self.clone(),
            clock,
            start_ms: clock.now(),
        }
    }

    /// Point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(self.cells.buckets.iter()) {
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// Guard from [`Histogram::start_timer`]: records elapsed µs on drop.
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Instant,
}

impl Timer {
    /// Stop early and record (equivalent to dropping).
    pub fn observe(self) {}
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed().as_micros() as u64);
    }
}

/// Guard from [`Histogram::start_clock_timer`]: records elapsed clock
/// milliseconds on drop.
pub struct ClockTimer<'a> {
    hist: Histogram,
    clock: &'a dyn Clock,
    start_ms: Timestamp,
}

impl Drop for ClockTimer<'_> {
    fn drop(&mut self) {
        self.hist
            .observe(self.clock.now().saturating_sub(self.start_ms));
    }
}

/// Point-in-time histogram state with percentile estimation.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by rank-walking the
    /// buckets with linear interpolation inside the target bucket.
    /// Estimates are monotone in `q` by construction; an empty
    /// histogram estimates `0.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lower = bucket_lower(i) as f64;
                let upper = bucket_upper(i) as f64;
                let frac = (target - cum) as f64 / c as f64;
                return lower + frac * (upper - lower);
            }
            cum += c;
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1) as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

// ---------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Registration {
    name: &'static str,
    help: &'static str,
    labels: Vec<Label>,
    handle: Handle,
}

/// The registry: an ordered set of named, labelled instrument handles.
///
/// Registration is the cold path (a mutex push); recording always goes
/// through the handles and never touches the registry. One registry is
/// created per service instance and shared down the stack — gateway and
/// HTTP layers adopt the service's registry rather than creating their
/// own.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Vec<Registration>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &'static str, help: &'static str, labels: &[Label], handle: Handle) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(prior) = inner.iter().find(|r| r.name == name && r.labels == labels) {
            panic!(
                "metric {name:?} with labels {labels:?} registered twice \
                 (first as a {})",
                prior.handle.kind()
            );
        }
        inner.push(Registration {
            name,
            help,
            labels: labels.to_vec(),
            handle,
        });
    }

    /// Create and register an unlabelled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Create and register a labelled counter.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[Label],
    ) -> Counter {
        let c = Counter::new();
        self.register_counter(name, help, labels, &c);
        c
    }

    /// Register an existing counter handle (shares the cell: the
    /// registry sees every increment the owner records).
    pub fn register_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[Label],
        counter: &Counter,
    ) {
        self.register(name, help, labels, Handle::Counter(counter.clone()));
    }

    /// Create and register an unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let g = Gauge::new();
        self.register_gauge(name, help, &[], &g);
        g
    }

    /// Register an existing gauge handle.
    pub fn register_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[Label],
        gauge: &Gauge,
    ) {
        self.register(name, help, labels, Handle::Gauge(gauge.clone()));
    }

    /// Create and register an unlabelled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Create and register a labelled histogram.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[Label],
    ) -> Histogram {
        let h = Histogram::new();
        self.register_histogram(name, help, labels, &h);
        h
    }

    /// Register an existing histogram handle.
    pub fn register_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[Label],
        histogram: &Histogram,
    ) {
        self.register(name, help, labels, Handle::Histogram(histogram.clone()));
    }

    /// Read every registered metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            samples: inner
                .iter()
                .map(|r| Sample {
                    name: r.name,
                    labels: r.labels.clone(),
                    value: match &r.handle {
                        Handle::Counter(c) => SampleValue::Counter(c.get()),
                        Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                        Handle::Histogram(h) => SampleValue::Histogram(Box::new(h.snapshot())),
                    },
                })
                .collect(),
        }
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` per family, cumulative `le`
    /// buckets plus `_sum`/`_count` series per histogram.
    pub fn render_prometheus(&self) -> String {
        let snapshot = self.snapshot();
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let help: Vec<(&'static str, &'static str)> =
            inner.iter().map(|r| (r.name, r.help)).collect();
        drop(inner);
        snapshot.render_prometheus(&help)
    }
}

fn push_labels(out: &mut String, labels: &[Label], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    // `le` values are ASCII digits / "+Inf"; label values are interned
    // operator-chosen strings — neither needs escaping, which is
    // exactly the label rule this module's docs state.
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

/// One metric's point-in-time value.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Metric family name.
    pub name: &'static str,
    /// Label set (possibly empty).
    pub labels: Vec<Label>,
    /// The value.
    pub value: SampleValue,
}

/// A snapshot value, by instrument kind.
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state (boxed: the fixed bucket array dwarfs the scalar
    /// variants).
    Histogram(Box<HistogramSnapshot>),
}

/// A consistent listing of every registered metric's value, with query
/// helpers used by tests and the stats projections.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All samples, in registration order.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    fn matching<'a>(
        &'a self,
        name: &'a str,
        label: Option<(&'a str, &'a str)>,
    ) -> impl Iterator<Item = &'a Sample> + 'a {
        self.samples.iter().filter(move |s| {
            s.name == name
                && label.is_none_or(|(k, v)| s.labels.iter().any(|&(lk, lv)| lk == k && lv == v))
        })
    }

    /// Sum of a counter family across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.matching(name, None)
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// One labelled counter's value (summed if several match).
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str) -> u64 {
        self.matching(name, Some((key, value)))
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(v),
                _ => None,
            })
            .sum()
    }

    /// A gauge's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.matching(name, None).find_map(|s| match s.value {
            SampleValue::Gauge(v) => Some(v),
            _ => None,
        })
    }

    /// Total observation count of a histogram family across label sets.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.matching(name, None)
            .filter_map(|s| match &s.value {
                SampleValue::Histogram(h) => Some(h.count),
                _ => None,
            })
            .sum()
    }

    /// Observation count of the histogram series carrying `key=value`.
    pub fn histogram_count_labeled(&self, name: &str, key: &str, value: &str) -> u64 {
        self.matching(name, Some((key, value)))
            .filter_map(|s| match &s.value {
                SampleValue::Histogram(h) => Some(h.count),
                _ => None,
            })
            .sum()
    }

    /// One histogram snapshot (first matching series), if registered.
    pub fn histogram<'a>(&'a self, name: &'a str) -> Option<&'a HistogramSnapshot> {
        self.matching(name, None).find_map(|s| match &s.value {
            SampleValue::Histogram(h) => Some(h.as_ref()),
            _ => None,
        })
    }

    /// Render this snapshot as Prometheus text; `help` maps family
    /// names to help strings (first entry per name wins).
    pub fn render_prometheus(&self, help: &[(&str, &str)]) -> String {
        let mut out = String::with_capacity(4096);
        let mut emitted_type: Vec<&str> = Vec::new();
        // Group families by first-appearance order so each `# TYPE`
        // heads every series of its name.
        for sample in &self.samples {
            if emitted_type.contains(&sample.name) {
                continue;
            }
            emitted_type.push(sample.name);
            if let Some((_, h)) = help.iter().find(|(n, _)| *n == sample.name) {
                out.push_str("# HELP ");
                out.push_str(sample.name);
                out.push(' ');
                out.push_str(h);
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(sample.name);
            out.push(' ');
            out.push_str(match sample.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            });
            out.push('\n');
            for s in self.samples.iter().filter(|s| s.name == sample.name) {
                match &s.value {
                    SampleValue::Counter(v) => {
                        out.push_str(s.name);
                        push_labels(&mut out, &s.labels, None);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SampleValue::Gauge(v) => {
                        out.push_str(s.name);
                        push_labels(&mut out, &s.labels, None);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SampleValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, &c) in h.buckets.iter().enumerate() {
                            cum += c;
                            let le = if i == HISTOGRAM_BUCKETS - 1 {
                                "+Inf".to_string()
                            } else {
                                bucket_upper(i).to_string()
                            };
                            out.push_str(s.name);
                            out.push_str("_bucket");
                            push_labels(&mut out, &s.labels, Some(("le", &le)));
                            out.push(' ');
                            out.push_str(&cum.to_string());
                            out.push('\n');
                        }
                        out.push_str(s.name);
                        out.push_str("_sum");
                        push_labels(&mut out, &s.labels, None);
                        out.push(' ');
                        out.push_str(&h.sum.to_string());
                        out.push('\n');
                        out.push_str(s.name);
                        out.push_str("_count");
                        push_labels(&mut out, &s.labels, None);
                        out.push(' ');
                        out.push_str(&h.count.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimClock;
    use proptest::collection::vec;
    use proptest::prelude::*;

    #[test]
    fn counters_and_gauges_record_through_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(-3);
        assert_eq!(g.clone().get(), -3);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 26), HISTOGRAM_BUCKETS - 2);
        assert_eq!(bucket_index((1 << 26) + 1), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_are_sane() {
        let h = Histogram::new();
        // 90 fast observations, 10 slow: p50 lands in the fast band,
        // p99 in the slow band.
        for _ in 0..90 {
            h.observe(3);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 3 + 10 * 1000);
        assert!(s.p50() <= 4.0, "p50 {} in the fast bucket", s.p50());
        assert!(s.p99() > 512.0, "p99 {} in the slow bucket", s.p99());
    }

    #[test]
    fn empty_histogram_estimates_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p99(), 0.0);
    }

    #[test]
    fn clock_timer_records_simulated_milliseconds() {
        let h = Histogram::new();
        let clock = SimClock::new(1_000);
        {
            let _t = h.start_clock_timer(&clock);
            clock.advance(37);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 37);
    }

    #[test]
    fn real_timer_records_microseconds() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 1_000, "2ms sleep observed as {}µs", s.sum);
    }

    #[test]
    fn label_values_intern_to_one_allocation() {
        let a = label_value("route-lookup-test");
        let b = label_value(&String::from("route-lookup-test"));
        assert!(std::ptr::eq(a, b), "same value, same interned pointer");
    }

    #[test]
    fn registry_snapshot_sees_live_handles() {
        let r = MetricsRegistry::new();
        let c = Counter::new();
        r.register_counter("cryptext_test_total", "pre-owned handle", &[], &c);
        let h = r.histogram_with(
            "cryptext_test_us",
            "latency",
            &[("route", label_value("lookup"))],
        );
        c.add(7);
        h.observe(5);
        h.observe(4096);
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("cryptext_test_total"), 7);
        assert_eq!(snap.histogram_count("cryptext_test_us"), 2);
        assert_eq!(
            snap.histogram_count_labeled("cryptext_test_us", "route", "lookup"),
            2
        );
        assert_eq!(
            snap.histogram_count_labeled("cryptext_test_us", "route", "other"),
            0
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let r = MetricsRegistry::new();
        r.counter("cryptext_dup_total", "a");
        r.counter("cryptext_dup_total", "b");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = MetricsRegistry::new();
        r.counter("cryptext_reqs_total", "requests").add(3);
        let g = r.gauge("cryptext_active", "in flight");
        g.set(2);
        let h = r.histogram_with("cryptext_wait_us", "wait", &[("route", "lookup")]);
        h.observe(3);
        h.observe(3);
        h.observe(100);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE cryptext_reqs_total counter\n"));
        assert!(text.contains("cryptext_reqs_total 3\n"));
        assert!(text.contains("# TYPE cryptext_active gauge\n"));
        assert!(text.contains("cryptext_active 2\n"));
        assert!(text.contains("# TYPE cryptext_wait_us histogram\n"));
        // Buckets are cumulative: both 3s are <= 4, all three <= 128.
        assert!(text.contains("cryptext_wait_us_bucket{route=\"lookup\",le=\"4\"} 2\n"));
        assert!(text.contains("cryptext_wait_us_bucket{route=\"lookup\",le=\"128\"} 3\n"));
        assert!(text.contains("cryptext_wait_us_bucket{route=\"lookup\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("cryptext_wait_us_sum{route=\"lookup\"} 106\n"));
        assert!(text.contains("cryptext_wait_us_count{route=\"lookup\"} 3\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed line {line:?}");
        }
    }

    #[test]
    fn eight_racing_recorders_lose_no_increments() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread observations across buckets so the race
                        // covers distinct cells, not one hot cacheline.
                        h.observe((t as u64 * PER_THREAD + i) % 5_000);
                        c.inc();
                    }
                });
            }
        });
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(c.get(), total, "counter lost increments");
        let s = h.snapshot();
        assert_eq!(s.count, total, "histogram count lost increments");
        assert_eq!(
            s.buckets.iter().sum::<u64>(),
            total,
            "bucket cells lost increments"
        );
    }

    proptest! {
        #[test]
        fn histogram_buckets_sum_to_count_and_percentiles_are_monotone(
            values in vec(0u64..200_000_000, 1..400)
        ) {
            let h = Histogram::new();
            let mut expected_sum = 0u64;
            for &v in &values {
                h.observe(v);
                expected_sum += v;
            }
            let s = h.snapshot();
            prop_assert_eq!(s.count, values.len() as u64);
            prop_assert_eq!(s.sum, expected_sum);
            prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
            let (p50, p90, p99) = (s.p50(), s.p90(), s.p99());
            prop_assert!(p50 <= p90, "p50 {} > p90 {}", p50, p90);
            prop_assert!(p90 <= p99, "p90 {} > p99 {}", p90, p99);
            // The estimate never exceeds the largest bucket bound and
            // never undershoots the smallest observation's bucket floor.
            let max = *values.iter().max().unwrap();
            prop_assert!(p99 <= bucket_upper(bucket_index(max)) as f64);
            let min = *values.iter().min().unwrap();
            prop_assert!(p50 >= bucket_lower(bucket_index(min)) as f64);
        }
    }
}
