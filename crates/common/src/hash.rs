//! Fast, non-cryptographic hashing for hot paths.
//!
//! The token database performs millions of map probes while curating a
//! corpus; the standard library's SipHash is a measurable bottleneck there
//! (see the performance guide's "Hashing" chapter). This module implements
//! the Fx hash algorithm (the multiply-xor hash used by rustc, public
//! domain) so the workspace does not need an extra dependency.
//!
//! HashDoS is not a concern: every map key in CrypText originates from local
//! corpora or trusted callers, never from a network adversary.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-xor hasher. Extremely fast for short keys
/// (integers, short strings) at the cost of weaker avalanche behaviour.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8-byte words, then the tail, mixing each chunk.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (i * 8);
            }
            // Fold the tail length in so "a\0" and "a" differ.
            self.add_to_hash(word ^ ((tail.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Jump consistent hash (Lamping & Veach, 2014): map `key` onto
/// `[0, buckets)` such that growing the bucket count from `n` to `n + 1`
/// relocates only `~1/(n + 1)` of the keys — and every relocated key moves
/// to the *new* bucket, never between existing ones. No ring state, no
/// virtual nodes, O(ln buckets) time.
///
/// This is the shard router of the sharded token database: keys are Fx
/// hashes of phonetic codes, buckets are shard indexes, and the minimal
/// relocation property keeps a future shard-count change from reshuffling
/// the whole corpus.
#[inline]
pub fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    assert!(buckets > 0, "jump_hash needs at least one bucket");
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        // LCG step from the reference implementation.
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = (((b + 1) as f64) * ((1u64 << 31) as f64 / ((key >> 33) + 1) as f64)) as i64;
    }
    b as u32
}

/// A fixed-size consistent-hash ring over `shards` buckets, routing string
/// keys (phonetic codes) and raw `u64` keys through [`jump_hash`] on top of
/// the Fx hash. Stateless and `Copy`; the shard count is the only
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRing {
    shards: u32,
}

impl ShardRing {
    /// A ring over `shards` buckets (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardRing {
            shards: (shards.max(1)).min(u32::MAX as usize) as u32,
        }
    }

    /// Number of buckets.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Route a prehashed key to its bucket.
    #[inline]
    pub fn route_key(&self, key: u64) -> usize {
        jump_hash(key, self.shards) as usize
    }

    /// Route a string key (e.g. an `H_1` Soundex code) to its bucket.
    #[inline]
    pub fn route_str(&self, s: &str) -> usize {
        self.route_key(fx_hash_str(s))
    }
}

/// Initial bits in a [`Bloom`] summary: 2^12 = 4096 bits (512 B). Small
/// shards stay cheap; a summary that outgrows this is rebuilt larger from
/// its exact source set (the code interner) via [`Bloom::with_capacity`].
const INITIAL_BLOOM_BITS: usize = 1 << 12;

/// Target bits-per-item when sizing a rebuilt summary: 16 bits/item keeps
/// the two-probe false-positive rate around a third of a percent.
const REBUILD_BITS_PER_ITEM: usize = 16;

/// Fill threshold that signals a rebuild: below 8 bits/item the two-probe
/// false-positive rate passes ~1.5% and keeps climbing, which erodes the
/// skip rate of shard routing. Rebuild trigger, not a correctness bound.
const GROW_BITS_PER_ITEM: usize = 8;

/// A Bloom-style membership summary over pre-hashed `u64` keys.
///
/// This is the skip-empty router of the sharded token database: each shard
/// summarizes the Soundex codes it indexes per phonetic level, and a query
/// skips every shard whose summary rules out all of its codes. The filter
/// is insert-only (matching the append-only code interner it mirrors), so
/// `false` from [`Bloom::may_contain`] is authoritative — a key that was
/// never inserted — while `true` may be a false positive.
///
/// Two probe positions are derived from the low and high halves of the
/// (already well-mixed) Fx hash, so no rehashing happens per probe.
///
/// The filter cannot grow in place (inserted hashes are not retained), but
/// its *owner* usually can: when [`Bloom::needs_grow`] reports the fill
/// ratio has crossed the rebuild threshold, rebuild a fresh summary from
/// the exact source set with [`Bloom::with_capacity`] and re-insert. The
/// bit count is always a power of two, so probe slots are mask extractions.
#[derive(Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u64>,
    /// `bit count - 1`; the bit count is a power of two.
    mask: usize,
    items: usize,
}

impl Bloom {
    /// An empty summary at the initial (smallest) size.
    pub fn new() -> Self {
        Bloom::with_bits(INITIAL_BLOOM_BITS)
    }

    /// An empty summary sized for `items` keys at the rebuild target of
    /// 16 bits/item (clamped to at least the initial size, rounded up to a
    /// power of two).
    pub fn with_capacity(items: usize) -> Self {
        let want = items
            .saturating_mul(REBUILD_BITS_PER_ITEM)
            .max(INITIAL_BLOOM_BITS);
        Bloom::with_bits(want.next_power_of_two())
    }

    fn with_bits(bits: usize) -> Self {
        debug_assert!(bits.is_power_of_two() && bits >= 64);
        Bloom {
            bits: vec![0u64; bits / 64],
            mask: bits - 1,
            items: 0,
        }
    }

    #[inline]
    fn slots(&self, key: u64) -> (usize, usize) {
        // Low and high 32-bit halves of the mixed hash give two
        // independent probes (classic double hashing, k = 2).
        (
            (key as u32 as usize) & self.mask,
            ((key >> 32) as usize) & self.mask,
        )
    }

    /// Record a key.
    pub fn insert(&mut self, key: u64) {
        let (a, b) = self.slots(key);
        self.bits[a / 64] |= 1u64 << (a % 64);
        self.bits[b / 64] |= 1u64 << (b % 64);
        self.items += 1;
    }

    /// Might `key` have been inserted? `false` is definitive, `true` may
    /// be a false positive.
    #[inline]
    pub fn may_contain(&self, key: u64) -> bool {
        let (a, b) = self.slots(key);
        self.bits[a / 64] & (1u64 << (a % 64)) != 0 && self.bits[b / 64] & (1u64 << (b % 64)) != 0
    }

    /// How many inserts this summary has absorbed (duplicates counted —
    /// the filter cannot tell them apart).
    pub fn items(&self) -> usize {
        self.items
    }

    /// True when nothing was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// The current bit count (a power of two).
    pub fn bit_count(&self) -> usize {
        self.mask + 1
    }

    /// Has the fill ratio crossed the rebuild threshold (fewer than 8 bits
    /// per inserted key)? When this reports `true`, the owner should
    /// rebuild from its exact key set with [`Bloom::with_capacity`] —
    /// skipping the rebuild only costs skip opportunities, never
    /// correctness.
    pub fn needs_grow(&self) -> bool {
        self.items.saturating_mul(GROW_BITS_PER_ITEM) > self.bit_count()
    }
}

impl Default for Bloom {
    fn default() -> Self {
        Bloom::new()
    }
}

impl std::fmt::Debug for Bloom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bloom")
            .field("items", &self.items)
            .field("bits", &self.bit_count())
            .finish()
    }
}

/// Hash an arbitrary byte slice with the Fx algorithm in one call.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Hash a string slice with the Fx algorithm in one call.
#[inline]
pub fn fx_hash_str(s: &str) -> u64 {
    fx_hash_bytes(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fx_hash_str("democrats"), fx_hash_str("democrats"));
        assert_eq!(fx_hash_bytes(b""), fx_hash_bytes(b""));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(fx_hash_str("democrats"), fx_hash_str("demoCRats"));
        assert_ne!(fx_hash_str("a"), fx_hash_str("a\0"));
        assert_ne!(fx_hash_str("ab"), fx_hash_str("ba"));
    }

    #[test]
    fn map_aliases_behave_like_std_maps() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("suic1de".into(), 3);
        m.insert("suicide".into(), 5);
        assert_eq!(m.get("suic1de"), Some(&3));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn long_inputs_use_all_bytes() {
        let a = "x".repeat(1024);
        let mut b = a.clone();
        // Flip one byte in the middle; hash must change.
        b.replace_range(512..513, "y");
        assert_ne!(fx_hash_str(&a), fx_hash_str(&b));
    }

    #[test]
    fn jump_hash_is_deterministic_and_in_range() {
        for key in [0u64, 1, 42, u64::MAX, fx_hash_str("TH000")] {
            for buckets in [1u32, 2, 3, 8, 100] {
                let a = jump_hash(key, buckets);
                assert_eq!(a, jump_hash(key, buckets), "stable per (key, buckets)");
                assert!(a < buckets);
            }
        }
        assert_eq!(jump_hash(123, 1), 0, "one bucket gets everything");
    }

    #[test]
    fn jump_hash_relocates_only_to_new_buckets() {
        // The consistent-hashing contract: growing n → n+1 either keeps a
        // key in place or moves it to the brand-new bucket n.
        for key in 0..5_000u64 {
            for n in 1..10u32 {
                let before = jump_hash(key, n);
                let after = jump_hash(key, n + 1);
                assert!(
                    after == before || after == n,
                    "key {key}: {before} → {after} at n={n}"
                );
            }
        }
    }

    #[test]
    fn jump_hash_distributes_roughly_uniformly() {
        let buckets = 8u32;
        let mut counts = [0usize; 8];
        let n_keys = 80_000u64;
        for key in 0..n_keys {
            counts[jump_hash(fx_hash_bytes(&key.to_le_bytes()), buckets) as usize] += 1;
        }
        let expected = n_keys as usize / buckets as usize;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "bucket {b} has {c} of ~{expected}"
            );
        }
    }

    #[test]
    fn shard_ring_routes_consistently() {
        let ring = ShardRing::new(4);
        assert_eq!(ring.shards(), 4);
        assert_eq!(ring.route_str("TH000"), ring.route_str("TH000"));
        assert!(ring.route_str("DI630") < 4);
        // Degenerate counts clamp to one shard.
        assert_eq!(ShardRing::new(0).shards(), 1);
        assert_eq!(ShardRing::new(1).route_str("anything"), 0);
    }

    #[test]
    fn bloom_no_false_negatives() {
        let mut b = Bloom::new();
        assert!(b.is_empty());
        let keys: Vec<u64> = (0..2_000u64)
            .map(|i| fx_hash_bytes(&i.to_le_bytes()))
            .collect();
        for &k in &keys {
            b.insert(k);
        }
        assert_eq!(b.items(), 2_000);
        for &k in &keys {
            assert!(b.may_contain(k), "inserted key must never read absent");
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_low_when_sized_for_the_load() {
        // ~1k codes per shard level is the realistic fill; a summary
        // rebuilt at capacity (16 bits/item) rejects the overwhelming
        // majority of absent keys at that load.
        let mut b = Bloom::with_capacity(1_000);
        for i in 0..1_000u64 {
            b.insert(fx_hash_bytes(&i.to_le_bytes()));
        }
        assert!(!b.needs_grow(), "sized for the load");
        let false_positives = (1_000_000u64..1_010_000)
            .filter(|i| b.may_contain(fx_hash_bytes(&i.to_le_bytes())))
            .count();
        assert!(
            false_positives < 200,
            "{false_positives} of 10000 absent keys misread as present"
        );
        // Empty filter rejects everything.
        let empty = Bloom::new();
        assert!(!empty.may_contain(fx_hash_str("TH000")));
    }

    #[test]
    fn bloom_capacity_sizing_is_power_of_two_and_monotone() {
        assert_eq!(Bloom::new().bit_count(), 4096);
        assert_eq!(Bloom::with_capacity(0).bit_count(), 4096);
        assert_eq!(Bloom::with_capacity(256).bit_count(), 4096);
        // 1000 items * 16 bits = 16000 → next power of two 16384.
        assert_eq!(Bloom::with_capacity(1_000).bit_count(), 16_384);
        let mut last = 0;
        for items in [10, 100, 1_000, 10_000, 100_000] {
            let bits = Bloom::with_capacity(items).bit_count();
            assert!(bits.is_power_of_two());
            assert!(bits >= items * GROW_BITS_PER_ITEM, "no immediate regrow");
            assert!(bits >= last, "monotone in capacity");
            last = bits;
        }
    }

    #[test]
    fn bloom_signals_growth_at_the_fill_threshold() {
        let mut b = Bloom::new(); // 4096 bits → threshold at 512 items.
        for i in 0..512u64 {
            assert!(!b.needs_grow(), "below threshold at {i} items");
            b.insert(fx_hash_bytes(&i.to_le_bytes()));
        }
        assert!(!b.needs_grow(), "exactly at threshold");
        b.insert(fx_hash_bytes(&513u64.to_le_bytes()));
        assert!(b.needs_grow(), "past threshold");
        // The owner's rebuild: re-insert the exact set at capacity. No key
        // is lost and the pressure is relieved.
        let mut grown = Bloom::with_capacity(b.items());
        for i in 0..=513u64 {
            grown.insert(fx_hash_bytes(&i.to_le_bytes()));
        }
        assert!(!grown.needs_grow());
        for i in 0..=513u64 {
            assert!(grown.may_contain(fx_hash_bytes(&i.to_le_bytes())));
        }
    }

    #[test]
    fn collision_rate_is_sane_on_small_token_universe() {
        // 10k distinct short tokens should produce (almost) 10k distinct
        // hashes; allow a tiny number of collisions.
        let mut hashes = FxHashSet::default();
        let mut n = 0u32;
        for a in b'a'..=b'z' {
            for b in b'a'..=b'z' {
                for c in b'a'..=b'm' {
                    let tok = [a, b, c];
                    hashes.insert(fx_hash_bytes(&tok));
                    n += 1;
                }
            }
        }
        assert!(
            hashes.len() as u32 >= n - 2,
            "{} of {n} unique",
            hashes.len()
        );
    }
}
