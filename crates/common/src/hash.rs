//! Fast, non-cryptographic hashing for hot paths.
//!
//! The token database performs millions of map probes while curating a
//! corpus; the standard library's SipHash is a measurable bottleneck there
//! (see the performance guide's "Hashing" chapter). This module implements
//! the Fx hash algorithm (the multiply-xor hash used by rustc, public
//! domain) so the workspace does not need an extra dependency.
//!
//! HashDoS is not a concern: every map key in CrypText originates from local
//! corpora or trusted callers, never from a network adversary.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-xor hasher. Extremely fast for short keys
/// (integers, short strings) at the cost of weaker avalanche behaviour.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8-byte words, then the tail, mixing each chunk.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (i * 8);
            }
            // Fold the tail length in so "a\0" and "a" differ.
            self.add_to_hash(word ^ ((tail.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash an arbitrary byte slice with the Fx algorithm in one call.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Hash a string slice with the Fx algorithm in one call.
#[inline]
pub fn fx_hash_str(s: &str) -> u64 {
    fx_hash_bytes(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(fx_hash_str("democrats"), fx_hash_str("democrats"));
        assert_eq!(fx_hash_bytes(b""), fx_hash_bytes(b""));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(fx_hash_str("democrats"), fx_hash_str("demoCRats"));
        assert_ne!(fx_hash_str("a"), fx_hash_str("a\0"));
        assert_ne!(fx_hash_str("ab"), fx_hash_str("ba"));
    }

    #[test]
    fn map_aliases_behave_like_std_maps() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("suic1de".into(), 3);
        m.insert("suicide".into(), 5);
        assert_eq!(m.get("suic1de"), Some(&3));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn long_inputs_use_all_bytes() {
        let a = "x".repeat(1024);
        let mut b = a.clone();
        // Flip one byte in the middle; hash must change.
        b.replace_range(512..513, "y");
        assert_ne!(fx_hash_str(&a), fx_hash_str(&b));
    }

    #[test]
    fn collision_rate_is_sane_on_small_token_universe() {
        // 10k distinct short tokens should produce (almost) 10k distinct
        // hashes; allow a tiny number of collisions.
        let mut hashes = FxHashSet::default();
        let mut n = 0u32;
        for a in b'a'..=b'z' {
            for b in b'a'..=b'z' {
                for c in b'a'..=b'm' {
                    let tok = [a, b, c];
                    hashes.insert(fx_hash_bytes(&tok));
                    n += 1;
                }
            }
        }
        assert!(
            hashes.len() as u32 >= n - 2,
            "{} of {n} unique",
            hashes.len()
        );
    }
}
