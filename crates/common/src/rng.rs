//! Deterministic pseudo-randomness.
//!
//! Everything stochastic in CrypText — corpus generation, perturbation
//! sampling, train/test splits, the simulated social stream — must be
//! reproducible from a seed so the experiment binaries regenerate the same
//! tables on every run. [`SplitMix64`] is the tiny, allocation-free PRNG used
//! on hot paths; the `rand`-based crates seed `StdRng` from it.

/// SplitMix64: a tiny, fast, well-distributed 64-bit PRNG.
///
/// Suitable for sampling and shuffling, **not** for cryptography. Passes
/// BigCrush when used as a stream; its main virtue here is that it is
/// trivially seedable and has no state beyond a single `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an explicit seed. Equal seeds yield equal
    /// streams forever.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of entropy.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below requires bound > 0");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index into a slice of length `len` (`len > 0`).
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Choose a uniformly random element of `items`, or `None` when empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (Floyd's algorithm when
    /// `k < n`, identity when `k >= n`). Output order is unspecified but
    /// deterministic for a given state.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        // Floyd's sampling: O(k) expected probes.
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        let mut seen = std::collections::HashSet::with_capacity(k * 2);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            let pick = if seen.contains(&t) { j } else { t };
            seen.insert(pick);
            chosen.push(pick);
        }
        chosen
    }

    /// Weighted index draw proportional to `weights` (all non-negative, at
    /// least one positive). Returns `None` if the total weight is zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slop: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Derive an independent child generator; useful for giving each worker
    /// or document its own stream while keeping global determinism.
    #[inline]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound_and_covers_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p is clamped instead of panicking.
        assert!(r.chance(5.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut r = SplitMix64::new(11);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = SplitMix64::new(13);
        let sample = r.sample_indices(100, 20);
        assert_eq!(sample.len(), 20);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 20, "indices distinct");
        assert!(sample.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_k_geq_n_returns_all() {
        let mut r = SplitMix64::new(13);
        let sample = r.sample_indices(5, 10);
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn weighted_index_skips_zero_weights() {
        let mut r = SplitMix64::new(17);
        for _ in 0..200 {
            let i = r.weighted_index(&[0.0, 1.0, 0.0, 3.0]).unwrap();
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn weighted_index_zero_total_is_none() {
        let mut r = SplitMix64::new(19);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(r.weighted_index(&[]), None);
    }

    #[test]
    fn weighted_index_roughly_proportional() {
        let mut r = SplitMix64::new(23);
        let mut counts = [0u32; 2];
        for _ in 0..10_000 {
            counts[r.weighted_index(&[1.0, 3.0]).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio} near 3");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SplitMix64::new(29);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..10).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
