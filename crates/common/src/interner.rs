//! Thread-safe string interning.
//!
//! The token database stores the same strings in several indexes (`H_0`,
//! `H_1`, `H_2`, frequency tables, document references). Interning replaces
//! those copies with a 4-byte [`Symbol`], cutting memory roughly 5× on the
//! curated corpora and making token equality a register compare.

use parking_lot::RwLock;

use crate::hash::FxHashMap;

/// A handle to an interned string. Symbols are only meaningful relative to
/// the [`Interner`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Default)]
struct Inner {
    map: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

/// An append-only, thread-safe string interner.
///
/// `get_or_intern` takes a write lock only when the string is new; the hot
/// path (existing string) is a read-locked map probe.
#[derive(Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its stable symbol.
    pub fn get_or_intern(&self, s: &str) -> Symbol {
        if let Some(sym) = self.get(s) {
            return sym;
        }
        let mut inner = self.inner.write();
        // Double-check: another thread may have interned between locks.
        if let Some(&sym) = inner.map.get(s) {
            return sym;
        }
        let sym = Symbol(inner.strings.len() as u32);
        let boxed: Box<str> = s.into();
        inner.strings.push(boxed.clone());
        inner.map.insert(boxed, sym);
        sym
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.inner.read().map.get(s).copied()
    }

    /// Resolve a symbol back to its string (owned copy).
    ///
    /// Returns `None` for symbols from a different interner (out of range).
    pub fn resolve(&self, sym: Symbol) -> Option<String> {
        self.inner
            .read()
            .strings
            .get(sym.index())
            .map(|s| s.to_string())
    }

    /// Run `f` over the resolved string without copying it out.
    pub fn with_resolved<R>(&self, sym: Symbol, f: impl FnOnce(&str) -> R) -> Option<R> {
        self.inner.read().strings.get(sym.index()).map(|s| f(s))
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot all interned strings in symbol order. Intended for
    /// persistence; O(n) copies.
    pub fn snapshot(&self) -> Vec<String> {
        self.inner
            .read()
            .strings
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Rebuild an interner from a snapshot, preserving symbol assignment.
    pub fn from_snapshot(strings: Vec<String>) -> Self {
        let mut inner = Inner {
            map: FxHashMap::default(),
            strings: Vec::with_capacity(strings.len()),
        };
        for (i, s) in strings.into_iter().enumerate() {
            let boxed: Box<str> = s.into();
            inner.map.insert(boxed.clone(), Symbol(i as u32));
            inner.strings.push(boxed);
        }
        Interner {
            inner: RwLock::new(inner),
        }
    }
}

impl std::fmt::Debug for Interner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.get_or_intern("democrats");
        let b = i.get_or_intern("democrats");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let i = Interner::new();
        let a = i.get_or_intern("democrats");
        let b = i.get_or_intern("democRATs");
        assert_ne!(a, b, "interning is case-sensitive");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        let sym = i.get_or_intern("suic1de");
        assert_eq!(i.resolve(sym).as_deref(), Some("suic1de"));
        assert_eq!(i.with_resolved(sym, |s| s.len()), Some(7));
    }

    #[test]
    fn resolve_out_of_range_is_none() {
        let i = Interner::new();
        assert_eq!(i.resolve(Symbol(99)), None);
    }

    #[test]
    fn get_does_not_insert() {
        let i = Interner::new();
        assert_eq!(i.get("ghost"), None);
        assert!(i.is_empty());
    }

    #[test]
    fn snapshot_round_trip_preserves_symbols() {
        let i = Interner::new();
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| i.get_or_intern(s)).collect();
        let restored = Interner::from_snapshot(i.snapshot());
        for (s, sym) in ["a", "b", "c"].iter().zip(&syms) {
            assert_eq!(restored.get(s), Some(*sym));
            assert_eq!(restored.resolve(*sym).as_deref(), Some(*s));
        }
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        use std::sync::Arc;
        let i = Arc::new(Interner::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let i = Arc::clone(&i);
            handles.push(std::thread::spawn(move || {
                let mut syms = Vec::new();
                for n in 0..100 {
                    // Half shared strings, half thread-unique.
                    let s = if n % 2 == 0 {
                        format!("shared-{n}")
                    } else {
                        format!("t{t}-{n}")
                    };
                    syms.push((s.clone(), i.get_or_intern(&s)));
                }
                syms
            }));
        }
        let all: Vec<(String, Symbol)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Every recorded symbol must still resolve to its string.
        for (s, sym) in &all {
            assert_eq!(i.resolve(*sym).as_deref(), Some(s.as_str()));
        }
        // Shared strings must have converged to a single symbol.
        let shared_syms: std::collections::HashSet<_> = all
            .iter()
            .filter(|(s, _)| s == "shared-0")
            .map(|(_, sym)| *sym)
            .collect();
        assert_eq!(shared_syms.len(), 1);
    }
}
