//! Workspace-wide error type.
//!
//! Every fallible public API in the CrypText workspace returns
//! [`Result<T>`]. The error enum is intentionally flat: the system spans a
//! document store, a cache, ML models and a service facade, and a single
//! error vocabulary keeps cross-crate plumbing trivial.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified CrypText error type.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure (WAL, snapshot, corpus files).
    Io(std::io::Error),
    /// Persistent state failed validation during decode/recovery.
    Corrupt(String),
    /// A named entity (collection, document, model, token) does not exist.
    NotFound(String),
    /// Caller passed an argument outside the supported domain.
    InvalidArgument(String),
    /// A uniqueness or schema constraint was violated.
    Conflict(String),
    /// Authentication failed (missing/unknown/revoked API token).
    Unauthorized(String),
    /// The caller exceeded its per-token rate limit; the budget refills
    /// when the current fixed window rolls over.
    RateLimited {
        /// Milliseconds until the current rate window resets.
        retry_after_ms: u64,
    },
    /// The service shed this request under overload (admission queue
    /// full or draining); retry after backing off.
    Overloaded {
        /// Suggested backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline budget expired before a result was ready.
    DeadlineExceeded {
        /// The total budget that was granted, in milliseconds.
        budget_ms: u64,
    },
    /// Serialization/deserialization failure outside persistent state.
    Serde(String),
    /// An internal invariant was broken; indicates a bug, not user error.
    Internal(String),
}

impl Error {
    /// Build a [`Error::NotFound`] from anything printable.
    pub fn not_found(what: impl fmt::Display) -> Self {
        Error::NotFound(what.to_string())
    }

    /// Build a [`Error::InvalidArgument`] from anything printable.
    pub fn invalid(what: impl fmt::Display) -> Self {
        Error::InvalidArgument(what.to_string())
    }

    /// Build a [`Error::Corrupt`] from anything printable.
    pub fn corrupt(what: impl fmt::Display) -> Self {
        Error::Corrupt(what.to_string())
    }

    /// True when retrying the same call later could succeed
    /// (rate limits, shed load, and transient I/O), false for logic
    /// errors. A blown deadline is *not* retryable: the caller's budget is
    /// gone, and only the caller knows whether granting a fresh one makes
    /// sense.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::RateLimited { .. } | Error::Overloaded { .. } | Error::Io(_)
        )
    }

    /// The backoff hint carried by throttling errors
    /// ([`Error::RateLimited`] / [`Error::Overloaded`]), `None` otherwise.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Error::RateLimited { retry_after_ms } | Error::Overloaded { retry_after_ms } => {
                Some(*retry_after_ms)
            }
            _ => None,
        }
    }

    /// The canonical HTTP status code for this error — the one wire
    /// mapping every layer (gateway envelope, HTTP server, tests) speaks:
    ///
    /// | variant | status |
    /// |---|---|
    /// | `InvalidArgument` | 400 |
    /// | `Unauthorized` | 403 (credentials presented and refused; a *missing* credential is the wire layer's 401) |
    /// | `NotFound` | 404 |
    /// | `Conflict` | 409 |
    /// | `RateLimited` / `Overloaded` | 429 (+ `Retry-After` from [`Self::retry_after`]) |
    /// | `DeadlineExceeded` | 504 |
    /// | `Io` / `Corrupt` / `Serde` / `Internal` | 500 |
    pub fn status_code(&self) -> u16 {
        match self {
            Error::InvalidArgument(_) => 400,
            Error::Unauthorized(_) => 403,
            Error::NotFound(_) => 404,
            Error::Conflict(_) => 409,
            Error::RateLimited { .. } | Error::Overloaded { .. } => 429,
            Error::DeadlineExceeded { .. } => 504,
            Error::Io(_) | Error::Corrupt(_) | Error::Serde(_) | Error::Internal(_) => 500,
        }
    }

    /// The `Retry-After` header value (whole seconds, rounded **up** so a
    /// client honoring it never retries inside the throttled window) for
    /// throttling errors, `None` otherwise. The millisecond-precision hint
    /// remains available via [`Self::retry_after_ms`].
    pub fn retry_after(&self) -> Option<u64> {
        self.retry_after_ms().map(|ms| ms.div_ceil(1000).max(1))
    }

    /// Stable snake_case label for the error category (wire bodies, logs,
    /// metrics). One label per variant, no payload.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Error::Io(_) => "io",
            Error::Corrupt(_) => "corrupt",
            Error::NotFound(_) => "not_found",
            Error::InvalidArgument(_) => "invalid_argument",
            Error::Conflict(_) => "conflict",
            Error::Unauthorized(_) => "unauthorized",
            Error::RateLimited { .. } => "rate_limited",
            Error::Overloaded { .. } => "overloaded",
            Error::DeadlineExceeded { .. } => "deadline_exceeded",
            Error::Serde(_) => "serde",
            Error::Internal(_) => "internal",
        }
    }

    /// A structural copy of this error, for broadcasting one failure to
    /// several coalesced waiters. `std::io::Error` is not `Clone`, so the
    /// I/O arm is rebuilt from its kind and message; every other arm
    /// clones exactly.
    pub fn duplicate(&self) -> Self {
        match self {
            Error::Io(e) => Error::Io(std::io::Error::new(e.kind(), e.to_string())),
            Error::Corrupt(m) => Error::Corrupt(m.clone()),
            Error::NotFound(m) => Error::NotFound(m.clone()),
            Error::InvalidArgument(m) => Error::InvalidArgument(m.clone()),
            Error::Conflict(m) => Error::Conflict(m.clone()),
            Error::Unauthorized(m) => Error::Unauthorized(m.clone()),
            Error::RateLimited { retry_after_ms } => Error::RateLimited {
                retry_after_ms: *retry_after_ms,
            },
            Error::Overloaded { retry_after_ms } => Error::Overloaded {
                retry_after_ms: *retry_after_ms,
            },
            Error::DeadlineExceeded { budget_ms } => Error::DeadlineExceeded {
                budget_ms: *budget_ms,
            },
            Error::Serde(m) => Error::Serde(m.clone()),
            Error::Internal(m) => Error::Internal(m.clone()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corrupt(m) => write!(f, "corrupt state: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Conflict(m) => write!(f, "conflict: {m}"),
            Error::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            Error::RateLimited { retry_after_ms } => {
                write!(f, "rate limited: retry after {retry_after_ms}ms")
            }
            Error::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms}ms")
            }
            Error::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline exceeded: {budget_ms}ms budget spent")
            }
            Error::Serde(m) => write!(f, "serialization error: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::NotFound("collection tokens".into());
        assert_eq!(e.to_string(), "not found: collection tokens");
        let e = Error::RateLimited {
            retry_after_ms: 1500,
        };
        assert_eq!(e.to_string(), "rate limited: retry after 1500ms");
        let e = Error::Overloaded { retry_after_ms: 25 };
        assert_eq!(e.to_string(), "overloaded: retry after 25ms");
        let e = Error::DeadlineExceeded { budget_ms: 40 };
        assert_eq!(e.to_string(), "deadline exceeded: 40ms budget spent");
    }

    #[test]
    fn io_errors_are_wrapped_and_sourced() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retryability_classification() {
        assert!(Error::RateLimited { retry_after_ms: 1 }.is_retryable());
        assert!(Error::Overloaded { retry_after_ms: 1 }.is_retryable());
        assert!(Error::Io(std::io::Error::other("net")).is_retryable());
        assert!(!Error::DeadlineExceeded { budget_ms: 5 }.is_retryable());
        assert!(!Error::invalid("bad k").is_retryable());
        assert!(!Error::corrupt("bad magic").is_retryable());
    }

    #[test]
    fn retry_after_hint_only_on_throttling_errors() {
        assert_eq!(
            Error::RateLimited {
                retry_after_ms: 700
            }
            .retry_after_ms(),
            Some(700)
        );
        assert_eq!(
            Error::Overloaded { retry_after_ms: 9 }.retry_after_ms(),
            Some(9)
        );
        assert_eq!(
            Error::DeadlineExceeded { budget_ms: 9 }.retry_after_ms(),
            None
        );
        assert_eq!(Error::invalid("x").retry_after_ms(), None);
    }

    #[test]
    fn duplicate_preserves_category_and_message() {
        let io = Error::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "slow shard",
        ));
        match io.duplicate() {
            Error::Io(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
                assert_eq!(e.to_string(), "slow shard");
            }
            other => panic!("wrong arm: {other:?}"),
        }
        for e in [
            Error::Unauthorized("tok".into()),
            Error::RateLimited { retry_after_ms: 3 },
            Error::Overloaded { retry_after_ms: 4 },
            Error::DeadlineExceeded { budget_ms: 5 },
            Error::Internal("bug".into()),
        ] {
            assert_eq!(e.duplicate().to_string(), e.to_string());
        }
    }

    #[test]
    fn every_variant_has_a_canonical_status() {
        let cases: Vec<(Error, u16, &str)> = vec![
            (Error::Io(std::io::Error::other("net")), 500, "io"),
            (Error::Corrupt("magic".into()), 500, "corrupt"),
            (Error::NotFound("doc".into()), 404, "not_found"),
            (Error::InvalidArgument("k".into()), 400, "invalid_argument"),
            (Error::Conflict("dup".into()), 409, "conflict"),
            (Error::Unauthorized("tok".into()), 403, "unauthorized"),
            (
                Error::RateLimited { retry_after_ms: 1 },
                429,
                "rate_limited",
            ),
            (Error::Overloaded { retry_after_ms: 1 }, 429, "overloaded"),
            (
                Error::DeadlineExceeded { budget_ms: 5 },
                504,
                "deadline_exceeded",
            ),
            (Error::Serde("bad".into()), 500, "serde"),
            (Error::Internal("bug".into()), 500, "internal"),
        ];
        for (e, status, label) in cases {
            assert_eq!(e.status_code(), status, "{e}");
            assert_eq!(e.kind_label(), label, "{e}");
        }
    }

    #[test]
    fn retry_after_rounds_up_to_whole_seconds() {
        let hint = |ms| Error::RateLimited { retry_after_ms: ms }.retry_after();
        assert_eq!(hint(60_000), Some(60));
        assert_eq!(hint(1_001), Some(2), "partial seconds round up");
        assert_eq!(hint(25), Some(1), "sub-second hints never collapse to 0");
        assert_eq!(hint(0), Some(1));
        assert_eq!(
            Error::Overloaded { retry_after_ms: 25 }.retry_after(),
            Some(1)
        );
        assert_eq!(Error::DeadlineExceeded { budget_ms: 9 }.retry_after(), None);
        assert_eq!(Error::invalid("x").retry_after(), None);
    }

    #[test]
    fn constructors_accept_display_types() {
        assert!(matches!(Error::not_found(42), Error::NotFound(s) if s == "42"));
        assert!(matches!(Error::invalid("k>2"), Error::InvalidArgument(s) if s == "k>2"));
    }
}
