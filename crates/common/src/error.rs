//! Workspace-wide error type.
//!
//! Every fallible public API in the CrypText workspace returns
//! [`Result<T>`]. The error enum is intentionally flat: the system spans a
//! document store, a cache, ML models and a service facade, and a single
//! error vocabulary keeps cross-crate plumbing trivial.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The unified CrypText error type.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure (WAL, snapshot, corpus files).
    Io(std::io::Error),
    /// Persistent state failed validation during decode/recovery.
    Corrupt(String),
    /// A named entity (collection, document, model, token) does not exist.
    NotFound(String),
    /// Caller passed an argument outside the supported domain.
    InvalidArgument(String),
    /// A uniqueness or schema constraint was violated.
    Conflict(String),
    /// Authentication failed (missing/unknown/revoked API token).
    Unauthorized(String),
    /// The caller exceeded its rate limit; retry after the embedded budget resets.
    RateLimited(String),
    /// Serialization/deserialization failure outside persistent state.
    Serde(String),
    /// An internal invariant was broken; indicates a bug, not user error.
    Internal(String),
}

impl Error {
    /// Build a [`Error::NotFound`] from anything printable.
    pub fn not_found(what: impl fmt::Display) -> Self {
        Error::NotFound(what.to_string())
    }

    /// Build a [`Error::InvalidArgument`] from anything printable.
    pub fn invalid(what: impl fmt::Display) -> Self {
        Error::InvalidArgument(what.to_string())
    }

    /// Build a [`Error::Corrupt`] from anything printable.
    pub fn corrupt(what: impl fmt::Display) -> Self {
        Error::Corrupt(what.to_string())
    }

    /// True when retrying the same call later could succeed
    /// (rate limits and transient I/O), false for logic errors.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::RateLimited(_) | Error::Io(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corrupt(m) => write!(f, "corrupt state: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Conflict(m) => write!(f, "conflict: {m}"),
            Error::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            Error::RateLimited(m) => write!(f, "rate limited: {m}"),
            Error::Serde(m) => write!(f, "serialization error: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::NotFound("collection tokens".into());
        assert_eq!(e.to_string(), "not found: collection tokens");
        let e = Error::RateLimited("token abc".into());
        assert!(e.to_string().starts_with("rate limited"));
    }

    #[test]
    fn io_errors_are_wrapped_and_sourced() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retryability_classification() {
        assert!(Error::RateLimited("x".into()).is_retryable());
        assert!(Error::Io(std::io::Error::other("net")).is_retryable());
        assert!(!Error::invalid("bad k").is_retryable());
        assert!(!Error::corrupt("bad magic").is_retryable());
    }

    #[test]
    fn constructors_accept_display_types() {
        assert!(matches!(Error::not_found(42), Error::NotFound(s) if s == "42"));
        assert!(matches!(Error::invalid("k>2"), Error::InvalidArgument(s) if s == "k>2"));
    }
}
