//! Simulated and real time sources.
//!
//! The social-stream substrate replays months of posts in milliseconds, and
//! the cache needs TTL expiry that tests can drive deterministically. Both
//! consume the [`Clock`] trait; production code can use [`SystemClock`],
//! experiments use [`SimClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Milliseconds since the Unix epoch. All CrypText timestamps use this unit.
pub type Timestamp = u64;

/// Number of milliseconds in one day; convenient for timeline bucketing.
pub const MILLIS_PER_DAY: u64 = 24 * 60 * 60 * 1000;

/// A monotone time source.
pub trait Clock: Send + Sync {
    /// Current time in milliseconds since the Unix epoch.
    fn now(&self) -> Timestamp;
}

/// Wall-clock time from the operating system.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }
}

/// Shared handle to the wall clock, for APIs taking `Arc<dyn Clock>`.
pub fn system_clock() -> std::sync::Arc<dyn Clock> {
    std::sync::Arc::new(SystemClock)
}

/// A manually-driven clock shared across threads.
///
/// Cloning is cheap; all clones observe the same instant. `advance` never
/// moves backwards, which keeps downstream timeline bucketing monotone.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// Create a clock frozen at `start_ms`.
    pub fn new(start_ms: Timestamp) -> Self {
        SimClock {
            now_ms: Arc::new(AtomicU64::new(start_ms)),
        }
    }

    /// Move time forward by `delta_ms` and return the new instant.
    pub fn advance(&self, delta_ms: u64) -> Timestamp {
        self.now_ms.fetch_add(delta_ms, Ordering::SeqCst) + delta_ms
    }

    /// Jump to an absolute instant. Jumps backwards are ignored so that the
    /// clock stays monotone even under racing setters.
    pub fn set(&self, at_ms: Timestamp) {
        self.now_ms.fetch_max(at_ms, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        self.now_ms.load(Ordering::SeqCst)
    }
}

/// Half-open time interval `[start, end)` in epoch milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl TimeRange {
    /// Construct a range; `end < start` is clamped to the empty range at `start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        TimeRange {
            start,
            end: end.max(start),
        }
    }

    /// Does the range contain `t`?
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Length in milliseconds.
    #[inline]
    pub fn len_ms(&self) -> u64 {
        self.end - self.start
    }

    /// Is the range empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Split the range into `n` equal-width buckets (last bucket absorbs the
    /// rounding remainder). Returns an empty vec when the range is empty or
    /// `n == 0`.
    pub fn buckets(&self, n: usize) -> Vec<TimeRange> {
        if n == 0 || self.is_empty() {
            return Vec::new();
        }
        let width = (self.len_ms() / n as u64).max(1);
        let mut out = Vec::with_capacity(n);
        let mut start = self.start;
        for i in 0..n {
            let end = if i == n - 1 {
                self.end
            } else {
                (start + width).min(self.end)
            };
            out.push(TimeRange::new(start, end));
            start = end;
        }
        out
    }

    /// Index of the bucket containing `t` among `n` equal buckets, or `None`
    /// when `t` is outside the range.
    pub fn bucket_of(&self, t: Timestamp, n: usize) -> Option<usize> {
        if !self.contains(t) || n == 0 {
            return None;
        }
        let width = (self.len_ms() / n as u64).max(1);
        Some((((t - self.start) / width) as usize).min(n - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_starts_frozen_and_advances() {
        let c = SimClock::new(1_000);
        assert_eq!(c.now(), 1_000);
        assert_eq!(c.advance(500), 1_500);
        assert_eq!(c.now(), 1_500);
    }

    #[test]
    fn sim_clock_clones_share_state() {
        let c = SimClock::new(0);
        let c2 = c.clone();
        c.advance(10);
        assert_eq!(c2.now(), 10);
    }

    #[test]
    fn sim_clock_set_never_goes_backwards() {
        let c = SimClock::new(100);
        c.set(50);
        assert_eq!(c.now(), 100);
        c.set(200);
        assert_eq!(c.now(), 200);
    }

    #[test]
    fn system_clock_is_nonzero_and_monotoneish() {
        let c = SystemClock;
        let a = c.now();
        assert!(a > 1_600_000_000_000, "after 2020");
        assert!(c.now() >= a);
    }

    #[test]
    fn range_contains_and_len() {
        let r = TimeRange::new(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
        assert_eq!(r.len_ms(), 10);
    }

    #[test]
    fn inverted_range_is_clamped_empty() {
        let r = TimeRange::new(20, 10);
        assert!(r.is_empty());
        assert_eq!(r.buckets(4), Vec::new());
        assert_eq!(r.bucket_of(20, 4), None);
    }

    #[test]
    fn buckets_partition_the_range() {
        let r = TimeRange::new(0, 100);
        let bs = r.buckets(3);
        assert_eq!(bs.len(), 3);
        assert_eq!(bs[0].start, 0);
        assert_eq!(bs.last().unwrap().end, 100);
        // Adjacent buckets touch exactly.
        for w in bs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Total length preserved.
        let total: u64 = bs.iter().map(|b| b.len_ms()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn bucket_of_matches_buckets() {
        let r = TimeRange::new(0, 100);
        let bs = r.buckets(7);
        for t in 0..100 {
            let i = r.bucket_of(t, 7).unwrap();
            assert!(bs[i].contains(t), "t={t} in bucket {i}");
        }
        assert_eq!(r.bucket_of(100, 7), None);
    }

    #[test]
    fn tiny_range_many_buckets() {
        let r = TimeRange::new(0, 2);
        let bs = r.buckets(10);
        assert_eq!(bs.len(), 10);
        assert_eq!(bs.last().unwrap().end, 2);
        // Every timestamp lands in a valid bucket.
        assert!(r.bucket_of(1, 10).is_some());
    }
}
