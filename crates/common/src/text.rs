//! Small string utilities shared across crates.
//!
//! These sit here (rather than in the tokenizer) because the phonetics,
//! attacks and corpus crates need them too and must not depend on the
//! tokenizer.

/// ASCII-lowercase a string, leaving non-ASCII characters untouched.
///
/// CrypText's case handling is deliberately ASCII-scoped: the perturbation
/// phenomena in the paper (democRATs, RepubLIEcans) are ASCII casing tricks,
/// and full Unicode case folding would conflate distinct homoglyphs that the
/// confusables table must see unchanged.
#[inline]
pub fn ascii_lower(s: &str) -> String {
    s.to_ascii_lowercase()
}

/// True when `c` can appear inside a word token: alphanumeric, or one of the
/// intra-word joiners that human perturbations exploit (`'`, `-`, `_`), or a
/// symbol commonly used as a letter substitute (`@ $ ! * + .` inside words).
#[inline]
pub fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '\'' | '-' | '_' | '@' | '$' | '!' | '*' | '+')
}

/// Collapse runs of more than `max_run` identical characters down to exactly
/// `max_run` (e.g. `porrrrn` → `porrn` with `max_run = 2`).
///
/// Works on char boundaries, so multi-byte characters are safe.
pub fn squeeze_repeats(s: &str, max_run: usize) -> String {
    if max_run == 0 {
        return String::new();
    }
    let mut out = String::with_capacity(s.len());
    let mut prev: Option<char> = None;
    let mut run = 0usize;
    for c in s.chars() {
        if Some(c) == prev {
            run += 1;
        } else {
            prev = Some(c);
            run = 1;
        }
        if run <= max_run {
            out.push(c);
        }
    }
    out
}

/// Count characters (Unicode scalar values), not bytes.
#[inline]
pub fn char_len(s: &str) -> usize {
    s.chars().count()
}

/// Truncate to at most `max_chars` characters on a char boundary.
pub fn truncate_chars(s: &str, max_chars: usize) -> &str {
    match s.char_indices().nth(max_chars) {
        Some((idx, _)) => &s[..idx],
        None => s,
    }
}

/// True when the token consists entirely of ASCII letters.
#[inline]
pub fn is_pure_alpha(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_alphabetic())
}

/// Does `s` contain at least one non-alphanumeric, non-joining character —
/// i.e. a symbol a human may have used as a visual letter substitute?
#[inline]
pub fn has_symbol_substitution(s: &str) -> bool {
    s.chars()
        .any(|c| !c.is_alphanumeric() && !matches!(c, '\'' | '-'))
        || s.chars().any(|c| c.is_ascii_digit())
}

/// Ratio (0..=1) of uppercase letters among alphabetic characters; 0 for
/// tokens with no letters. `democRATs` scores 3/9.
pub fn upper_ratio(s: &str) -> f64 {
    let mut upper = 0usize;
    let mut alpha = 0usize;
    for c in s.chars() {
        if c.is_alphabetic() {
            alpha += 1;
            if c.is_uppercase() {
                upper += 1;
            }
        }
    }
    if alpha == 0 {
        0.0
    } else {
        upper as f64 / alpha as f64
    }
}

/// Detect the mixed-case "emphasis" pattern of human perturbations: an
/// uppercase run strictly inside an otherwise lowercase word (democRATs),
/// excluding all-caps and Capitalized words.
pub fn has_inner_emphasis(s: &str) -> bool {
    let chars: Vec<char> = s.chars().filter(|c| c.is_alphabetic()).collect();
    if chars.len() < 3 {
        return false;
    }
    let n_upper = chars.iter().filter(|c| c.is_uppercase()).count();
    if n_upper == 0 || n_upper == chars.len() {
        return false;
    }
    // Capitalized-only (Title) is not emphasis.
    if n_upper == 1 && chars[0].is_uppercase() {
        return false;
    }
    // Some uppercase letter strictly after position 0.
    chars[1..].iter().any(|c| c.is_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_lower_leaves_unicode_alone() {
        assert_eq!(ascii_lower("DemocRATs"), "democrats");
        assert_eq!(ascii_lower("Ä"), "Ä", "non-ASCII unchanged");
    }

    #[test]
    fn word_chars_accept_perturbation_symbols() {
        for c in ['a', 'Z', '0', '@', '$', '!', '-', '\'', '_'] {
            assert!(is_word_char(c), "{c} is a word char");
        }
        for c in [' ', ',', '?', '"', '(', '#'] {
            assert!(!is_word_char(c), "{c} is not a word char");
        }
    }

    #[test]
    fn squeeze_repeats_basic() {
        assert_eq!(squeeze_repeats("porrrrn", 2), "porrn");
        assert_eq!(squeeze_repeats("porrrrn", 1), "porn");
        assert_eq!(squeeze_repeats("aaa", 3), "aaa");
        assert_eq!(squeeze_repeats("", 2), "");
        assert_eq!(squeeze_repeats("abc", 0), "");
    }

    #[test]
    fn squeeze_repeats_multibyte_safe() {
        assert_eq!(squeeze_repeats("héééllo", 1), "hélo");
    }

    #[test]
    fn truncate_chars_respects_boundaries() {
        assert_eq!(truncate_chars("héllo", 2), "hé");
        assert_eq!(truncate_chars("hi", 10), "hi");
        assert_eq!(truncate_chars("", 3), "");
    }

    #[test]
    fn char_len_counts_scalars() {
        assert_eq!(char_len("héllo"), 5);
        assert_eq!(char_len(""), 0);
    }

    #[test]
    fn pure_alpha_detection() {
        assert!(is_pure_alpha("democrats"));
        assert!(!is_pure_alpha("dem0crats"));
        assert!(!is_pure_alpha(""));
        assert!(!is_pure_alpha("mus-lim"));
    }

    #[test]
    fn symbol_substitution_detection() {
        assert!(has_symbol_substitution("suic1de"));
        assert!(has_symbol_substitution("republic@@ns"));
        assert!(has_symbol_substitution("dem0cr@ts"));
        assert!(!has_symbol_substitution("democrats"));
        assert!(
            !has_symbol_substitution("mus-lim"),
            "hyphen alone is a joiner"
        );
    }

    #[test]
    fn upper_ratio_examples() {
        assert!((upper_ratio("democRATs") - 3.0 / 9.0).abs() < 1e-9);
        assert_eq!(upper_ratio("1234"), 0.0);
        assert_eq!(upper_ratio("ALLCAPS"), 1.0);
    }

    #[test]
    fn inner_emphasis_examples() {
        assert!(has_inner_emphasis("democRATs"));
        assert!(has_inner_emphasis("RepubLIEcans"));
        assert!(!has_inner_emphasis("Democrats"), "title case");
        assert!(!has_inner_emphasis("DEMOCRATS"), "all caps");
        assert!(!has_inner_emphasis("democrats"), "all lower");
        assert!(!has_inner_emphasis("ab"), "too short");
    }
}
