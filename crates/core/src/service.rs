//! The public-API service facade (§III-F).
//!
//! "All functions of CrypText are equipped with secured public APIs,
//! allowing users to utilize Look Up, Normalization and Perturbation in
//! bulks. Accessing such APIs requires an authorization token… a Redis
//! cache is adapted to temporarily store and re-use recent queried
//! results."
//!
//! [`CryptextService`] reproduces that contract in-process: API-token
//! authentication, per-token fixed-window rate limiting over an injected
//! [`Clock`], a TTL+LRU result cache for Look Up, and bulk endpoints.
//! The service is generic over the [`TokenStore`] backend, so the same
//! facade fronts a single-instance database or a consistent-hash sharded
//! deployment.
//!
//! # Concurrency
//!
//! Every request crosses the authorization path, so it must never become
//! the serialization point for bulk traffic. The token table is an
//! `RwLock` taken in **read** mode on the hot path — rate-limit state
//! lives in per-token atomics, and the write lock is reserved for the
//! rare mutations (issuing and revoking tokens). Concurrent
//! [`CryptextService::look_up_bulk`] readers therefore proceed in
//! parallel instead of queueing behind one another (or behind a token
//! writer) on a single exclusive lock.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cryptext_cache::{Cache, CacheConfig, CacheStats};
use cryptext_common::hash::{fx_hash_str, FxHashMap};
use cryptext_common::par::try_par_map;
use cryptext_common::{Clock, Error, Result, Timestamp};
use parking_lot::RwLock;

use crate::database::TokenDatabase;
use crate::lookup::{look_up_cancellable, LookupHit, LookupParams, LookupScratch};
use crate::normalize::{NormalizationResult, NormalizeParams};
use crate::perturb::{PerturbParams, PerturbationOutcome};
use crate::store::TokenStore;
use crate::CrypText;

/// An issued API authorization token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ApiToken(String);

impl ApiToken {
    /// The opaque token string (what a client would put in a header).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Requests allowed per token per fixed one-minute window.
    pub rate_limit_per_minute: u32,
    /// Look Up cache capacity (entries).
    pub cache_capacity: usize,
    /// Look Up cache TTL in milliseconds.
    pub cache_ttl_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            rate_limit_per_minute: 600,
            cache_capacity: 10_000,
            cache_ttl_ms: 5 * 60 * 1000,
        }
    }
}

/// Per-token rate-limit state, mutated through one atomic so the hot
/// authorization path only ever takes the token table's **read** lock.
///
/// The window index (clock-aligned, `now / WINDOW_MS`) and the used
/// counter are packed into a single `AtomicU64` — `(window << 32) | used`
/// — so a window rollover swaps both halves in one compare-exchange.
/// Splitting them into two atomics would race: a reset of the counter
/// could erase slots claimed between the window CAS and the counter
/// store, making admission inexact.
struct RateState {
    window: AtomicU64,
}

impl RateState {
    fn new(window_index: u64) -> Self {
        RateState {
            window: AtomicU64::new(window_index << 32),
        }
    }
}

const WINDOW_MS: u64 = 60_000;

thread_local! {
    /// Scratch for [`CryptextService::look_up_prechecked`], which drives
    /// the cancellable walk directly rather than through the engine's
    /// shared thread-local (gateway executor threads own this one).
    static PRECHECKED_SCRATCH: RefCell<LookupScratch> = RefCell::new(LookupScratch::new());
}

/// The clock-aligned window index of a timestamp, truncated to the packed
/// 32-bit field (wraps after ~8,000 years of minutes).
fn window_index(now: Timestamp) -> u64 {
    (now / WINDOW_MS) & 0xFFFF_FFFF
}

/// Compute the successor of one packed `(window << 32) | used` word for a
/// request arriving in `now_window`, or `None` when the window budget is
/// exhausted.
///
/// Pure so the packing arithmetic is testable at the boundaries. Two
/// hardenings over the original inline form:
///
/// * the used counter **saturates** at `u32::MAX` instead of carrying into
///   the window half. With the admission check in place the carry is not
///   reachable (a full counter is rejected first, since `limit ≤
///   u32::MAX`), but the old code enforced that only through the distance
///   between the guard and the increment — a future guard change could
///   have turned the increment into a window flip (window + 1, used reset
///   to 0: a silently refilled budget). The field invariant now holds
///   locally;
/// * the budget comparison happens in `u64` rather than truncating `used`
///   to `u32`, so a corrupted word whose used half somehow exceeded 32
///   bits rate-limits instead of casting back into the admissible range.
#[inline]
fn advance_packed(cur: u64, now_window: u64, limit: u32) -> Option<u64> {
    let (win, used) = (cur >> 32, cur & 0xFFFF_FFFF);
    if win == now_window {
        if used >= limit as u64 {
            return None;
        }
        Some((win << 32) | (used + 1).min(0xFFFF_FFFF))
    } else {
        // Fresh window: this request claims its first slot.
        Some((now_window << 32) | 1)
    }
}

/// The authenticated, rate-limited, cached service facade, generic over
/// the storage backend.
pub struct CryptextService<S: TokenStore = TokenDatabase> {
    system: CrypText<S>,
    config: ServiceConfig,
    clock: Arc<dyn Clock>,
    tokens: RwLock<std::collections::HashMap<String, RateState>>,
    issued: std::sync::atomic::AtomicU64,
    lookup_cache: Cache<String, Vec<LookupHit>>,
}

impl<S: TokenStore> CryptextService<S> {
    /// Wrap an assembled [`CrypText`] system.
    pub fn new(system: CrypText<S>, config: ServiceConfig, clock: Arc<dyn Clock>) -> Self {
        let cache = Cache::new(
            CacheConfig {
                capacity: config.cache_capacity,
                default_ttl_ms: Some(config.cache_ttl_ms),
                shards: 8,
            },
            Arc::clone(&clock),
        );
        CryptextService {
            system,
            config,
            clock,
            tokens: RwLock::new(std::collections::HashMap::new()),
            issued: std::sync::atomic::AtomicU64::new(0),
            lookup_cache: cache,
        }
    }

    /// Issue a new API token for `owner` ("provided upon request" in the
    /// paper). The returned token is the only credential; store it.
    pub fn issue_token(&self, owner: &str) -> ApiToken {
        let n = self
            .issued
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let token = format!(
            "cx_{owner}_{:016x}",
            fx_hash_str(owner) ^ (n << 1) ^ 0xC0FFEE
        );
        self.tokens.write().insert(
            token.clone(),
            RateState::new(window_index(self.clock.now())),
        );
        ApiToken(token)
    }

    /// Revoke a token; subsequent calls with it fail with `Unauthorized`.
    pub fn revoke_token(&self, token: &ApiToken) {
        self.tokens.write().remove(&token.0);
    }

    /// Authorize one request: token must exist and have window budget.
    ///
    /// Lock-light hot path: the token table is read-locked (many
    /// authorizations proceed concurrently; only issue/revoke take the
    /// write lock) and the per-token window state advances through one
    /// packed-atomic CAS loop. Because the window index and the used
    /// counter travel in the same word, rollover and slot claims are
    /// mutually atomic and admission is exact: each clock-aligned
    /// one-minute window admits precisely `rate_limit_per_minute`
    /// requests no matter how many threads race.
    fn authorize(&self, token: &ApiToken) -> Result<()> {
        let now: Timestamp = self.clock.now();
        let now_window = window_index(now);
        let tokens = self.tokens.read();
        let state = tokens
            .get(&token.0)
            .ok_or_else(|| Error::Unauthorized(format!("unknown token {}", token.0)))?;
        let mut cur = state.window.load(Ordering::Acquire);
        loop {
            let Some(next) = advance_packed(cur, now_window, self.config.rate_limit_per_minute)
            else {
                // The budget refills when the clock-aligned window rolls
                // over; tell the caller exactly how long that is.
                return Err(Error::RateLimited {
                    retry_after_ms: WINDOW_MS - now % WINDOW_MS,
                });
            };
            match state
                .window
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Run the authentication + rate-limit gate for one request *without*
    /// executing anything — the admission hook for front-ends (the service
    /// gateway) that separate authorization from execution. A successful
    /// call charges one request against the token's window, exactly like
    /// the inline endpoints do.
    pub fn authorize_request(&self, token: &ApiToken) -> Result<()> {
        self.authorize(token)
    }

    /// The clock this service (and its cache) runs on, so a front-end
    /// layered above shares the same notion of time — deadlines measured
    /// by the gateway and windows measured by the rate limiter must not
    /// drift apart under a simulated clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    fn lookup_cache_key(token: &str, params: LookupParams) -> String {
        format!(
            "lookup\u{1}{token}\u{1}{}\u{1}{}\u{1}{}\u{1}{}",
            params.k, params.d, params.exclude_identity, params.observed_only
        )
    }

    /// Look Up endpoint (cached).
    pub fn look_up(
        &self,
        auth: &ApiToken,
        token: &str,
        params: LookupParams,
    ) -> Result<Vec<LookupHit>> {
        self.authorize(auth)?;
        let key = Self::lookup_cache_key(token, params);
        if let Some(hits) = self.lookup_cache.get(&key) {
            return Ok(hits);
        }
        let hits = self.system.look_up(token, params)?;
        self.lookup_cache.insert(key, hits.clone());
        Ok(hits)
    }

    /// Look Up *after* the caller already passed [`Self::authorize_request`]
    /// — the execution half of the gateway's admit-then-execute split, so
    /// one admitted request is charged exactly once. Identical to
    /// [`Self::look_up`] minus the auth gate, cache included, plus a
    /// cooperative cancellation probe: `cancel` is consulted per candidate
    /// during the store walk (through the early-exit visitor), so a
    /// request whose deadline expired stops burning shard time mid-walk
    /// and surfaces the probe's error.
    pub fn look_up_prechecked(
        &self,
        token: &str,
        params: LookupParams,
        cancel: &mut dyn FnMut() -> Option<Error>,
    ) -> Result<Vec<LookupHit>> {
        let key = Self::lookup_cache_key(token, params);
        if let Some(hits) = self.lookup_cache.get(&key) {
            return Ok(hits);
        }
        let hits = PRECHECKED_SCRATCH.with(|scratch| {
            look_up_cancellable(
                self.system.database(),
                token,
                params,
                &mut scratch.borrow_mut(),
                cancel,
            )
        })?;
        self.lookup_cache.insert(key, hits.clone());
        Ok(hits)
    }

    /// Normalization after external authorization (see
    /// [`Self::look_up_prechecked`]); the engine is not internally
    /// cancellable, so deadline checks happen at the gateway's layer
    /// boundaries instead.
    pub fn normalize_prechecked(
        &self,
        text: &str,
        params: NormalizeParams,
    ) -> Result<NormalizationResult> {
        self.system.normalize(text, params)
    }

    /// Perturbation after external authorization (see
    /// [`Self::look_up_prechecked`]).
    pub fn perturb_prechecked(
        &self,
        text: &str,
        params: PerturbParams,
    ) -> Result<PerturbationOutcome> {
        self.system.perturb(text, params)
    }

    /// Bulk Look Up: one authorization for the whole batch, fanned out
    /// across cores ([`cryptext_common::par`]) with results in input
    /// order — identical to what the sequential per-token endpoint would
    /// return, cache included.
    ///
    /// Duplicate tokens in one batch are coalesced before the fan-out, so
    /// a hot token repeated across the batch is computed once rather than
    /// racing several workers into the same cache miss.
    pub fn look_up_bulk(
        &self,
        auth: &ApiToken,
        tokens: &[&str],
        params: LookupParams,
    ) -> Result<Vec<Vec<LookupHit>>> {
        self.authorize(auth)?;
        let mut index_of: FxHashMap<&str, usize> = FxHashMap::default();
        let mut unique: Vec<&str> = Vec::with_capacity(tokens.len());
        for &t in tokens {
            index_of.entry(t).or_insert_with(|| {
                unique.push(t);
                unique.len() - 1
            });
        }
        let computed = try_par_map(&unique, |t| -> Result<Vec<LookupHit>> {
            let key = Self::lookup_cache_key(t, params);
            if let Some(hits) = self.lookup_cache.get(&key) {
                return Ok(hits);
            }
            let hits = self.system.look_up(t, params)?;
            self.lookup_cache.insert(key, hits.clone());
            Ok(hits)
        })?;
        // Scatter back to input order, moving (not cloning) each computed
        // result into its last output position.
        let mut remaining: Vec<usize> = vec![0; unique.len()];
        for t in tokens {
            remaining[index_of[t]] += 1;
        }
        let mut slots: Vec<Option<Vec<LookupHit>>> = computed.into_iter().map(Some).collect();
        Ok(tokens
            .iter()
            .map(|t| {
                let i = index_of[t];
                remaining[i] -= 1;
                if remaining[i] == 0 {
                    slots[i].take().expect("last use moves the value")
                } else {
                    slots[i].clone().expect("earlier uses clone")
                }
            })
            .collect())
    }

    /// Normalization endpoint.
    pub fn normalize(
        &self,
        auth: &ApiToken,
        text: &str,
        params: NormalizeParams,
    ) -> Result<NormalizationResult> {
        self.authorize(auth)?;
        self.system.normalize(text, params)
    }

    /// Bulk Normalization, fanned out across cores with results in input
    /// order.
    pub fn normalize_bulk(
        &self,
        auth: &ApiToken,
        texts: &[&str],
        params: NormalizeParams,
    ) -> Result<Vec<NormalizationResult>> {
        self.authorize(auth)?;
        try_par_map(texts, |t| self.system.normalize(t, params))
    }

    /// Perturbation endpoint.
    pub fn perturb(
        &self,
        auth: &ApiToken,
        text: &str,
        params: PerturbParams,
    ) -> Result<PerturbationOutcome> {
        self.authorize(auth)?;
        self.system.perturb(text, params)
    }

    /// Cache statistics (the Fig. 5 architecture experiment reports the
    /// hit rate).
    pub fn cache_stats(&self) -> CacheStats {
        self.lookup_cache.stats()
    }

    /// The wrapped system (read access).
    pub fn system(&self) -> &CrypText<S> {
        &self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TokenDatabase;
    use cryptext_common::SimClock;

    fn service(limit: u32) -> (CryptextService, SimClock) {
        let mut db = TokenDatabase::in_memory();
        for s in [
            "the demokRATs and democrats argue",
            "repubLIEcans and republicans fight",
            "the vaccine and the vacc1ne",
        ] {
            db.ingest_text(s);
        }
        let clock = SimClock::new(0);
        let svc = CryptextService::new(
            CrypText::new(db),
            ServiceConfig {
                rate_limit_per_minute: limit,
                ..ServiceConfig::default()
            },
            Arc::new(clock.clone()),
        );
        (svc, clock)
    }

    #[test]
    fn requires_valid_token() {
        let (svc, _) = service(10);
        let bogus = ApiToken("cx_fake_0000".into());
        let err = svc
            .look_up(&bogus, "democrats", LookupParams::paper_default())
            .unwrap_err();
        assert!(matches!(err, Error::Unauthorized(_)));
    }

    #[test]
    fn issued_token_works_and_revocation_stops_it() {
        let (svc, _) = service(10);
        let tok = svc.issue_token("alice");
        assert!(tok.as_str().starts_with("cx_alice_"));
        let hits = svc
            .look_up(&tok, "democrats", LookupParams::paper_default())
            .unwrap();
        assert!(hits.iter().any(|h| h.token == "demokRATs"));
        svc.revoke_token(&tok);
        assert!(matches!(
            svc.look_up(&tok, "democrats", LookupParams::paper_default()),
            Err(Error::Unauthorized(_))
        ));
    }

    #[test]
    fn distinct_tokens_for_distinct_owners_and_calls() {
        let (svc, _) = service(10);
        let a = svc.issue_token("alice");
        let b = svc.issue_token("alice");
        let c = svc.issue_token("bob");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rate_limit_enforced_and_window_resets() {
        let (svc, clock) = service(3);
        let tok = svc.issue_token("bob");
        for _ in 0..3 {
            svc.look_up(&tok, "vaccine", LookupParams::paper_default())
                .unwrap();
        }
        let err = svc
            .look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap_err();
        // The clock sits at 0, so the full window remains.
        assert!(matches!(
            err,
            Error::RateLimited {
                retry_after_ms: 60_000
            }
        ));
        assert!(err.is_retryable());
        // A minute later the window resets.
        clock.advance(60_000);
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
    }

    #[test]
    fn rate_limits_are_per_token() {
        let (svc, _) = service(1);
        let a = svc.issue_token("a");
        let b = svc.issue_token("b");
        svc.look_up(&a, "vaccine", LookupParams::paper_default())
            .unwrap();
        assert!(svc
            .look_up(&a, "vaccine", LookupParams::paper_default())
            .is_err());
        svc.look_up(&b, "vaccine", LookupParams::paper_default())
            .unwrap();
    }

    #[test]
    fn rate_limited_retry_after_tracks_window_position() {
        let (svc, clock) = service(1);
        let tok = svc.issue_token("mid");
        clock.advance(45_000); // 15s left in the current window
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
        let err = svc
            .look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap_err();
        assert_eq!(err.retry_after_ms(), Some(15_000));
        // And the hint is honest: advancing exactly that far refills.
        clock.advance(15_000);
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
    }

    #[test]
    fn authorize_request_charges_the_window_like_an_endpoint() {
        let (svc, _) = service(2);
        let tok = svc.issue_token("gate");
        svc.authorize_request(&tok).unwrap();
        svc.authorize_request(&tok).unwrap();
        assert!(matches!(
            svc.authorize_request(&tok),
            Err(Error::RateLimited { .. })
        ));
        let bogus = ApiToken("cx_fake_0000".into());
        assert!(matches!(
            svc.authorize_request(&bogus),
            Err(Error::Unauthorized(_))
        ));
    }

    #[test]
    fn prechecked_lookup_matches_the_authorized_endpoint() {
        let (svc, _) = service(100);
        let tok = svc.issue_token("pre");
        let direct = svc
            .look_up(&tok, "democrats", LookupParams::paper_default())
            .unwrap();
        let pre = svc
            .look_up_prechecked("democrats", LookupParams::paper_default(), &mut || None)
            .unwrap();
        assert_eq!(direct, pre, "same bytes, cache included");
        // Prechecked execution shares the endpoint's cache.
        assert!(svc.cache_stats().hits >= 1);
        // A firing cancel probe aborts an uncached walk with its error.
        let err = svc
            .look_up_prechecked("republicans", LookupParams::new(1, 2), &mut || {
                Some(Error::DeadlineExceeded { budget_ms: 3 })
            })
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { budget_ms: 3 }));
    }

    #[test]
    fn lookup_results_are_cached() {
        let (svc, _) = service(100);
        let tok = svc.issue_token("carol");
        let a = svc
            .look_up(&tok, "republicans", LookupParams::paper_default())
            .unwrap();
        let b = svc
            .look_up(&tok, "republicans", LookupParams::paper_default())
            .unwrap();
        assert_eq!(a, b);
        let stats = svc.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        // Different params → different cache entry.
        svc.look_up(&tok, "republicans", LookupParams::new(1, 1))
            .unwrap();
        assert_eq!(svc.cache_stats().misses, 2);
    }

    #[test]
    fn cache_entries_expire_by_ttl() {
        let (svc, clock) = service(100);
        let tok = svc.issue_token("dave");
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
        clock.advance(ServiceConfig::default().cache_ttl_ms + 1);
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
        assert_eq!(svc.cache_stats().expirations, 1);
    }

    #[test]
    fn bulk_endpoints_one_authorization() {
        let (svc, _) = service(1);
        let tok = svc.issue_token("erin");
        let out = svc
            .look_up_bulk(
                &tok,
                &["democrats", "republicans", "vaccine"],
                LookupParams::paper_default(),
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        // Budget of 1 is now spent; the next call rate-limits.
        assert!(svc
            .look_up(&tok, "vaccine", LookupParams::paper_default())
            .is_err());
    }

    #[test]
    fn parallel_bulk_lookup_equals_sequential() {
        // Force real worker threads even on single-core hosts, and use
        // enough distinct tokens (>= MIN_PARALLEL_ITEMS after duplicate
        // coalescing) that the scoped-thread branch actually runs. The
        // env var is process-global, but every other par_map caller is
        // agnostic to thread count, so the race is benign.
        std::env::set_var("CRYPTEXT_THREADS", "4");
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("pat");
        let distinct: Vec<String> = (0..24).map(|i| format!("token{i}word")).collect();
        let mut queries: Vec<&str> = vec![
            "democrats",
            "republicans",
            "vaccine",
            "vacc1ne",
            "demokRATs",
            "unknownzz",
        ];
        queries.extend(distinct.iter().map(|s| s.as_str()));

        let sequential: Vec<Vec<LookupHit>> = queries
            .iter()
            .map(|q| svc.look_up(&tok, q, LookupParams::paper_default()).unwrap())
            .collect();
        let bulk = svc
            .look_up_bulk(&tok, &queries, LookupParams::paper_default())
            .unwrap();
        std::env::remove_var("CRYPTEXT_THREADS");
        assert_eq!(
            bulk, sequential,
            "bulk results identical and in input order"
        );
    }

    #[test]
    fn bulk_lookup_coalesces_duplicate_tokens() {
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("dup");
        let queries: Vec<&str> = ["vaccine", "democrats", "republicans"]
            .into_iter()
            .cycle()
            .take(60)
            .collect();
        let out = svc
            .look_up_bulk(&tok, &queries, LookupParams::paper_default())
            .unwrap();
        assert_eq!(out.len(), 60);
        // Each distinct token probes (and misses) the cache exactly once;
        // duplicates are served from the coalesced computation.
        let stats = svc.cache_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.inserts, 3);
        // Results still line up with the input positions.
        assert_eq!(out[0], out[3]);
        assert_eq!(out[1], out[4]);
    }

    #[test]
    fn parallel_bulk_normalize_equals_sequential() {
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("norm");
        let texts: Vec<&str> = vec![
            "the demokRATs won",
            "ok clean text",
            "the vacc1ne mandate",
            "nothing to fix here",
        ]
        .into_iter()
        .cycle()
        .take(32)
        .collect();
        let sequential: Vec<NormalizationResult> = texts
            .iter()
            .map(|t| svc.normalize(&tok, t, NormalizeParams::default()).unwrap())
            .collect();
        let bulk = svc
            .normalize_bulk(&tok, &texts, NormalizeParams::default())
            .unwrap();
        assert_eq!(bulk, sequential);
    }

    #[test]
    fn bulk_lookup_invalid_level_errors_like_sequential() {
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("err");
        let err = svc
            .look_up_bulk(&tok, &["a", "b"], LookupParams::new(9, 1))
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
    }

    #[test]
    fn packed_counter_saturates_at_the_u32_boundary() {
        // Regression: with rate_limit_per_minute == u32::MAX, the packed
        // word's used half can legitimately reach u32::MAX - 1; admitting
        // the next request must not carry into the window field (which
        // would advance the window and silently refill the budget).
        let win = 7u64;
        let limit = u32::MAX;

        // One slot left: admission fills the counter exactly.
        let cur = (win << 32) | (u32::MAX as u64 - 1);
        let next = advance_packed(cur, win, limit).expect("one slot left");
        assert_eq!(next >> 32, win, "window half untouched");
        assert_eq!(next & 0xFFFF_FFFF, u32::MAX as u64, "counter full");

        // Full counter: exhausted, not carried.
        assert_eq!(advance_packed(next, win, limit), None);

        // Even a (theoretically unreachable) full counter passed with a
        // smaller limit saturates rather than overflowing the field.
        let full = (win << 32) | 0xFFFF_FFFF;
        assert_eq!(advance_packed(full, win, limit), None);

        // A corrupted word whose used half exceeds the limit in u64 space
        // rate-limits instead of truncating back into admissibility.
        assert_eq!(advance_packed(full, win, 100), None);

        // A new window resets regardless of the stale counter.
        let fresh = advance_packed(full, win + 1, limit).expect("fresh window");
        assert_eq!(fresh >> 32, win + 1);
        assert_eq!(fresh & 0xFFFF_FFFF, 1);
    }

    #[test]
    fn rate_limit_u32_max_never_corrupts_the_window() {
        // End-to-end at the boundary: preload the packed counter to one
        // below the cap, then drive real requests through authorize.
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("boundary");
        {
            let tokens = svc.tokens.read();
            let state = tokens.get(tok.as_str()).unwrap();
            let cur = state.window.load(Ordering::Acquire);
            let win = cur >> 32;
            state
                .window
                .store((win << 32) | (u32::MAX as u64 - 1), Ordering::Release);
        }
        // The last slot admits...
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
        // ...and the very next request rate-limits without the window half
        // having been disturbed by a carry.
        let err = svc
            .look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap_err();
        assert!(matches!(err, Error::RateLimited { .. }));
        let tokens = svc.tokens.read();
        let cur = tokens
            .get(tok.as_str())
            .unwrap()
            .window
            .load(Ordering::Acquire);
        assert_eq!(cur & 0xFFFF_FFFF, u32::MAX as u64, "saturated, not wrapped");
    }

    #[test]
    fn concurrent_authorization_admits_exactly_the_budget() {
        // The read-locked atomic authorize path must admit exactly
        // `rate_limit_per_minute` requests per window no matter how many
        // threads race — every fetch_add claims a distinct slot.
        let limit = 64u32;
        let (svc, _) = service(limit);
        let tok = svc.issue_token("racer");
        let admitted = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..32 {
                        if svc
                            .look_up(&tok, "vaccine", LookupParams::paper_default())
                            .is_ok()
                        {
                            admitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(admitted.load(std::sync::atomic::Ordering::Relaxed), limit);
    }

    #[test]
    fn sharded_backend_serves_identical_results() {
        use crate::shard::ShardedTokenDatabase;
        let mut db = TokenDatabase::with_lexicon();
        for s in [
            "the demokRATs and democrats argue",
            "repubLIEcans and republicans fight",
            "the vaccine and the vacc1ne",
        ] {
            db.ingest_text(s);
        }
        let clock = SimClock::new(0);
        let sharded = ShardedTokenDatabase::from_database(&db, 4);
        let svc_single = CryptextService::new(
            CrypText::new(db),
            ServiceConfig::default(),
            Arc::new(clock.clone()),
        );
        let svc_sharded = CryptextService::new(
            CrypText::with_store(sharded),
            ServiceConfig::default(),
            Arc::new(clock.clone()),
        );
        let a = svc_single.issue_token("x");
        let b = svc_sharded.issue_token("x");
        let queries = ["democrats", "republicans", "vacc1ne", "unknownzz"];
        assert_eq!(
            svc_single
                .look_up_bulk(&a, &queries, LookupParams::paper_default())
                .unwrap(),
            svc_sharded
                .look_up_bulk(&b, &queries, LookupParams::paper_default())
                .unwrap(),
            "bulk Look Up identical across backends"
        );
        assert_eq!(
            svc_single
                .normalize(&a, "the demokRATs won", NormalizeParams::default())
                .unwrap(),
            svc_sharded
                .normalize(&b, "the demokRATs won", NormalizeParams::default())
                .unwrap()
        );
    }

    #[test]
    fn normalize_and_perturb_endpoints() {
        let (svc, _) = service(100);
        let tok = svc.issue_token("frank");
        let norm = svc
            .normalize(&tok, "the demokRATs won", NormalizeParams::default())
            .unwrap();
        assert_eq!(norm.text, "the democrats won");
        let out = svc
            .perturb(&tok, "the democrats won", PerturbParams::with_ratio(1.0))
            .unwrap();
        assert!(out.replacements.len() + out.misses > 0);

        let bulk = svc
            .normalize_bulk(
                &tok,
                &["the demokRATs", "ok text"],
                NormalizeParams::default(),
            )
            .unwrap();
        assert_eq!(bulk.len(), 2);
    }
}
