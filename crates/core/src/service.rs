//! The public-API service facade (§III-F).
//!
//! "All functions of CrypText are equipped with secured public APIs,
//! allowing users to utilize Look Up, Normalization and Perturbation in
//! bulks. Accessing such APIs requires an authorization token… a Redis
//! cache is adapted to temporarily store and re-use recent queried
//! results."
//!
//! [`CryptextService`] reproduces that contract in-process: API-token
//! authentication, per-token fixed-window rate limiting over an injected
//! [`Clock`], a TTL+LRU result cache for Look Up, and bulk endpoints.
//! The service is generic over the [`TokenStore`] backend, so the same
//! facade fronts a single-instance database or a consistent-hash sharded
//! deployment.
//!
//! # Concurrency
//!
//! Every request crosses the authorization path, so it must never become
//! the serialization point for bulk traffic. The token table is an
//! `RwLock` taken in **read** mode on the hot path — rate-limit state
//! lives in per-token atomics, and the write lock is reserved for the
//! rare mutations (issuing and revoking tokens). Concurrent
//! [`CryptextService::look_up_bulk`] readers therefore proceed in
//! parallel instead of queueing behind one another (or behind a token
//! writer) on a single exclusive lock.

use std::cell::RefCell;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cryptext_cache::{Cache, CacheConfig, CacheStats, CacheStore, SharedCacheStore, StoreStats};
use cryptext_common::hash::{fx_hash_str, FxHashMap};
use cryptext_common::metrics::{Counter, Gauge, MetricsRegistry};
use cryptext_common::par::try_par_map;
use cryptext_common::{Clock, Error, FxHasher, Result, Timestamp};
use parking_lot::RwLock;

use crate::database::TokenDatabase;
use crate::lookup::{look_up_cancellable, LookupHit, LookupParams, LookupScratch};
use crate::metrics::StageMetrics;
use crate::normalize::{
    CandidateCache, CandidatePairs, NormalizationResult, NormalizeParams, NormalizeScratch,
    Normalizer,
};
use crate::perturb::{PerturbParams, PerturbationOutcome};
use crate::store::TokenStore;
use crate::CrypText;

/// Environment variable selecting the tier-2 cache backend at service
/// construction. The only recognized value is `shared`, which attaches the
/// process-global [`SharedCacheStore`] (the in-process Redis stand-in a
/// fleet of replica services shares); anything else leaves the service
/// tier-1-only. [`CryptextService::attach_tier2`] overrides either way.
pub const TIER2_ENV_VAR: &str = "CRYPTEXT_CACHE_TIER2";

/// An issued API authorization token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ApiToken(String);

impl ApiToken {
    /// The opaque token string (what a client would put in a header).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Rebuild a token from its raw string — the inverse of
    /// [`Self::as_str`], for wire layers that receive the credential in a
    /// header. Construction does **not** validate: an unknown or revoked
    /// string still authorizes to `Unauthorized` exactly like a revoked
    /// issued token.
    pub fn from_raw(raw: impl Into<String>) -> Self {
        ApiToken(raw.into())
    }
}

/// Where a cached endpoint's result came from, for response cache
/// metadata (the HTTP layer derives `Cache-Control`-style hints from it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Tier-1 whole-result hit: the Look Up result cache or the
    /// whole-text Normalization result cache answered without touching
    /// retrieval or scoring.
    Tier1Hit,
    /// Computed this request (lower tiers — candidate memo, tier-2 —
    /// may still have contributed pieces).
    Cold,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Requests allowed per token per fixed one-minute window.
    pub rate_limit_per_minute: u32,
    /// Look Up cache capacity (entries).
    pub cache_capacity: usize,
    /// Look Up cache TTL in milliseconds.
    pub cache_ttl_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            rate_limit_per_minute: 600,
            cache_capacity: 10_000,
            cache_ttl_ms: 5 * 60 * 1000,
        }
    }
}

/// Per-token rate-limit state, mutated through one atomic so the hot
/// authorization path only ever takes the token table's **read** lock.
///
/// The window index (clock-aligned, `now / WINDOW_MS`) and the used
/// counter are packed into a single `AtomicU64` — `(window << 32) | used`
/// — so a window rollover swaps both halves in one compare-exchange.
/// Splitting them into two atomics would race: a reset of the counter
/// could erase slots claimed between the window CAS and the counter
/// store, making admission inexact.
struct RateState {
    window: AtomicU64,
}

impl RateState {
    fn new(window_index: u64) -> Self {
        RateState {
            window: AtomicU64::new(window_index << 32),
        }
    }
}

const WINDOW_MS: u64 = 60_000;

thread_local! {
    /// Scratch for [`CryptextService::look_up_prechecked`], which drives
    /// the cancellable walk directly rather than through the engine's
    /// shared thread-local (gateway executor threads own this one).
    static PRECHECKED_SCRATCH: RefCell<LookupScratch> = RefCell::new(LookupScratch::new());

    /// Scratch for the service's cached Normalization endpoints (one per
    /// thread — bulk fan-out workers each own their buffers and LM memo).
    static NORMALIZE_SCRATCH: RefCell<NormalizeScratch> = RefCell::new(NormalizeScratch::new());
}

/// A compact 128-bit hashed cache key: two independently-salted fx digests
/// of the request material. Replaces the old per-request `String` key —
/// no allocation, fixed size, and the collision probability of two live
/// requests aliasing 128 bits of digest is negligible next to hardware
/// fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    fn as_u128(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

/// Hash the same material twice under different salts into one 128-bit key.
fn two_point_hash(write: impl Fn(&mut FxHasher)) -> CacheKey {
    let mut a = FxHasher::default();
    a.write_u64(0x9E37_79B9_7F4A_7C15);
    write(&mut a);
    let mut b = FxHasher::default();
    b.write_u64(0xC2B2_AE3D_27D4_EB4F);
    write(&mut b);
    CacheKey {
        hi: a.finish(),
        lo: b.finish(),
    }
}

/// Serialize candidate pairs for the byte-valued tier-2 store:
/// `count:u64` then per pair `word_len:u32 ‖ word bytes ‖ distance:u64`,
/// all little-endian.
fn encode_pairs(pairs: &[(String, usize)]) -> Vec<u8> {
    let body: usize = pairs.iter().map(|(w, _)| w.len() + 12).sum();
    let mut out = Vec::with_capacity(8 + body);
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for (w, d) in pairs {
        out.extend_from_slice(&(w.len() as u32).to_le_bytes());
        out.extend_from_slice(w.as_bytes());
        out.extend_from_slice(&(*d as u64).to_le_bytes());
    }
    out
}

/// Decode [`encode_pairs`] bytes; `None` on any malformation (a corrupt
/// tier-2 value degrades to a miss, never an error or a panic).
fn decode_pairs(bytes: &[u8]) -> Option<Vec<(String, usize)>> {
    let (head, mut rest) = bytes.split_at_checked(8)?;
    let count = u64::from_le_bytes(head.try_into().ok()?);
    let mut pairs = Vec::new();
    for _ in 0..count {
        let (len_bytes, tail) = rest.split_at_checked(4)?;
        let len = u32::from_le_bytes(len_bytes.try_into().ok()?) as usize;
        let (word_bytes, tail) = tail.split_at_checked(len)?;
        let word = std::str::from_utf8(word_bytes).ok()?.to_string();
        let (d_bytes, tail) = tail.split_at_checked(8)?;
        let distance = usize::try_from(u64::from_le_bytes(d_bytes.try_into().ok()?)).ok()?;
        pairs.push((word, distance));
        rest = tail;
    }
    rest.is_empty().then_some(pairs)
}

/// The clock-aligned window index of a timestamp, truncated to the packed
/// 32-bit field (wraps after ~8,000 years of minutes).
fn window_index(now: Timestamp) -> u64 {
    (now / WINDOW_MS) & 0xFFFF_FFFF
}

/// Compute the successor of one packed `(window << 32) | used` word for a
/// request arriving in `now_window`, or `None` when the window budget is
/// exhausted.
///
/// Pure so the packing arithmetic is testable at the boundaries. Two
/// hardenings over the original inline form:
///
/// * the used counter **saturates** at `u32::MAX` instead of carrying into
///   the window half. With the admission check in place the carry is not
///   reachable (a full counter is rejected first, since `limit ≤
///   u32::MAX`), but the old code enforced that only through the distance
///   between the guard and the increment — a future guard change could
///   have turned the increment into a window flip (window + 1, used reset
///   to 0: a silently refilled budget). The field invariant now holds
///   locally;
/// * the budget comparison happens in `u64` rather than truncating `used`
///   to `u32`, so a corrupted word whose used half somehow exceeded 32
///   bits rate-limits instead of casting back into the admissible range.
#[inline]
fn advance_packed(cur: u64, now_window: u64, limit: u32) -> Option<u64> {
    let (win, used) = (cur >> 32, cur & 0xFFFF_FFFF);
    if win == now_window {
        if used >= limit as u64 {
            return None;
        }
        Some((win << 32) | (used + 1).min(0xFFFF_FFFF))
    } else {
        // Fresh window: this request claims its first slot.
        Some((now_window << 32) | 1)
    }
}

/// The authenticated, rate-limited, cached service facade, generic over
/// the storage backend.
pub struct CryptextService<S: TokenStore = TokenDatabase> {
    system: CrypText<S>,
    config: ServiceConfig,
    clock: Arc<dyn Clock>,
    tokens: RwLock<std::collections::HashMap<String, RateState>>,
    issued: std::sync::atomic::AtomicU64,
    lookup_cache: Cache<CacheKey, Vec<LookupHit>>,
    /// Tier-1 cross-text Normalization candidate memo (negative entries
    /// are empty pair lists — the out-of-dictionary p99 path).
    norm_cache: Cache<CacheKey, CandidatePairs>,
    /// Tier-1 whole-text Normalization *result* cache: an exact repeat of
    /// a text (raw bytes — the result echoes the input's casing) skips
    /// retrieval *and* scoring. Sits in front of the candidate memo; the
    /// memo still serves cross-text token repeats when this misses.
    norm_result_cache: Cache<CacheKey, NormalizationResult>,
    /// Optional tier-2 byte store the normalize cache reads through to and
    /// writes behind; possibly shared with replica services.
    tier2: Option<Arc<dyn CacheStore>>,
    /// Content identity of (store, LM): mixed with the generation into the
    /// tier-2 namespace, so replicas over the same data share entries and
    /// different deployments never alias.
    tier2_identity: u64,
    /// Data-version counter; part of every cache key. Bumped on ingest
    /// (via the gateway), which invalidates both tiers.
    generation: AtomicU64,
    negative_hits: Counter,
    invalidation_bumps: Counter,
    invalidated_entries: Counter,
    /// The instance's metrics registry: every cache tier, store backend,
    /// engine stage, and service counter above registers its live cells
    /// here. Front-ends (gateway, HTTP) adopt it via [`Self::metrics`].
    metrics: Arc<MetricsRegistry>,
    /// Per-stage engine instruments, attached to the per-thread scratches
    /// around every engine call.
    stages: Arc<StageMetrics>,
    /// Registry view of [`Self::generation`].
    generation_gauge: Gauge,
    /// Guards against double-registering tier-2 counters when
    /// [`Self::attach_tier2`] replaces an env-attached store (the registry
    /// keeps the first store's registration; see `attach_tier2`).
    tier2_metrics_registered: bool,
}

impl<S: TokenStore> CryptextService<S> {
    /// Wrap an assembled [`CrypText`] system.
    ///
    /// Reads [`TIER2_ENV_VAR`]: `CRYPTEXT_CACHE_TIER2=shared` attaches the
    /// process-global [`SharedCacheStore`] as the second cache tier.
    pub fn new(system: CrypText<S>, config: ServiceConfig, clock: Arc<dyn Clock>) -> Self {
        let tier_config = || CacheConfig {
            capacity: config.cache_capacity,
            default_ttl_ms: Some(config.cache_ttl_ms),
            shards: 8,
        };
        let lookup_cache = Cache::new(tier_config(), Arc::clone(&clock));
        let norm_cache = Cache::new(tier_config(), Arc::clone(&clock));
        let norm_result_cache = Cache::new(tier_config(), Arc::clone(&clock));
        let tier2: Option<Arc<dyn CacheStore>> = match std::env::var(TIER2_ENV_VAR) {
            Ok(v) if v == "shared" => Some(SharedCacheStore::global()),
            _ => None,
        };
        let stats = system.database().stats();
        let mut h = FxHasher::default();
        h.write_u64(system.language_model().fingerprint());
        h.write_usize(stats.unique_tokens);
        h.write_u64(stats.total_occurrences);
        for sounds in stats.unique_sounds {
            h.write_usize(sounds);
        }
        h.write_usize(stats.english_tokens);
        let tier2_identity = h.finish();

        // One registry per service instance: every layer below registers
        // its live cells, so each snapshot/render is a consistent view of
        // this instance (tests and replica fleets never cross-pollute).
        let metrics = Arc::new(MetricsRegistry::new());
        lookup_cache.register_metrics(&metrics, "lookup");
        norm_cache.register_metrics(&metrics, "normalize");
        norm_result_cache.register_metrics(&metrics, "normalize_results");
        let mut tier2_metrics_registered = false;
        if let Some(t2) = &tier2 {
            t2.register_metrics(&metrics, "tier2");
            tier2_metrics_registered = true;
        }
        let negative_hits = metrics.counter(
            "cryptext_cache_negative_hits_total",
            "Normalize hits that served a cached negative (no-candidate) entry",
        );
        let invalidation_bumps = metrics.counter(
            "cryptext_cache_invalidation_bumps_total",
            "Generation bumps (whole-hierarchy cache invalidations)",
        );
        let invalidated_entries = metrics.counter(
            "cryptext_cache_invalidated_entries_total",
            "Entries flushed by generation bumps, across tiers",
        );
        let generation_gauge = metrics.gauge(
            "cryptext_service_generation",
            "Current data-version generation (part of every cache key)",
        );
        let stages = Arc::new(StageMetrics::new());
        stages.register(&metrics);
        system.database().register_metrics(&metrics);

        CryptextService {
            system,
            config,
            clock,
            tokens: RwLock::new(std::collections::HashMap::new()),
            issued: std::sync::atomic::AtomicU64::new(0),
            lookup_cache,
            norm_cache,
            norm_result_cache,
            tier2,
            tier2_identity,
            generation: AtomicU64::new(0),
            negative_hits,
            invalidation_bumps,
            invalidated_entries,
            metrics,
            stages,
            generation_gauge,
            tier2_metrics_registered,
        }
    }

    /// Attach (or replace) the tier-2 store — e.g. point a fleet of
    /// replica services at one [`SharedCacheStore`]. Call before wrapping
    /// the service in an `Arc`.
    pub fn attach_tier2(&mut self, store: Arc<dyn CacheStore>) {
        // First attached store wins the registry slots: replacing a store
        // would need de-registration to avoid duplicate-name panics, and
        // replacement only happens in test topology setup.
        if !self.tier2_metrics_registered {
            store.register_metrics(&self.metrics, "tier2");
            self.tier2_metrics_registered = true;
        }
        self.tier2 = Some(store);
    }

    /// Is a tier-2 store attached?
    pub fn tier2_attached(&self) -> bool {
        self.tier2.is_some()
    }

    /// The current data-version; part of every cache key.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Bump the data-version after an out-of-band ingest: every tier-1
    /// entry (keyed on the old generation) is dropped and the old tier-2
    /// namespace is flushed. Returns the new generation.
    pub fn bump_generation(&self) -> u64 {
        let old = self.generation.fetch_add(1, Ordering::AcqRel);
        self.invalidation_bumps.inc();
        self.generation_gauge.set((old + 1) as i64);
        // Every tier-1 entry carries a generation ≤ old in its key and is
        // now unreachable; drop rather than letting stale entries LRU out.
        let mut flushed =
            self.lookup_cache.len() + self.norm_cache.len() + self.norm_result_cache.len();
        self.lookup_cache.clear();
        self.norm_cache.clear();
        self.norm_result_cache.clear();
        if let Some(t2) = &self.tier2 {
            flushed += t2.invalidate_namespace(self.tier2_namespace(old));
        }
        self.invalidated_entries.add(flushed as u64);
        old + 1
    }

    /// The tier-2 namespace for one generation of this service's data.
    fn tier2_namespace(&self, generation: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(self.tier2_identity);
        h.write_u64(generation);
        h.finish()
    }

    /// Issue a new API token for `owner` ("provided upon request" in the
    /// paper). The returned token is the only credential; store it.
    pub fn issue_token(&self, owner: &str) -> ApiToken {
        let n = self
            .issued
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let token = format!(
            "cx_{owner}_{:016x}",
            fx_hash_str(owner) ^ (n << 1) ^ 0xC0FFEE
        );
        self.tokens.write().insert(
            token.clone(),
            RateState::new(window_index(self.clock.now())),
        );
        ApiToken(token)
    }

    /// Revoke a token; subsequent calls with it fail with `Unauthorized`.
    pub fn revoke_token(&self, token: &ApiToken) {
        self.tokens.write().remove(&token.0);
    }

    /// Authorize one request: token must exist and have window budget.
    ///
    /// Lock-light hot path: the token table is read-locked (many
    /// authorizations proceed concurrently; only issue/revoke take the
    /// write lock) and the per-token window state advances through one
    /// packed-atomic CAS loop. Because the window index and the used
    /// counter travel in the same word, rollover and slot claims are
    /// mutually atomic and admission is exact: each clock-aligned
    /// one-minute window admits precisely `rate_limit_per_minute`
    /// requests no matter how many threads race.
    fn authorize(&self, token: &ApiToken) -> Result<()> {
        let now: Timestamp = self.clock.now();
        let now_window = window_index(now);
        let tokens = self.tokens.read();
        let state = tokens
            .get(&token.0)
            .ok_or_else(|| Error::Unauthorized(format!("unknown token {}", token.0)))?;
        let mut cur = state.window.load(Ordering::Acquire);
        loop {
            let Some(next) = advance_packed(cur, now_window, self.config.rate_limit_per_minute)
            else {
                // The budget refills when the clock-aligned window rolls
                // over; tell the caller exactly how long that is.
                return Err(Error::RateLimited {
                    retry_after_ms: WINDOW_MS - now % WINDOW_MS,
                });
            };
            match state
                .window
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Run the authentication + rate-limit gate for one request *without*
    /// executing anything — the admission hook for front-ends (the service
    /// gateway) that separate authorization from execution. A successful
    /// call charges one request against the token's window, exactly like
    /// the inline endpoints do.
    pub fn authorize_request(&self, token: &ApiToken) -> Result<()> {
        self.authorize(token)
    }

    /// The clock this service (and its cache) runs on, so a front-end
    /// layered above shares the same notion of time — deadlines measured
    /// by the gateway and windows measured by the rate limiter must not
    /// drift apart under a simulated clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// The Look Up cache key: a hashed digest of the raw token, retrieval
    /// params, and the current generation — replacing the old allocating
    /// `format!` String key.
    fn lookup_cache_key(&self, token: &str, params: LookupParams) -> CacheKey {
        let generation = self.generation();
        two_point_hash(|h| {
            h.write_u8(b'L');
            h.write_u64(generation);
            h.write_usize(params.k);
            h.write_usize(params.d);
            h.write_u8(params.exclude_identity as u8);
            h.write_u8(params.observed_only as u8);
            h.write(token.as_bytes());
        })
    }

    /// The Normalization candidate cache key: keyed on the token's ASCII
    /// case-fold (retrieval is provably fold-invariant for ASCII tokens:
    /// Soundex codes, folds, and distances all case-fold first), the
    /// retrieval half of the params (`k`, `d` — scoring weights are
    /// recomputed per context, so they stay out of the key), and the
    /// generation. Non-ASCII tokens key on their raw bytes: the phonetic
    /// fold and `str::to_lowercase` can diverge outside ASCII, so folding
    /// the key there could alias tokens with different retrievals.
    fn normalize_cache_key(&self, token: &str, k: usize, d: usize) -> CacheKey {
        let generation = self.generation();
        two_point_hash(|h| {
            h.write_u8(b'N');
            h.write_u64(generation);
            h.write_usize(k);
            h.write_usize(d);
            if token.is_ascii() {
                for byte in token.bytes() {
                    h.write_u8(byte.to_ascii_lowercase());
                }
            } else {
                h.write(token.as_bytes());
            }
        })
    }

    /// The whole-text Normalization result key: the full params (the
    /// scoring weights shape the cached output, so unlike the candidate
    /// key they all participate) plus the *raw* text bytes. No case-fold
    /// here — the result echoes the input's casing, so differently-cased
    /// texts must not alias.
    fn normalize_result_key(&self, text: &str, params: NormalizeParams) -> CacheKey {
        let generation = self.generation();
        two_point_hash(|h| {
            h.write_u8(b'T');
            h.write_u64(generation);
            h.write_usize(params.k);
            h.write_usize(params.d);
            h.write_u64(params.edit_penalty.to_bits());
            h.write_u64(params.prior_weight.to_bits());
            h.write_usize(params.max_candidates);
            h.write(text.as_bytes());
        })
    }

    /// Look Up endpoint (cached).
    pub fn look_up(
        &self,
        auth: &ApiToken,
        token: &str,
        params: LookupParams,
    ) -> Result<Vec<LookupHit>> {
        self.authorize(auth)?;
        let key = self.lookup_cache_key(token, params);
        if let Some(hits) = self.lookup_cache.get(&key) {
            return Ok(hits);
        }
        let hits = self.system.look_up(token, params)?;
        self.lookup_cache.insert(key, hits.clone());
        Ok(hits)
    }

    /// Look Up *after* the caller already passed [`Self::authorize_request`]
    /// — the execution half of the gateway's admit-then-execute split, so
    /// one admitted request is charged exactly once. Identical to
    /// [`Self::look_up`] minus the auth gate, cache included, plus a
    /// cooperative cancellation probe: `cancel` is consulted per candidate
    /// during the store walk (through the early-exit visitor), so a
    /// request whose deadline expired stops burning shard time mid-walk
    /// and surfaces the probe's error.
    pub fn look_up_prechecked(
        &self,
        token: &str,
        params: LookupParams,
        cancel: &mut dyn FnMut() -> Option<Error>,
    ) -> Result<Vec<LookupHit>> {
        self.look_up_prechecked_traced(token, params, cancel)
            .map(|(hits, _)| hits)
    }

    /// [`Self::look_up_prechecked`] plus provenance: whether tier-1
    /// answered ([`Served::Tier1Hit`]) or the store walk ran
    /// ([`Served::Cold`]). The gateway's response envelope carries this
    /// through to wire-level cache headers.
    pub fn look_up_prechecked_traced(
        &self,
        token: &str,
        params: LookupParams,
        cancel: &mut dyn FnMut() -> Option<Error>,
    ) -> Result<(Vec<LookupHit>, Served)> {
        let key = self.lookup_cache_key(token, params);
        if let Some(hits) = self.lookup_cache.get(&key) {
            return Ok((hits, Served::Tier1Hit));
        }
        let hits = PRECHECKED_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            // Attach the shared stage instruments for the duration of the
            // engine call; detach before surfacing any error so a scratch
            // reused by a metrics-free caller stays on the no-op branch.
            scratch.attach_stages(Some(Arc::clone(&self.stages)));
            let res = look_up_cancellable(self.system.database(), token, params, scratch, cancel);
            scratch.attach_stages(None);
            res
        })?;
        self.lookup_cache.insert(key, hits.clone());
        Ok((hits, Served::Cold))
    }

    /// Normalization after external authorization (see
    /// [`Self::look_up_prechecked`]); the engine is not internally
    /// cancellable, so deadline checks happen at the gateway's layer
    /// boundaries instead.
    pub fn normalize_prechecked(
        &self,
        text: &str,
        params: NormalizeParams,
    ) -> Result<NormalizationResult> {
        self.normalize_through_cache(text, params).map(|(r, _)| r)
    }

    /// [`Self::normalize_prechecked`] plus provenance: whether the
    /// whole-text result cache answered ([`Served::Tier1Hit`]) or
    /// retrieval + scoring ran ([`Served::Cold`] — per-token candidate
    /// memo hits still count as cold, the *result* was assembled fresh).
    pub fn normalize_prechecked_traced(
        &self,
        text: &str,
        params: NormalizeParams,
    ) -> Result<(NormalizationResult, Served)> {
        self.normalize_through_cache(text, params)
    }

    /// The cached Normalization core every endpoint funnels through. Two
    /// layers: the whole-text result cache answers exact repeats without
    /// touching retrieval or scoring at all, and below it per-token
    /// candidate retrieval consults the tier hierarchy (tier-1 memo, then
    /// the tier-2 byte store when attached) with misses populating both.
    /// Byte-identical to the uncached engine — the result cache stores the
    /// finished output verbatim, and the candidate memo holds only the
    /// context-independent `(word, distance)` retrieval pairs with scoring
    /// run fresh per context.
    fn normalize_through_cache(
        &self,
        text: &str,
        params: NormalizeParams,
    ) -> Result<(NormalizationResult, Served)> {
        let result_key = self.normalize_result_key(text, params);
        if let Some(result) = self.norm_result_cache.get(&result_key) {
            return Ok((result, Served::Tier1Hit));
        }
        let cache = ServiceCandidateCache { svc: self };
        let result = NORMALIZE_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.attach_stages(Some(Arc::clone(&self.stages)));
            let res = Normalizer::new(self.system.language_model()).normalize_cached(
                self.system.database(),
                text,
                params,
                scratch,
                &cache,
            );
            scratch.attach_stages(None);
            res
        })?;
        self.norm_result_cache.insert(result_key, result.clone());
        Ok((result, Served::Cold))
    }

    /// Perturbation after external authorization (see
    /// [`Self::look_up_prechecked`]).
    pub fn perturb_prechecked(
        &self,
        text: &str,
        params: PerturbParams,
    ) -> Result<PerturbationOutcome> {
        self.system.perturb(text, params)
    }

    /// Bulk Look Up: one authorization for the whole batch, fanned out
    /// across cores ([`cryptext_common::par`]) with results in input
    /// order — identical to what the sequential per-token endpoint would
    /// return, cache included.
    ///
    /// Duplicate tokens in one batch are coalesced before the fan-out, so
    /// a hot token repeated across the batch is computed once rather than
    /// racing several workers into the same cache miss.
    pub fn look_up_bulk(
        &self,
        auth: &ApiToken,
        tokens: &[&str],
        params: LookupParams,
    ) -> Result<Vec<Vec<LookupHit>>> {
        self.authorize(auth)?;
        let mut index_of: FxHashMap<&str, usize> = FxHashMap::default();
        let mut unique: Vec<&str> = Vec::with_capacity(tokens.len());
        for &t in tokens {
            index_of.entry(t).or_insert_with(|| {
                unique.push(t);
                unique.len() - 1
            });
        }
        let computed = try_par_map(&unique, |t| -> Result<Vec<LookupHit>> {
            let key = self.lookup_cache_key(t, params);
            if let Some(hits) = self.lookup_cache.get(&key) {
                return Ok(hits);
            }
            let hits = self.system.look_up(t, params)?;
            self.lookup_cache.insert(key, hits.clone());
            Ok(hits)
        })?;
        // Scatter back to input order, moving (not cloning) each computed
        // result into its last output position.
        let mut remaining: Vec<usize> = vec![0; unique.len()];
        for t in tokens {
            remaining[index_of[t]] += 1;
        }
        let mut slots: Vec<Option<Vec<LookupHit>>> = computed.into_iter().map(Some).collect();
        Ok(tokens
            .iter()
            .map(|t| {
                let i = index_of[t];
                remaining[i] -= 1;
                if remaining[i] == 0 {
                    slots[i].take().expect("last use moves the value")
                } else {
                    slots[i].clone().expect("earlier uses clone")
                }
            })
            .collect())
    }

    /// Normalization endpoint (cached: cross-text candidate memo with
    /// negative caching of out-of-dictionary misses).
    pub fn normalize(
        &self,
        auth: &ApiToken,
        text: &str,
        params: NormalizeParams,
    ) -> Result<NormalizationResult> {
        self.authorize(auth)?;
        self.normalize_through_cache(text, params).map(|(r, _)| r)
    }

    /// Bulk Normalization, fanned out across cores with results in input
    /// order; every worker shares the service's candidate cache.
    pub fn normalize_bulk(
        &self,
        auth: &ApiToken,
        texts: &[&str],
        params: NormalizeParams,
    ) -> Result<Vec<NormalizationResult>> {
        self.authorize(auth)?;
        try_par_map(texts, |t| {
            self.normalize_through_cache(t, params).map(|(r, _)| r)
        })
    }

    /// Perturbation endpoint.
    pub fn perturb(
        &self,
        auth: &ApiToken,
        text: &str,
        params: PerturbParams,
    ) -> Result<PerturbationOutcome> {
        self.authorize(auth)?;
        self.system.perturb(text, params)
    }

    /// Look Up cache statistics (the Fig. 5 architecture experiment
    /// reports the hit rate). Tier-1 Look Up only — see
    /// [`Self::cache_tier_stats`] for the whole hierarchy.
    pub fn cache_stats(&self) -> CacheStats {
        self.lookup_cache.stats()
    }

    /// Counter snapshot across the whole cache hierarchy — a projection
    /// of the instance [`MetricsRegistry`]: every number here reads the
    /// same live cells the registry snapshots and renders.
    pub fn cache_tier_stats(&self) -> CacheTierSnapshot {
        CacheTierSnapshot {
            lookup: self.lookup_cache.stats(),
            normalize: self.norm_cache.stats(),
            normalize_results: self.norm_result_cache.stats(),
            negative_hits: self.negative_hits.get(),
            generation: self.generation(),
            invalidation_bumps: self.invalidation_bumps.get(),
            invalidated_entries: self.invalidated_entries.get(),
            tier2_attached: self.tier2.is_some(),
            tier2: self.tier2.as_ref().map(|t| t.stats()).unwrap_or_default(),
        }
    }

    /// The instance metrics registry: cache tiers, store backends, engine
    /// stages, and service counters all share it. Front-ends (the
    /// gateway, the HTTP wire layer) register their own instruments here
    /// so one snapshot covers the whole request path.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The shared per-stage engine instruments (also reachable through
    /// [`Self::metrics`] snapshots; this handle reads the live cells).
    pub fn stage_metrics(&self) -> &Arc<StageMetrics> {
        &self.stages
    }

    /// Eagerly reap expired entries from every cache tier; returns how
    /// many were dropped. The gateway runs this during drain so a drained
    /// service leaves no expired entries behind.
    pub fn sweep_caches(&self) -> usize {
        let mut reaped = self.lookup_cache.sweep_expired()
            + self.norm_cache.sweep_expired()
            + self.norm_result_cache.sweep_expired();
        if let Some(t2) = &self.tier2 {
            reaped += t2.sweep_expired();
        }
        reaped
    }

    /// The wrapped system (read access).
    pub fn system(&self) -> &CrypText<S> {
        &self.system
    }

    /// The active configuration (the HTTP layer derives `Cache-Control`
    /// max-age from the cache TTL).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }
}

/// Aggregate counter snapshot over the service's cache hierarchy, in the
/// same point-in-time style as the gateway's `GatewayStatsSnapshot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheTierSnapshot {
    /// Tier-1 Look Up result cache counters.
    pub lookup: CacheStats,
    /// Tier-1 Normalization candidate memo counters (hits include
    /// negative hits; tier-2 promotions count as tier-1 inserts).
    pub normalize: CacheStats,
    /// Tier-1 whole-text Normalization result cache counters (a hit here
    /// skips retrieval and scoring entirely — exact-repeat traffic).
    pub normalize_results: CacheStats,
    /// How many normalize hits served a cached *negative* entry (an
    /// out-of-dictionary token with no candidates — the uncached p99 path).
    pub negative_hits: u64,
    /// Current data-version (part of every key).
    pub generation: u64,
    /// How many generation bumps (= namespace invalidations) happened.
    pub invalidation_bumps: u64,
    /// Total entries flushed by those bumps, across both tiers.
    pub invalidated_entries: u64,
    /// Is a tier-2 store attached?
    pub tier2_attached: bool,
    /// Tier-2 store counters (zeros when detached). A shared store reports
    /// fleet-wide numbers, not per-replica ones.
    pub tier2: StoreStats,
}

/// The service's [`CandidateCache`] adapter: tier-1 typed memo in front,
/// tier-2 byte store behind (read-through on miss, write-behind on fill,
/// errors absorbed — an injected tier-2 fault costs a future miss, never
/// the request).
struct ServiceCandidateCache<'a, S: TokenStore> {
    svc: &'a CryptextService<S>,
}

impl<S: TokenStore> CandidateCache for ServiceCandidateCache<'_, S> {
    fn get(&self, token: &str, k: usize, d: usize) -> Option<CandidatePairs> {
        let key = self.svc.normalize_cache_key(token, k, d);
        if let Some(pairs) = self.svc.norm_cache.get(&key) {
            if pairs.is_empty() {
                self.svc.negative_hits.inc();
            }
            return Some(pairs);
        }
        let t2 = self.svc.tier2.as_ref()?;
        let ns = self.svc.tier2_namespace(self.svc.generation());
        let bytes = t2.get(ns, key.as_u128())?;
        let pairs: CandidatePairs = Arc::new(decode_pairs(&bytes)?);
        // Promote into tier-1 so the next request never leaves process.
        self.svc.norm_cache.insert(key, Arc::clone(&pairs));
        if pairs.is_empty() {
            self.svc.negative_hits.inc();
        }
        Some(pairs)
    }

    fn put(&self, token: &str, k: usize, d: usize, pairs: CandidatePairs) {
        let key = self.svc.normalize_cache_key(token, k, d);
        self.svc.norm_cache.insert(key, Arc::clone(&pairs));
        if let Some(t2) = &self.svc.tier2 {
            let ns = self.svc.tier2_namespace(self.svc.generation());
            // Write-behind: the result is already served from tier-1; a
            // tier-2 failure (failpoint sweeps arm `cache.shared.put`)
            // only means the fleet misses until the next fill.
            let _ = t2.put(
                ns,
                key.as_u128(),
                encode_pairs(&pairs),
                Some(self.svc.config.cache_ttl_ms),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TokenDatabase;
    use cryptext_common::SimClock;

    fn service(limit: u32) -> (CryptextService, SimClock) {
        let mut db = TokenDatabase::in_memory();
        for s in [
            "the demokRATs and democrats argue",
            "repubLIEcans and republicans fight",
            "the vaccine and the vacc1ne",
        ] {
            db.ingest_text(s);
        }
        let clock = SimClock::new(0);
        let svc = CryptextService::new(
            CrypText::new(db),
            ServiceConfig {
                rate_limit_per_minute: limit,
                ..ServiceConfig::default()
            },
            Arc::new(clock.clone()),
        );
        (svc, clock)
    }

    #[test]
    fn requires_valid_token() {
        let (svc, _) = service(10);
        let bogus = ApiToken("cx_fake_0000".into());
        let err = svc
            .look_up(&bogus, "democrats", LookupParams::paper_default())
            .unwrap_err();
        assert!(matches!(err, Error::Unauthorized(_)));
    }

    #[test]
    fn issued_token_works_and_revocation_stops_it() {
        let (svc, _) = service(10);
        let tok = svc.issue_token("alice");
        assert!(tok.as_str().starts_with("cx_alice_"));
        let hits = svc
            .look_up(&tok, "democrats", LookupParams::paper_default())
            .unwrap();
        assert!(hits.iter().any(|h| h.token == "demokRATs"));
        svc.revoke_token(&tok);
        assert!(matches!(
            svc.look_up(&tok, "democrats", LookupParams::paper_default()),
            Err(Error::Unauthorized(_))
        ));
    }

    #[test]
    fn distinct_tokens_for_distinct_owners_and_calls() {
        let (svc, _) = service(10);
        let a = svc.issue_token("alice");
        let b = svc.issue_token("alice");
        let c = svc.issue_token("bob");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rate_limit_enforced_and_window_resets() {
        let (svc, clock) = service(3);
        let tok = svc.issue_token("bob");
        for _ in 0..3 {
            svc.look_up(&tok, "vaccine", LookupParams::paper_default())
                .unwrap();
        }
        let err = svc
            .look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap_err();
        // The clock sits at 0, so the full window remains.
        assert!(matches!(
            err,
            Error::RateLimited {
                retry_after_ms: 60_000
            }
        ));
        assert!(err.is_retryable());
        // A minute later the window resets.
        clock.advance(60_000);
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
    }

    #[test]
    fn rate_limits_are_per_token() {
        let (svc, _) = service(1);
        let a = svc.issue_token("a");
        let b = svc.issue_token("b");
        svc.look_up(&a, "vaccine", LookupParams::paper_default())
            .unwrap();
        assert!(svc
            .look_up(&a, "vaccine", LookupParams::paper_default())
            .is_err());
        svc.look_up(&b, "vaccine", LookupParams::paper_default())
            .unwrap();
    }

    #[test]
    fn rate_limited_retry_after_tracks_window_position() {
        let (svc, clock) = service(1);
        let tok = svc.issue_token("mid");
        clock.advance(45_000); // 15s left in the current window
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
        let err = svc
            .look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap_err();
        assert_eq!(err.retry_after_ms(), Some(15_000));
        // And the hint is honest: advancing exactly that far refills.
        clock.advance(15_000);
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
    }

    #[test]
    fn authorize_request_charges_the_window_like_an_endpoint() {
        let (svc, _) = service(2);
        let tok = svc.issue_token("gate");
        svc.authorize_request(&tok).unwrap();
        svc.authorize_request(&tok).unwrap();
        assert!(matches!(
            svc.authorize_request(&tok),
            Err(Error::RateLimited { .. })
        ));
        let bogus = ApiToken("cx_fake_0000".into());
        assert!(matches!(
            svc.authorize_request(&bogus),
            Err(Error::Unauthorized(_))
        ));
    }

    #[test]
    fn prechecked_lookup_matches_the_authorized_endpoint() {
        let (svc, _) = service(100);
        let tok = svc.issue_token("pre");
        let direct = svc
            .look_up(&tok, "democrats", LookupParams::paper_default())
            .unwrap();
        let pre = svc
            .look_up_prechecked("democrats", LookupParams::paper_default(), &mut || None)
            .unwrap();
        assert_eq!(direct, pre, "same bytes, cache included");
        // Prechecked execution shares the endpoint's cache.
        assert!(svc.cache_stats().hits >= 1);
        // A firing cancel probe aborts an uncached walk with its error.
        let err = svc
            .look_up_prechecked("republicans", LookupParams::new(1, 2), &mut || {
                Some(Error::DeadlineExceeded { budget_ms: 3 })
            })
            .unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded { budget_ms: 3 }));
    }

    #[test]
    fn lookup_results_are_cached() {
        let (svc, _) = service(100);
        let tok = svc.issue_token("carol");
        let a = svc
            .look_up(&tok, "republicans", LookupParams::paper_default())
            .unwrap();
        let b = svc
            .look_up(&tok, "republicans", LookupParams::paper_default())
            .unwrap();
        assert_eq!(a, b);
        let stats = svc.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        // Different params → different cache entry.
        svc.look_up(&tok, "republicans", LookupParams::new(1, 1))
            .unwrap();
        assert_eq!(svc.cache_stats().misses, 2);
    }

    #[test]
    fn cache_entries_expire_by_ttl() {
        let (svc, clock) = service(100);
        let tok = svc.issue_token("dave");
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
        clock.advance(ServiceConfig::default().cache_ttl_ms + 1);
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
        assert_eq!(svc.cache_stats().expirations, 1);
    }

    #[test]
    fn bulk_endpoints_one_authorization() {
        let (svc, _) = service(1);
        let tok = svc.issue_token("erin");
        let out = svc
            .look_up_bulk(
                &tok,
                &["democrats", "republicans", "vaccine"],
                LookupParams::paper_default(),
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        // Budget of 1 is now spent; the next call rate-limits.
        assert!(svc
            .look_up(&tok, "vaccine", LookupParams::paper_default())
            .is_err());
    }

    #[test]
    fn parallel_bulk_lookup_equals_sequential() {
        // Force real worker threads even on single-core hosts, and use
        // enough distinct tokens (>= MIN_PARALLEL_ITEMS after duplicate
        // coalescing) that the scoped-thread branch actually runs. The
        // env var is process-global, but every other par_map caller is
        // agnostic to thread count, so the race is benign.
        std::env::set_var("CRYPTEXT_THREADS", "4");
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("pat");
        let distinct: Vec<String> = (0..24).map(|i| format!("token{i}word")).collect();
        let mut queries: Vec<&str> = vec![
            "democrats",
            "republicans",
            "vaccine",
            "vacc1ne",
            "demokRATs",
            "unknownzz",
        ];
        queries.extend(distinct.iter().map(|s| s.as_str()));

        let sequential: Vec<Vec<LookupHit>> = queries
            .iter()
            .map(|q| svc.look_up(&tok, q, LookupParams::paper_default()).unwrap())
            .collect();
        let bulk = svc
            .look_up_bulk(&tok, &queries, LookupParams::paper_default())
            .unwrap();
        std::env::remove_var("CRYPTEXT_THREADS");
        assert_eq!(
            bulk, sequential,
            "bulk results identical and in input order"
        );
    }

    #[test]
    fn bulk_lookup_coalesces_duplicate_tokens() {
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("dup");
        let queries: Vec<&str> = ["vaccine", "democrats", "republicans"]
            .into_iter()
            .cycle()
            .take(60)
            .collect();
        let out = svc
            .look_up_bulk(&tok, &queries, LookupParams::paper_default())
            .unwrap();
        assert_eq!(out.len(), 60);
        // Each distinct token probes (and misses) the cache exactly once;
        // duplicates are served from the coalesced computation.
        let stats = svc.cache_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.inserts, 3);
        // Results still line up with the input positions.
        assert_eq!(out[0], out[3]);
        assert_eq!(out[1], out[4]);
    }

    #[test]
    fn parallel_bulk_normalize_equals_sequential() {
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("norm");
        let texts: Vec<&str> = vec![
            "the demokRATs won",
            "ok clean text",
            "the vacc1ne mandate",
            "nothing to fix here",
        ]
        .into_iter()
        .cycle()
        .take(32)
        .collect();
        let sequential: Vec<NormalizationResult> = texts
            .iter()
            .map(|t| svc.normalize(&tok, t, NormalizeParams::default()).unwrap())
            .collect();
        let bulk = svc
            .normalize_bulk(&tok, &texts, NormalizeParams::default())
            .unwrap();
        assert_eq!(bulk, sequential);
    }

    #[test]
    fn bulk_lookup_invalid_level_errors_like_sequential() {
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("err");
        let err = svc
            .look_up_bulk(&tok, &["a", "b"], LookupParams::new(9, 1))
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
    }

    #[test]
    fn packed_counter_saturates_at_the_u32_boundary() {
        // Regression: with rate_limit_per_minute == u32::MAX, the packed
        // word's used half can legitimately reach u32::MAX - 1; admitting
        // the next request must not carry into the window field (which
        // would advance the window and silently refill the budget).
        let win = 7u64;
        let limit = u32::MAX;

        // One slot left: admission fills the counter exactly.
        let cur = (win << 32) | (u32::MAX as u64 - 1);
        let next = advance_packed(cur, win, limit).expect("one slot left");
        assert_eq!(next >> 32, win, "window half untouched");
        assert_eq!(next & 0xFFFF_FFFF, u32::MAX as u64, "counter full");

        // Full counter: exhausted, not carried.
        assert_eq!(advance_packed(next, win, limit), None);

        // Even a (theoretically unreachable) full counter passed with a
        // smaller limit saturates rather than overflowing the field.
        let full = (win << 32) | 0xFFFF_FFFF;
        assert_eq!(advance_packed(full, win, limit), None);

        // A corrupted word whose used half exceeds the limit in u64 space
        // rate-limits instead of truncating back into admissibility.
        assert_eq!(advance_packed(full, win, 100), None);

        // A new window resets regardless of the stale counter.
        let fresh = advance_packed(full, win + 1, limit).expect("fresh window");
        assert_eq!(fresh >> 32, win + 1);
        assert_eq!(fresh & 0xFFFF_FFFF, 1);
    }

    #[test]
    fn rate_limit_u32_max_never_corrupts_the_window() {
        // End-to-end at the boundary: preload the packed counter to one
        // below the cap, then drive real requests through authorize.
        let (svc, _) = service(u32::MAX);
        let tok = svc.issue_token("boundary");
        {
            let tokens = svc.tokens.read();
            let state = tokens.get(tok.as_str()).unwrap();
            let cur = state.window.load(Ordering::Acquire);
            let win = cur >> 32;
            state
                .window
                .store((win << 32) | (u32::MAX as u64 - 1), Ordering::Release);
        }
        // The last slot admits...
        svc.look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap();
        // ...and the very next request rate-limits without the window half
        // having been disturbed by a carry.
        let err = svc
            .look_up(&tok, "vaccine", LookupParams::paper_default())
            .unwrap_err();
        assert!(matches!(err, Error::RateLimited { .. }));
        let tokens = svc.tokens.read();
        let cur = tokens
            .get(tok.as_str())
            .unwrap()
            .window
            .load(Ordering::Acquire);
        assert_eq!(cur & 0xFFFF_FFFF, u32::MAX as u64, "saturated, not wrapped");
    }

    #[test]
    fn concurrent_authorization_admits_exactly_the_budget() {
        // The read-locked atomic authorize path must admit exactly
        // `rate_limit_per_minute` requests per window no matter how many
        // threads race — every fetch_add claims a distinct slot.
        let limit = 64u32;
        let (svc, _) = service(limit);
        let tok = svc.issue_token("racer");
        let admitted = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..32 {
                        if svc
                            .look_up(&tok, "vaccine", LookupParams::paper_default())
                            .is_ok()
                        {
                            admitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(admitted.load(std::sync::atomic::Ordering::Relaxed), limit);
    }

    #[test]
    fn sharded_backend_serves_identical_results() {
        use crate::shard::ShardedTokenDatabase;
        let mut db = TokenDatabase::with_lexicon();
        for s in [
            "the demokRATs and democrats argue",
            "repubLIEcans and republicans fight",
            "the vaccine and the vacc1ne",
        ] {
            db.ingest_text(s);
        }
        let clock = SimClock::new(0);
        let sharded = ShardedTokenDatabase::from_database(&db, 4);
        let svc_single = CryptextService::new(
            CrypText::new(db),
            ServiceConfig::default(),
            Arc::new(clock.clone()),
        );
        let svc_sharded = CryptextService::new(
            CrypText::with_store(sharded),
            ServiceConfig::default(),
            Arc::new(clock.clone()),
        );
        let a = svc_single.issue_token("x");
        let b = svc_sharded.issue_token("x");
        let queries = ["democrats", "republicans", "vacc1ne", "unknownzz"];
        assert_eq!(
            svc_single
                .look_up_bulk(&a, &queries, LookupParams::paper_default())
                .unwrap(),
            svc_sharded
                .look_up_bulk(&b, &queries, LookupParams::paper_default())
                .unwrap(),
            "bulk Look Up identical across backends"
        );
        assert_eq!(
            svc_single
                .normalize(&a, "the demokRATs won", NormalizeParams::default())
                .unwrap(),
            svc_sharded
                .normalize(&b, "the demokRATs won", NormalizeParams::default())
                .unwrap()
        );
    }

    #[test]
    fn normalize_candidates_are_cached_cross_text() {
        let (svc, _) = service(100);
        let tok = svc.issue_token("memo");
        let a = svc
            .normalize(&tok, "the demokRATs argue", NormalizeParams::default())
            .unwrap();
        let cold = svc.cache_tier_stats();
        assert!(cold.normalize.misses > 0);
        assert_eq!(cold.normalize.hits, 0);
        // A *different* text repeating the same perturbed token hits the
        // cross-text memo; the result stays byte-identical to uncached.
        let b = svc
            .normalize(
                &tok,
                "so the demokRATs fight on",
                NormalizeParams::default(),
            )
            .unwrap();
        let warm = svc.cache_tier_stats();
        assert!(warm.normalize.hits > 0, "cross-text repeat is a hit");
        assert_eq!(a.corrections[0].replacement, "democrats");
        assert_eq!(b.corrections[0].replacement, "democrats");
        // Case-fold keying: a case variant of the token also hits.
        let hits_before = svc.cache_tier_stats().normalize.hits;
        svc.normalize(&tok, "the DEMOKrats again", NormalizeParams::default())
            .unwrap();
        assert!(svc.cache_tier_stats().normalize.hits > hits_before);
    }

    #[test]
    fn out_of_dictionary_misses_are_negatively_cached() {
        let (svc, _) = service(100);
        let tok = svc.issue_token("neg");
        svc.normalize(&tok, "qzxblorp said something", NormalizeParams::default())
            .unwrap();
        assert_eq!(svc.cache_tier_stats().negative_hits, 0);
        svc.normalize(&tok, "then qzxblorp left", NormalizeParams::default())
            .unwrap();
        let s = svc.cache_tier_stats();
        assert!(
            s.negative_hits >= 1,
            "repeat of a no-candidate token served from the negative entry"
        );
    }

    #[test]
    fn generation_bump_invalidates_every_tier() {
        use cryptext_cache::LruCacheStore;
        let (mut svc, _) = service(100);
        let store = Arc::new(LruCacheStore::new(
            cryptext_cache::CacheConfig::default(),
            svc.clock(),
        ));
        svc.attach_tier2(Arc::clone(&store) as Arc<dyn CacheStore>);
        let tok = svc.issue_token("bump");
        svc.normalize(&tok, "the demokRATs argue", NormalizeParams::default())
            .unwrap();
        svc.look_up(&tok, "democrats", LookupParams::paper_default())
            .unwrap();
        let before = svc.cache_tier_stats();
        assert!(before.tier2.inserts > 0, "write-behind reached tier-2");
        assert_eq!(svc.bump_generation(), 1);
        let after = svc.cache_tier_stats();
        assert_eq!(after.generation, 1);
        assert_eq!(after.invalidation_bumps, 1);
        assert!(
            after.invalidated_entries > 0,
            "stale entries flushed, not leaked"
        );
        assert!(after.tier2.invalidated > 0, "old namespace flushed");
        // Post-bump traffic recomputes (same immutable data → same bytes)
        // under the new keys rather than hitting stale entries.
        let miss_base = after.normalize.misses;
        let r = svc
            .normalize(&tok, "the demokRATs argue", NormalizeParams::default())
            .unwrap();
        assert_eq!(r.corrections[0].replacement, "democrats");
        assert!(svc.cache_tier_stats().normalize.misses > miss_base);
    }

    #[test]
    fn shared_tier2_serves_a_replica_fleet() {
        use cryptext_cache::SharedCacheStore;
        // Two identically-built replicas pointing at one shared store:
        // a fill through one is a tier-2 hit through the other.
        let (mut svc_a, _) = service(100);
        let (mut svc_b, _) = service(100);
        let shared = Arc::new(SharedCacheStore::new(
            cryptext_cache::CacheConfig::default(),
            svc_a.clock(),
        ));
        svc_a.attach_tier2(Arc::clone(&shared) as Arc<dyn CacheStore>);
        svc_b.attach_tier2(Arc::clone(&shared) as Arc<dyn CacheStore>);
        let ta = svc_a.issue_token("a");
        let tb = svc_b.issue_token("b");
        let a = svc_a
            .normalize(&ta, "the demokRATs argue", NormalizeParams::default())
            .unwrap();
        let t2_hits_before = shared.stats().hits;
        let b = svc_b
            .normalize(&tb, "the demokRATs argue", NormalizeParams::default())
            .unwrap();
        assert_eq!(a, b, "replicas byte-identical through the shared tier");
        assert!(
            shared.stats().hits > t2_hits_before,
            "replica B read through to the shared store"
        );
        // The promotion landed in B's tier-1: the next request stays local.
        let local_hits = svc_b.cache_tier_stats().normalize.hits;
        svc_b
            .normalize(&tb, "more demokRATs here", NormalizeParams::default())
            .unwrap();
        assert!(svc_b.cache_tier_stats().normalize.hits > local_hits);
    }

    #[test]
    fn tier2_put_failures_degrade_to_misses() {
        use cryptext_cache::{SharedCacheStore, SHARED_PUT_FAILPOINT};
        use cryptext_common::failpoint;
        let (mut svc, _) = service(100);
        let shared = Arc::new(SharedCacheStore::new(
            cryptext_cache::CacheConfig::default(),
            svc.clock(),
        ));
        svc.attach_tier2(Arc::clone(&shared) as Arc<dyn CacheStore>);
        let tok = svc.issue_token("fp");
        let _fp = failpoint::arm(SHARED_PUT_FAILPOINT, "kill@1");
        let r = svc
            .normalize(&tok, "the demokRATs argue", NormalizeParams::default())
            .unwrap();
        assert_eq!(
            r.corrections[0].replacement, "democrats",
            "request unaffected by the dead write path"
        );
        let s = svc.cache_tier_stats();
        assert!(s.tier2.put_errors > 0, "failure counted");
        assert_eq!(s.tier2.inserts, 0, "nothing stored past the failpoint");
        // Tier-1 still took the fill: repeats are local hits.
        svc.normalize(&tok, "the demokRATs again", NormalizeParams::default())
            .unwrap();
        assert!(svc.cache_tier_stats().normalize.hits > 0);
    }

    #[test]
    fn pair_codec_round_trips_and_rejects_malformed_bytes() {
        let pairs = vec![
            ("democrats".to_string(), 1usize),
            ("demonrats".to_string(), 2usize),
            (String::new(), 0usize),
        ];
        let bytes = encode_pairs(&pairs);
        assert_eq!(decode_pairs(&bytes), Some(pairs.clone()));
        assert_eq!(decode_pairs(&encode_pairs(&[])), Some(Vec::new()));
        // Truncations at every prefix degrade to a miss, never a panic.
        for cut in 0..bytes.len() {
            assert_eq!(decode_pairs(&bytes[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage and absurd counts are rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_pairs(&padded), None);
        assert_eq!(decode_pairs(&u64::MAX.to_le_bytes()), None);
        // Non-UTF-8 word bytes are rejected.
        let mut bad = encode_pairs(&[("ab".to_string(), 1)]);
        bad[12] = 0xFF;
        assert_eq!(decode_pairs(&bad), None);
    }

    #[test]
    fn normalize_and_perturb_endpoints() {
        let (svc, _) = service(100);
        let tok = svc.issue_token("frank");
        let norm = svc
            .normalize(&tok, "the demokRATs won", NormalizeParams::default())
            .unwrap();
        assert_eq!(norm.text, "the democrats won");
        let out = svc
            .perturb(&tok, "the democrats won", PerturbParams::with_ratio(1.0))
            .unwrap();
        assert!(out.replacements.len() + out.misses > 0);

        let bulk = svc
            .normalize_bulk(
                &tok,
                &["the demokRATs", "ok text"],
                NormalizeParams::default(),
            )
            .unwrap();
        assert_eq!(bulk.len(), 2);
    }
}
