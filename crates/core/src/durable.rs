//! Durable streaming ingest: per-shard delta logs + crash recovery.
//!
//! The paper's crawler (§III-F) enriches the token database continuously,
//! but until now every durability point was a *full* persist — O(corpus)
//! per save, so a crash between saves lost every batch since the last
//! one. [`DurableTokenStore`] makes ingest itself durable at batch
//! granularity, reusing the docstore's CRC-framed WAL layer
//! ([`cryptext_docstore::wal::FrameWriter`]) for append-only **delta
//! logs**:
//!
//! * **One delta log per shard** — each ingest batch scatters its applied
//!   `(token, +count)` upserts into the logs of the shards that own them
//!   (a flat [`TokenDatabase`] is one shard). An append is O(batch), not
//!   O(corpus).
//! * **Two-phase batch commit** — the per-shard frames carry a monotonic
//!   `batch_seq`; a record in the separate **commit log**, appended
//!   *after* every shard frame, is the batch's atomicity point. Recovery
//!   replays only committed batches, so a crash mid-batch yields exactly
//!   the pre-batch state — never a half-applied batch.
//! * **Snapshot + log recovery** — [`DurableTokenStore::open`] loads the
//!   newest epoch snapshot from the embedded docstore, then replays
//!   committed delta frames with `batch_seq` beyond the snapshot's
//!   `included_batch` watermark, in `(batch, shard)` order. Replaying an
//!   upsert reproduces live ingest exactly (same insert order, same
//!   counts, same codes), so the recovered store is byte-identical to one
//!   that never crashed.
//! * **Compaction** — [`DurableTokenStore::compact`] folds the logs into
//!   a fresh epoch snapshot (`tokens__e{E}`, written with the crash-safe
//!   staged persist), atomically swaps the `tokens__ingest` manifest
//!   (epoch, shard count, `included_batch`) via a staging-collection
//!   rename, then truncates the logs and sweeps stale epochs. The
//!   manifest swap is the only commit point; `batch_seq` never resets, so
//!   frames surviving a crash mid-truncation are filtered by the
//!   watermark on the next open.
//! * **Live resharding** — [`DurableTokenStore::grow_one_shard`] compacts
//!   at N shards, grows the in-memory store (moving only jump-hash
//!   movers, see [`ShardedTokenDatabase::grow_one_shard`]), opens the new
//!   shard's log, and compacts again at N+1. The second compaction's
//!   manifest swap commits the reshard; a crash anywhere else recovers at
//!   N shards with nothing lost and the grow simply reruns.
//!
//! # Failure semantics
//!
//! The crash model is process death (every test boundary) plus power
//! loss when `sync_every_batch` is on. A *live* process that observes a
//! write error is different from a dead one: torn bytes may sit at a log
//! tail, and appending after them would shadow every later frame from
//! recovery (the frame scan stops at the first bad frame). The store
//! therefore **poisons** itself on any log-write failure — subsequent
//! ingests, compactions, and grows fail fast until the store is reopened,
//! which truncates the torn tail and resumes cleanly. The fallible
//! `try_*` ingest methods surface these errors; the infallible
//! [`TokenStore`] ingest surface applies *nothing* on failure and leaves
//! the error visible through [`DurableTokenStore::poisoned`].
//!
//! Every boundary here is a [`cryptext_common::failpoint`] site
//! (`delta.append`, `delta.commit`, `compact.manifest.swap`,
//! `compact.truncate`, plus the docstore's own), and the tests below kill
//! at *every* boundary of a mixed workload and assert recovery lands on a
//! committed-batch prefix, byte-identical to the reference.

use std::ops::ControlFlow;
use std::path::{Path, PathBuf};

use cryptext_common::failpoint;
use cryptext_common::hash::{FxHashMap, FxHashSet};
use cryptext_common::metrics::{Histogram, MetricsRegistry};
use cryptext_common::{Error, Result};
use cryptext_docstore::wal::{read_frames, FrameWriter};
use cryptext_docstore::{Database, DbOptions, Document, Filter, Value};
use cryptext_phonetics::CustomSoundex;
use cryptext_tokenizer::tokenize_spans;

use crate::database::{EncodedQuery, SoundScratch, TokenDatabase, TokenRecord, TokenStats};
use crate::shard::ShardedTokenDatabase;
use crate::store::TokenStore;

/// The manifest collection: one document holding `epoch`, `shards`, and
/// `included_batch` (the highest batch folded into the live snapshot).
const MANIFEST: &str = "tokens__ingest";
/// Staging name the manifest is built under before the atomic rename.
const MANIFEST_STAGING: &str = "tokens__ingest_staging";

/// Shard-frame kind: a batch of `(token, delta)` upserts.
const FRAME_DELTAS: u8 = 1;
/// Shard-frame kind: seed this shard's slice of the English lexicon.
const FRAME_SEED: u8 = 2;

/// A [`TokenStore`] whose ingest the durable layer can log and replay.
///
/// The contract: `apply_upsert(token, 1)` in scatter order reproduces the
/// store's own ingest application exactly (both backends funnel into the
/// same `upsert_token`), and `route_token` is the stable shard assignment
/// the delta logs are keyed by.
pub trait DeltaStore: TokenStore + Sized {
    /// An empty store over `shards` shards (ignored by single-instance
    /// backends).
    fn fresh(shards: usize) -> Self;
    /// The delta log that owns `token`'s upserts (always 0 for a single
    /// instance).
    fn route_token(&self, token: &str) -> usize;
    /// Apply one replayed count delta (insert-or-increment).
    fn apply_upsert(&mut self, token: &str, delta: u64);
    /// Seed the slice of the English lexicon owned by `shard` — the exact
    /// subsequence a live [`TokenStore::seed_lexicon`] routes there.
    fn seed_shard(&mut self, shard: usize);
}

impl DeltaStore for TokenDatabase {
    fn fresh(_shards: usize) -> Self {
        TokenDatabase::in_memory()
    }

    fn route_token(&self, _token: &str) -> usize {
        0
    }

    fn apply_upsert(&mut self, token: &str, delta: u64) {
        self.upsert_token(token, delta);
    }

    fn seed_shard(&mut self, _shard: usize) {
        TokenDatabase::seed_lexicon(self);
    }
}

impl DeltaStore for ShardedTokenDatabase {
    fn fresh(shards: usize) -> Self {
        ShardedTokenDatabase::in_memory(shards)
    }

    fn route_token(&self, token: &str) -> usize {
        self.route(token)
    }

    fn apply_upsert(&mut self, token: &str, delta: u64) {
        self.upsert_routed(token, delta);
    }

    fn seed_shard(&mut self, shard: usize) {
        self.seed_lexicon_shard(shard);
    }
}

/// Tuning knobs for [`DurableTokenStore::open`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Shard count when creating a store with no on-disk state. An
    /// existing store's manifest always wins (the logs are routed under
    /// its count).
    pub shards: usize,
    /// `fsync` the touched delta logs and the commit log at every batch
    /// commit. Off, a batch survives process death (writes are flushed in
    /// commit order) but not power loss.
    pub sync_every_batch: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            shards: 1,
            sync_every_batch: false,
        }
    }
}

/// One decoded shard-log frame.
enum FrameBody {
    Deltas(Vec<(String, u64)>),
    SeedLexicon,
}

/// A crash-recoverable token store: an in-memory [`DeltaStore`] backed by
/// per-shard delta logs, a commit log, and epoch snapshots in an embedded
/// docstore. See the module docs for the protocol.
pub struct DurableTokenStore<S: DeltaStore> {
    inner: S,
    store: Database,
    dir: PathBuf,
    logs: Vec<FrameWriter>,
    commit: FrameWriter,
    /// Sequence the next batch will commit under (monotonic forever).
    next_batch: u64,
    /// Live snapshot epoch (0 = no snapshot yet).
    epoch: u64,
    poisoned: bool,
    sync_every_batch: bool,
    /// Batch append latency (shard frames + commit record, per-batch
    /// fsyncs included when enabled), µs.
    append_us: Histogram,
    /// Explicit drain-flush [`DurableTokenStore::sync`] latency, µs.
    fsync_us: Histogram,
    /// Full [`DurableTokenStore::compact`] latency, µs.
    compact_us: Histogram,
}

impl<S: DeltaStore> DurableTokenStore<S> {
    /// Open (or create) a durable store rooted at `dir`, recovering state
    /// from the newest epoch snapshot plus committed delta-log replay. A
    /// torn log tail — a crash mid-append — is truncated so post-crash
    /// appends stay reachable.
    pub fn open(dir: &Path, opts: DurableOptions) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let store = Database::open(&dir.join("snapshots"), DbOptions::default())?;

        let (epoch, shards, included) = match Self::read_manifest(&store)? {
            Some(m) => m,
            None => {
                // First open (or a crash before the first manifest insert
                // landed — no batch can have been logged yet): pin the
                // shard count before any log is written.
                Self::swap_manifest(&store, 0, opts.shards.max(1), 0)?;
                (0, opts.shards.max(1), 0)
            }
        };

        let mut inner = if epoch == 0 {
            S::fresh(shards)
        } else {
            S::load_from(&store, &Self::epoch_collection(epoch))?
        };

        // Gather committed batch sequences, tolerating a torn commit-log
        // tail (those batches simply never happened).
        let commit_path = Self::commit_path_in(dir);
        let mut committed: FxHashSet<u64> = FxHashSet::default();
        let mut max_seq = included;
        for frame in read_frames(&commit_path)?.frames {
            let seq = decode_commit_frame(&frame)?;
            committed.insert(seq);
            max_seq = max_seq.max(seq);
        }

        // Replay committed frames beyond the snapshot watermark in
        // (batch, shard) order — shards are disjoint, so that reproduces
        // the per-shard application order of live ingest.
        let mut pending: Vec<(u64, usize, FrameBody)> = Vec::new();
        for s in 0..shards {
            for frame in read_frames(&Self::log_path_in(dir, s))?.frames {
                let (seq, body) = decode_shard_frame(&frame)?;
                // Every observed sequence — committed or not — bounds the
                // next batch number, so a torn batch's number is never
                // reused (a reused number would resurrect its stale
                // frames on the next replay).
                max_seq = max_seq.max(seq);
                if seq > included && committed.contains(&seq) {
                    pending.push((seq, s, body));
                }
            }
        }
        pending.sort_by_key(|&(seq, s, _)| (seq, s));
        for (_, s, body) in pending {
            match body {
                FrameBody::Deltas(ops) => {
                    for (token, delta) in ops {
                        inner.apply_upsert(&token, delta);
                    }
                }
                FrameBody::SeedLexicon => inner.seed_shard(s),
            }
        }

        // Opening the writers truncates any torn tail before appending.
        let mut logs = Vec::with_capacity(shards);
        for s in 0..shards {
            logs.push(FrameWriter::open(
                &Self::log_path_in(dir, s),
                false,
                "delta.append",
            )?);
        }
        let commit = FrameWriter::open(&commit_path, false, "delta.commit")?;

        Ok(DurableTokenStore {
            inner,
            store,
            dir: dir.to_path_buf(),
            logs,
            commit,
            next_batch: max_seq + 1,
            epoch,
            poisoned: false,
            sync_every_batch: opts.sync_every_batch,
            append_us: Histogram::new(),
            fsync_us: Histogram::new(),
            compact_us: Histogram::new(),
        })
    }

    /// The recovered/live in-memory store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consume the wrapper, keeping the in-memory store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The live snapshot epoch (0 until the first compaction).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Has a log-write failure wedged this handle? A poisoned store
    /// rejects every further write until reopened (recovery truncates the
    /// torn tail the failure may have left).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Force-fsync every delta log and the commit log, regardless of the
    /// per-batch sync setting — the flush half of a graceful drain: after
    /// admissions stop and in-flight batches land, one `sync` makes every
    /// committed batch power-loss durable before the process exits.
    /// Fires the `drain.flush` failpoint first, so shutdown chaos tests
    /// can kill or stall the flush deterministically.
    pub fn sync(&mut self) -> Result<()> {
        self.ensure_live()?;
        failpoint::check("drain.flush")?;
        let _t = self.fsync_us.start_timer();
        for log in &mut self.logs {
            log.sync()?;
        }
        self.commit.sync()
    }

    fn ensure_live(&self) -> Result<()> {
        if self.poisoned {
            return Err(Error::invalid(
                "durable store poisoned by an earlier write failure; reopen to recover",
            ));
        }
        Ok(())
    }

    fn log_path_in(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("delta_{shard}.log"))
    }

    fn commit_path_in(dir: &Path) -> PathBuf {
        dir.join("commit.log")
    }

    fn epoch_collection(epoch: u64) -> String {
        format!("tokens__e{epoch}")
    }

    /// Parse the epoch out of a `tokens__e{E}`-prefixed collection name
    /// (the epoch snapshot itself or any of its nested shard/generation
    /// collections). Number-parsing, not string-prefixing: `e1` must not
    /// swallow `e10`.
    fn collection_epoch(name: &str) -> Option<u64> {
        let rest = name.strip_prefix("tokens__e")?;
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if end == 0 || (end < rest.len() && !rest[end..].starts_with("__")) {
            return None;
        }
        rest[..end].parse().ok()
    }

    fn read_manifest(store: &Database) -> Result<Option<(u64, usize, u64)>> {
        if !store.has_collection(MANIFEST) {
            return Ok(None);
        }
        let Some((_, doc)) = store.find_one(MANIFEST, &Filter::All)? else {
            return Ok(None);
        };
        let epoch = doc.get("epoch").and_then(Value::as_int).unwrap_or(-1);
        let shards = doc.get("shards").and_then(Value::as_int).unwrap_or(0);
        let included = doc
            .get("included_batch")
            .and_then(Value::as_int)
            .unwrap_or(-1);
        if epoch < 0 || shards <= 0 || included < 0 {
            return Ok(None);
        }
        Ok(Some((epoch as u64, shards as usize, included as u64)))
    }

    /// Build the manifest under a staging name and rename it over the
    /// live one — a single WAL record, the durable layer's commit point.
    fn swap_manifest(store: &Database, epoch: u64, shards: usize, included: u64) -> Result<()> {
        if store.has_collection(MANIFEST_STAGING) {
            store.drop_collection(MANIFEST_STAGING)?;
        }
        store.create_collection(MANIFEST_STAGING)?;
        store.insert(
            MANIFEST_STAGING,
            Document::new()
                .with("epoch", epoch as i64)
                .with("shards", shards as i64)
                .with("included_batch", included as i64),
        )?;
        failpoint::check("compact.manifest.swap")?;
        store.rename_collection(MANIFEST_STAGING, MANIFEST)
    }

    /// Append this batch's shard frames, then its commit record. Any
    /// failure (injected or real) poisons the handle: nothing was
    /// applied, and the tail of some log may be torn.
    fn log_batch(&mut self, frames: Vec<(usize, Vec<u8>)>) -> Result<()> {
        if frames.is_empty() {
            return Ok(());
        }
        let _t = self.append_us.start_timer();
        let seq = self.next_batch;
        let res = (|| -> Result<()> {
            for (s, payload) in &frames {
                self.logs[*s].append_frame(payload)?;
            }
            if self.sync_every_batch {
                for (s, _) in &frames {
                    self.logs[*s].sync()?;
                }
            }
            self.commit.append_frame(&seq.to_le_bytes())?;
            if self.sync_every_batch {
                self.commit.sync()?;
            }
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.next_batch = seq + 1;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// The upserts a batch of texts will apply, scattered per shard:
    /// word tokens passing the ingest gates (≥ 2 chars, phonetic
    /// content), coalesced by token at first-occurrence position — which
    /// preserves the id-assignment order of uncoalesced ingest.
    fn batch_ops<'t>(
        &self,
        texts: impl Iterator<Item = &'t str>,
    ) -> Result<Vec<Vec<(String, u64)>>> {
        let sx = self.inner.soundex(0)?;
        let n = self.inner.num_shards();
        let mut per_shard: Vec<Vec<(String, u64)>> = (0..n).map(|_| Vec::new()).collect();
        // token → None (gated out) or (shard, index in that shard's ops).
        let mut seen: FxHashMap<String, Option<(usize, usize)>> = FxHashMap::default();
        for text in texts {
            for tok in tokenize_spans(text) {
                if !tok.is_word() {
                    continue;
                }
                let t = tok.text(text);
                if t.chars().count() < 2 {
                    continue;
                }
                match seen.get(t).copied() {
                    Some(None) => {}
                    Some(Some((s, i))) => per_shard[s][i].1 += 1,
                    None => {
                        if sx.encode(t).is_none() {
                            seen.insert(t.to_string(), None);
                        } else {
                            let s = self.inner.route_token(t);
                            per_shard[s].push((t.to_string(), 1));
                            seen.insert(t.to_string(), Some((s, per_shard[s].len() - 1)));
                        }
                    }
                }
            }
        }
        Ok(per_shard)
    }

    fn delta_frames(&self, per_shard: &[Vec<(String, u64)>]) -> Vec<(usize, Vec<u8>)> {
        let seq = self.next_batch;
        per_shard
            .iter()
            .enumerate()
            .filter(|(_, ops)| !ops.is_empty())
            .map(|(s, ops)| (s, encode_delta_frame(seq, ops)))
            .collect()
    }

    /// Durably ingest one batch of texts: log first (one frame per
    /// touched shard + the commit record), then apply through the inner
    /// store's parallel batch path. On `Err` nothing was applied.
    pub fn try_ingest_texts<T: AsRef<str> + Sync>(&mut self, texts: &[T]) -> Result<usize> {
        self.ensure_live()?;
        let per_shard = self.batch_ops(texts.iter().map(AsRef::as_ref))?;
        let frames = self.delta_frames(&per_shard);
        self.log_batch(frames)?;
        Ok(self.inner.ingest_texts(texts))
    }

    /// Durably ingest one text as one batch. On `Err` nothing was applied.
    pub fn try_ingest_text(&mut self, text: &str) -> Result<usize> {
        self.ensure_live()?;
        let per_shard = self.batch_ops(std::iter::once(text))?;
        let frames = self.delta_frames(&per_shard);
        self.log_batch(frames)?;
        Ok(self.inner.ingest_text(text))
    }

    /// Durably ingest one raw token occurrence (its own tiny batch).
    pub fn try_ingest_token(&mut self, token: &str) -> Result<()> {
        self.ensure_live()?;
        if token.chars().count() < 2 || self.inner.soundex(0)?.encode(token).is_none() {
            return Ok(()); // gated out: nothing to log or apply
        }
        let s = self.inner.route_token(token);
        let frame = encode_delta_frame(self.next_batch, &[(token.to_string(), 1)]);
        self.log_batch(vec![(s, frame)])?;
        self.inner.ingest_token(token);
        Ok(())
    }

    /// Durably seed the English lexicon: one marker frame per shard log
    /// (replay re-derives each shard's slice deterministically).
    pub fn try_seed_lexicon(&mut self) -> Result<()> {
        self.ensure_live()?;
        let seq = self.next_batch;
        let frames = (0..self.inner.num_shards())
            .map(|s| (s, encode_seed_frame(seq)))
            .collect();
        self.log_batch(frames)?;
        self.inner.seed_lexicon();
        Ok(())
    }

    /// Fold the delta logs into a fresh epoch snapshot and truncate them.
    ///
    /// Steps: (1) persist the in-memory store under `tokens__e{E+1}`
    /// (itself a staged, crash-safe persist); (2) atomically swap the
    /// manifest — the commit point; (3) truncate the logs; (4) sweep
    /// stale epochs and checkpoint the docstore. A crash before (2)
    /// changes nothing (the next open replays snapshot `E` + logs); a
    /// crash after (2) is cosmetic (surviving frames sit at or below the
    /// new `included_batch` watermark and are filtered on replay).
    pub fn compact(&mut self) -> Result<()> {
        self.ensure_live()?;
        let _t = self.compact_us.start_timer();
        let new_epoch = self.epoch + 1;
        let included = self.next_batch - 1;
        self.inner
            .persist_to(&self.store, &Self::epoch_collection(new_epoch))?;
        Self::swap_manifest(&self.store, new_epoch, self.inner.num_shards(), included)?;
        self.epoch = new_epoch;

        // Committed: failures past this point poison the handle (writer
        // state is being replaced) but can never lose data.
        let truncate = |this: &mut Self| -> Result<()> {
            for s in 0..this.logs.len() {
                failpoint::check("compact.truncate")?;
                let p = Self::log_path_in(&this.dir, s);
                std::fs::write(&p, [])?;
                this.logs[s] = FrameWriter::open(&p, false, "delta.append")?;
            }
            failpoint::check("compact.truncate")?;
            let p = Self::commit_path_in(&this.dir);
            std::fs::write(&p, [])?;
            this.commit = FrameWriter::open(&p, false, "delta.commit")?;
            Ok(())
        };
        if let Err(e) = truncate(self) {
            self.poisoned = true;
            return Err(e);
        }

        for name in self.store.collections_with_prefix("tokens__e") {
            match Self::collection_epoch(&name) {
                Some(e) if e != new_epoch => self.store.drop_collection(&name)?,
                _ => {}
            }
        }
        self.store.checkpoint()
    }
}

impl DurableTokenStore<ShardedTokenDatabase> {
    /// Grow the durable store by one shard while keeping every guarantee:
    /// compact at N (so no N-routed frame outlives the old routing), grow
    /// the in-memory store (movers only — see
    /// [`ShardedTokenDatabase::grow_one_shard`]), open the new shard's
    /// log, and compact at N+1. The second compaction's manifest swap is
    /// the reshard's commit point: a crash anywhere earlier recovers at N
    /// shards with all data, and the grow reruns. Returns the number of
    /// records moved.
    pub fn grow_one_shard(&mut self) -> Result<usize> {
        self.compact()?;
        let moved = self.inner.grow_one_shard();
        let grown = (|| -> Result<()> {
            let s = self.logs.len();
            let p = Self::log_path_in(&self.dir, s);
            std::fs::write(&p, [])?;
            self.logs
                .push(FrameWriter::open(&p, false, "delta.append")?);
            self.compact()
        })();
        match grown {
            Ok(()) => Ok(moved),
            Err(e) => {
                // The in-memory store is at N+1 but the durable state is
                // still N: block further writes so nothing is logged
                // under a routing the manifest does not record.
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

/// The infallible [`TokenStore`] surface: reads delegate to the inner
/// store; writes go through the durable `try_*` paths and, on a log
/// failure, apply **nothing** (the handle is poisoned — see
/// [`DurableTokenStore::poisoned`] — and a batch is never half-applied).
impl<S: DeltaStore> TokenStore for DurableTokenStore<S> {
    fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }

    fn for_each_sound_mate<'a, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        f: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(u32, &'a TokenRecord) -> ControlFlow<()>,
    {
        self.inner.for_each_sound_mate(query, scratch, f)
    }

    fn fan_out_sound_mates<'a, M, R, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        map: M,
        sink: F,
    ) -> ControlFlow<()>
    where
        M: Fn(u32, &'a TokenRecord) -> Option<R> + Sync,
        R: Send,
        F: FnMut(R) -> ControlFlow<()>,
    {
        self.inner.fan_out_sound_mates(query, scratch, map, sink)
    }

    fn get(&self, token: &str) -> Option<&TokenRecord> {
        self.inner.get(token)
    }

    fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_histogram(
            "cryptext_durable_append_us",
            "Durable-ingest batch append latency (shard frames + commit record, microseconds)",
            &[],
            &self.append_us,
        );
        registry.register_histogram(
            "cryptext_durable_fsync_us",
            "Durable-ingest drain-flush sync latency (microseconds)",
            &[],
            &self.fsync_us,
        );
        registry.register_histogram(
            "cryptext_durable_compact_us",
            "Durable-ingest compaction latency (microseconds)",
            &[],
            &self.compact_us,
        );
        self.inner.register_metrics(registry);
    }

    fn stats(&self) -> TokenStats {
        self.inner.stats()
    }

    fn unique_tokens(&self) -> usize {
        self.inner.unique_tokens()
    }

    fn clean_sentences(&self) -> &[String] {
        self.inner.clean_sentences()
    }

    fn soundex(&self, k: usize) -> Result<&CustomSoundex> {
        self.inner.soundex(k)
    }

    fn hashmap_view(&self, k: usize) -> Result<Vec<(String, Vec<String>)>> {
        self.inner.hashmap_view(k)
    }

    fn ingest_token(&mut self, token: &str) {
        let _ = self.try_ingest_token(token);
    }

    fn ingest_text(&mut self, text: &str) -> usize {
        self.try_ingest_text(text).unwrap_or(0)
    }

    fn ingest_texts<T: AsRef<str> + Sync>(&mut self, texts: &[T]) -> usize {
        self.try_ingest_texts(texts).unwrap_or(0)
    }

    fn record_clean_sentence(&mut self, text: &str) {
        // Clean sentences are LM-training scratch state; no persist path
        // stores them, so the delta logs do not either.
        self.inner.record_clean_sentence(text);
    }

    fn seed_lexicon(&mut self) {
        let _ = self.try_seed_lexicon();
    }

    fn persist_to(&self, store: &Database, collection: &str) -> Result<()> {
        // A monolithic export of the current state — unrelated to the
        // store's own epoch snapshots (and pinned byte-identical to a
        // never-crashed store's export by the recovery tests).
        self.inner.persist_to(store, collection)
    }

    fn load_from(_store: &Database, _collection: &str) -> Result<Self> {
        Err(Error::invalid(
            "DurableTokenStore recovers via DurableTokenStore::open, not load_from",
        ))
    }
}

fn encode_delta_frame(seq: u64, ops: &[(String, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + ops.len() * 20);
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(FRAME_DELTAS);
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for (token, delta) in ops {
        out.extend_from_slice(&(token.len() as u32).to_le_bytes());
        out.extend_from_slice(token.as_bytes());
        out.extend_from_slice(&delta.to_le_bytes());
    }
    out
}

fn encode_seed_frame(seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(FRAME_SEED);
    out
}

fn take<'a>(data: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if data.len() < n {
        return Err(Error::corrupt("delta frame underrun"));
    }
    let (head, rest) = data.split_at(n);
    *data = rest;
    Ok(head)
}

fn take_u32(data: &mut &[u8]) -> Result<u32> {
    Ok(u32::from_le_bytes(take(data, 4)?.try_into().unwrap()))
}

fn take_u64(data: &mut &[u8]) -> Result<u64> {
    Ok(u64::from_le_bytes(take(data, 8)?.try_into().unwrap()))
}

/// Decode a shard-log frame. CRC framing already vouches for integrity,
/// but decoding still never panics on any byte sequence (proptested).
fn decode_shard_frame(frame: &[u8]) -> Result<(u64, FrameBody)> {
    let mut d = frame;
    let seq = take_u64(&mut d)?;
    let kind = take(&mut d, 1)?[0];
    match kind {
        FRAME_SEED => {
            if !d.is_empty() {
                return Err(Error::corrupt("seed frame with trailing bytes"));
            }
            Ok((seq, FrameBody::SeedLexicon))
        }
        FRAME_DELTAS => {
            let n = take_u32(&mut d)? as usize;
            // Each op occupies ≥ 12 bytes; reject fabricated counts
            // before reserving memory for them.
            if n > d.len() / 12 + 1 {
                return Err(Error::corrupt("delta frame op count exceeds payload"));
            }
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let len = take_u32(&mut d)? as usize;
                let token = std::str::from_utf8(take(&mut d, len)?)
                    .map_err(|_| Error::corrupt("delta frame token not utf-8"))?
                    .to_string();
                let delta = take_u64(&mut d)?;
                ops.push((token, delta));
            }
            if !d.is_empty() {
                return Err(Error::corrupt("delta frame with trailing bytes"));
            }
            Ok((seq, FrameBody::Deltas(ops)))
        }
        _ => Err(Error::corrupt("unknown delta frame kind")),
    }
}

fn decode_commit_frame(frame: &[u8]) -> Result<u64> {
    if frame.len() != 8 {
        return Err(Error::corrupt("commit frame must be exactly 8 bytes"));
    }
    let mut d = frame;
    take_u64(&mut d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::Crawler;
    use crate::lookup::LookupParams;
    use crate::CrypText;
    use cryptext_stream::{SocialPlatform, StreamConfig};

    fn tmp_dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "cryptext-durable-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn opts(shards: usize) -> DurableOptions {
        DurableOptions {
            shards,
            sync_every_batch: false,
        }
    }

    /// A mixed workload of ingest batches and compactions. Every batch
    /// carries at least one unique token, so each committed prefix is
    /// distinguishable from every other — the crash sweeps rely on that
    /// to identify exactly which prefix a recovery landed on.
    enum Step {
        Ingest(&'static [&'static str]),
        Compact,
    }

    const WORKLOAD: [Step; 6] = [
        Step::Ingest(&["the dirrty republicans", "thee dirty repubLIEcans"]),
        Step::Compact,
        Step::Ingest(&["vacc1ne mandate"]),
        Step::Ingest(&["thinking about suic1de"]),
        Step::Compact,
        Step::Ingest(&["the demokRATs and the democrats"]),
    ];

    fn ingest_batches() -> Vec<&'static [&'static str]> {
        WORKLOAD
            .iter()
            .filter_map(|s| match s {
                Step::Ingest(b) => Some(*b),
                Step::Compact => None,
            })
            .collect()
    }

    /// The reference state after the first `k` ingest batches (compactions
    /// are state-neutral), built through the ordinary in-memory path.
    fn prefix_store<S: DeltaStore>(shards: usize, k: usize) -> S {
        let mut db = S::fresh(shards);
        for batch in &ingest_batches()[..k] {
            TokenStore::ingest_texts(&mut db, batch);
        }
        db
    }

    fn apply<S: DeltaStore>(db: &mut DurableTokenStore<S>, step: &Step) -> Result<()> {
        match step {
            Step::Ingest(batch) => {
                db.try_ingest_texts(batch)?;
            }
            Step::Compact => db.compact()?,
        }
        Ok(())
    }

    fn same_flat(a: &TokenDatabase, b: &TokenDatabase) -> bool {
        a.records() == b.records()
    }

    fn same_sharded(a: &ShardedTokenDatabase, b: &ShardedTokenDatabase) -> bool {
        TokenStore::num_shards(a) == TokenStore::num_shards(b)
            && (0..TokenStore::num_shards(a)).all(|s| a.shard(s).records() == b.shard(s).records())
    }

    /// Kill the process model at every caller-thread write boundary of the
    /// mixed workload (wildcard failpoint, hit 1, 2, 3, …): after each
    /// crash, recovery must land byte-identical on some committed-batch
    /// prefix — never losing a committed batch, never surfacing a
    /// half-applied one — and resuming the missing batches must reach the
    /// uninterrupted reference exactly.
    fn crash_sweep<S: DeltaStore>(tag: &str, shards: usize, same: fn(&S, &S) -> bool) {
        let n_batches = ingest_batches().len();
        let full: S = prefix_store(shards, n_batches);

        // A clean run counts the boundaries the sweep must cover.
        let dir = tmp_dir(&format!("sweep-{tag}-count"));
        failpoint::reset_hits();
        {
            let mut db = DurableTokenStore::<S>::open(&dir, opts(shards)).unwrap();
            for step in &WORKLOAD {
                apply(&mut db, step).unwrap();
            }
        }
        let total = failpoint::hits("*");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            total > 10,
            "workload should cross many write boundaries, got {total}"
        );

        for i in 1..=total {
            let dir = tmp_dir(&format!("sweep-{tag}-{i}"));
            failpoint::reset_hits();
            let guard = failpoint::arm("*", &format!("kill@{i}"));
            let mut applied = 0usize;
            let outcome = (|| -> Result<()> {
                let mut db = DurableTokenStore::<S>::open(&dir, opts(shards))?;
                for step in &WORKLOAD {
                    apply(&mut db, step)?;
                    if matches!(step, Step::Ingest(_)) {
                        applied += 1;
                    }
                }
                Ok(())
            })();
            drop(guard);
            if let Err(e) = &outcome {
                assert!(failpoint::is_injected(e), "kill@{i}: unexpected error {e}");
            }

            let mut db = DurableTokenStore::<S>::open(&dir, opts(shards))
                .unwrap_or_else(|e| panic!("kill@{i}: recovery must never fail: {e}"));
            let k = (0..=n_batches)
                .find(|&k| same(&prefix_store(shards, k), db.inner()))
                .unwrap_or_else(|| {
                    panic!("kill@{i}: recovered state is not a committed-batch prefix")
                });
            assert!(
                k >= applied,
                "kill@{i}: lost a committed batch (prefix {k} < applied {applied})"
            );
            assert!(
                k <= applied + 1,
                "kill@{i}: more than the in-flight batch became visible"
            );
            if outcome.is_ok() {
                assert_eq!(k, n_batches, "kill@{i}: a clean run keeps every batch");
            }

            // Resume the batches the crash cost and land on the reference.
            for batch in &ingest_batches()[k..] {
                db.try_ingest_texts(batch).unwrap();
            }
            db.compact().unwrap();
            drop(db);
            let db = DurableTokenStore::<S>::open(&dir, opts(shards)).unwrap();
            assert!(
                same(&full, db.inner()),
                "kill@{i}: resumed state diverges from the reference"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn kill_at_every_boundary_flat_recovers_a_committed_prefix() {
        crash_sweep::<TokenDatabase>("flat", 1, same_flat);
    }

    #[test]
    fn kill_at_every_boundary_sharded_recovers_a_committed_prefix() {
        crash_sweep::<ShardedTokenDatabase>("sharded", 2, same_sharded);
    }

    #[test]
    fn uncompacted_batches_survive_reopen() {
        let dir = tmp_dir("reopen-flat");
        {
            let mut dur = DurableTokenStore::<TokenDatabase>::open(&dir, opts(1)).unwrap();
            for batch in &ingest_batches() {
                dur.try_ingest_texts(batch).unwrap();
            }
            assert_eq!(dur.epoch(), 0, "no compaction ran");
        }
        let dur = DurableTokenStore::<TokenDatabase>::open(&dir, opts(1)).unwrap();
        let want: TokenDatabase = prefix_store(1, ingest_batches().len());
        assert_eq!(dur.inner().records(), want.records());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_folds_logs_and_preserves_state() {
        let dir = tmp_dir("compact");
        let batches = ingest_batches();
        let mut dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(2)).unwrap();
        dur.try_ingest_texts(batches[0]).unwrap();
        dur.try_ingest_texts(batches[1]).unwrap();
        assert_eq!(dur.epoch(), 0);
        dur.compact().unwrap();
        assert_eq!(dur.epoch(), 1);
        for s in 0..2 {
            let p = DurableTokenStore::<ShardedTokenDatabase>::log_path_in(&dir, s);
            assert_eq!(
                std::fs::metadata(&p).unwrap().len(),
                0,
                "delta log {s} truncated after compaction"
            );
        }
        let cp = DurableTokenStore::<ShardedTokenDatabase>::commit_path_in(&dir);
        assert_eq!(std::fs::metadata(&cp).unwrap().len(), 0);

        // Post-compaction batches replay on top of the epoch snapshot.
        dur.try_ingest_texts(batches[2]).unwrap();
        dur.try_ingest_texts(batches[3]).unwrap();
        drop(dur);
        let dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(2)).unwrap();
        assert_eq!(dur.epoch(), 1);
        let want: ShardedTokenDatabase = prefix_store(2, 4);
        assert!(same_sharded(&want, dur.inner()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The ISSUE acceptance pin: a recovered delta-log store is
    /// byte-identical to a monolithic persist/load of the same final state.
    #[test]
    fn recovered_state_matches_monolithic_persist_round_trip() {
        let dir = tmp_dir("monolithic");
        let batches = ingest_batches();
        let mut dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(3)).unwrap();
        dur.try_ingest_texts(batches[0]).unwrap();
        dur.try_ingest_texts(batches[1]).unwrap();
        dur.compact().unwrap();
        dur.try_ingest_texts(batches[2]).unwrap();
        dur.try_ingest_texts(batches[3]).unwrap();

        // Monolithic export of the live state, round-tripped.
        let mono = Database::in_memory();
        TokenStore::persist_to(&dur, &mono, "tokens").unwrap();
        let mono_loaded = ShardedTokenDatabase::load_from(&mono, "tokens").unwrap();

        drop(dur);
        let dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(3)).unwrap();
        assert!(same_sharded(&mono_loaded, dur.inner()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_poisons_handle_until_reopen() {
        let dir = tmp_dir("torn");
        let mut dur = DurableTokenStore::<TokenDatabase>::open(&dir, opts(1)).unwrap();
        dur.try_ingest_text("the dirrty republicans").unwrap();

        failpoint::reset_hits();
        let guard = failpoint::arm("delta.append", "torn@1:5");
        let err = dur.try_ingest_text("vacc1ne mandate").unwrap_err();
        assert!(failpoint::is_injected(&err));
        assert!(dur.poisoned());
        drop(guard);

        // Poisoned stays poisoned after disarm: torn bytes sit at the log
        // tail, so appending would shadow later frames from recovery.
        assert!(dur.try_ingest_text("mandate").is_err());
        assert_eq!(TokenStore::ingest_text(&mut dur, "mandate"), 0);
        assert_eq!(dur.inner().records().len(), 3, "nothing was applied");
        drop(dur);

        // Reopen truncates the torn tail: pre-batch state, writable again.
        let mut dur = DurableTokenStore::<TokenDatabase>::open(&dir, opts(1)).unwrap();
        assert!(!dur.poisoned());
        let mut want = TokenDatabase::in_memory();
        want.ingest_text("the dirrty republicans");
        assert_eq!(dur.inner().records(), want.records());
        dur.try_ingest_text("vacc1ne mandate").unwrap();
        drop(dur);
        let dur = DurableTokenStore::<TokenDatabase>::open(&dir, opts(1)).unwrap();
        want.ingest_text("vacc1ne mandate");
        assert_eq!(dur.inner().records(), want.records());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gated_tokens_are_neither_logged_nor_applied() {
        let dir = tmp_dir("gated");
        let mut dur = DurableTokenStore::<TokenDatabase>::open(&dir, opts(1)).unwrap();
        dur.try_ingest_token("a").unwrap(); // under the 2-char floor
        dur.try_ingest_token("💀💀").unwrap(); // no phonetic content
        assert_eq!(dur.inner().records().len(), 0);
        let log = DurableTokenStore::<TokenDatabase>::log_path_in(&dir, 0);
        assert_eq!(std::fs::metadata(&log).unwrap().len(), 0, "nothing logged");

        dur.try_ingest_token("republicans").unwrap();
        assert_eq!(dur.inner().records().len(), 1);
        assert!(std::fs::metadata(&log).unwrap().len() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_lexicon_survives_reopen() {
        let dir = tmp_dir("seed");
        {
            let mut dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(3)).unwrap();
            dur.try_ingest_text("the dirrty republicans").unwrap();
            dur.try_seed_lexicon().unwrap();
            dur.try_ingest_text("vacc1ne mandate").unwrap();
        }
        let dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(3)).unwrap();
        let mut want = ShardedTokenDatabase::in_memory(3);
        TokenStore::ingest_text(&mut want, "the dirrty republicans");
        TokenStore::seed_lexicon(&mut want);
        TokenStore::ingest_text(&mut want, "vacc1ne mandate");
        assert!(same_sharded(&want, dur.inner()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_grow_commits_or_recovers_at_old_shard_count() {
        let dir = tmp_dir("grow");
        let texts = [
            "the dirrty republicans",
            "thee dirty repubLIEcans",
            "the dirty republic@@ns",
            "the demokRATs and the democrats",
            "thinking about suic1de",
            "suicide prevention matters",
        ];
        let mut dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(2)).unwrap();
        for t in texts {
            dur.try_ingest_text(t).unwrap();
        }

        let mut before_grow = ShardedTokenDatabase::in_memory(2);
        let mut after_grow = ShardedTokenDatabase::in_memory(2);
        for t in texts {
            TokenStore::ingest_text(&mut before_grow, t);
            TokenStore::ingest_text(&mut after_grow, t);
        }
        let moved_want = after_grow.grow_one_shard();

        // Crash at the second compaction's manifest swap — one step short
        // of the reshard's commit point.
        failpoint::reset_hits();
        let guard = failpoint::arm("compact.manifest.swap", "kill@2");
        let err = dur.grow_one_shard().unwrap_err();
        assert!(failpoint::is_injected(&err));
        assert!(dur.poisoned(), "in-memory N+1 vs durable N must wedge");
        drop(guard);
        drop(dur);

        // Recovery: still 2 shards, nothing lost; the grow simply reruns.
        let mut dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(2)).unwrap();
        assert_eq!(TokenStore::num_shards(dur.inner()), 2);
        assert!(same_sharded(&before_grow, dur.inner()));
        let moved = dur.grow_one_shard().unwrap();
        assert_eq!(moved, moved_want);
        assert_eq!(TokenStore::num_shards(dur.inner()), 3);
        assert!(same_sharded(&after_grow, dur.inner()));

        // Post-grow ingest routes under the new ring and survives reopen.
        dur.try_ingest_text("vacc1ne mandate").unwrap();
        TokenStore::ingest_text(&mut after_grow, "vacc1ne mandate");
        drop(dur);
        let dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(2)).unwrap();
        assert_eq!(TokenStore::num_shards(dur.inner()), 3);
        assert!(same_sharded(&after_grow, dur.inner()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The crawler (§III-F) drives durable ingest end to end: a stream
    /// crawl that crashes repeatedly — mid-batch and mid-compaction —
    /// and resumes from the persisted cursor ingests every post exactly
    /// once, landing byte-identical to an uninterrupted crawl.
    #[test]
    fn crawler_crash_resume_ingests_every_post_exactly_once() {
        let p = SocialPlatform::simulate(StreamConfig {
            n_posts: 60,
            seed: 11,
            ..StreamConfig::default()
        });
        let mut reference = ShardedTokenDatabase::in_memory(2);
        Crawler::new().run_once(&p, &mut reference, 0);

        let dir = tmp_dir("crawler");
        let mut dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(2)).unwrap();
        let mut crawler = Crawler::new();
        let mut good_cursor;
        let mut crashes = 0usize;
        let mut posts_done = 0usize;
        loop {
            // Arm a kill a few dozen write boundaries out, then crawl one
            // post at a time (with periodic compactions) until it fires or
            // the stream drains.
            failpoint::reset_hits();
            let drained = {
                let _guard = failpoint::arm("*", "kill@40");
                let mut drained = false;
                loop {
                    // Snapshot the resume point before the in-flight post:
                    // a poisoned ingest applied nothing, so rewind to it.
                    good_cursor = crawler.cursor();
                    let stats = crawler.run_once(&p, &mut dur, 1);
                    if dur.poisoned() {
                        crashes += 1;
                        break;
                    }
                    if stats.posts == 0 {
                        drained = true;
                        break;
                    }
                    posts_done += 1;
                    if posts_done.is_multiple_of(20) && dur.compact().is_err() {
                        // The post itself committed; resume after it.
                        good_cursor = crawler.cursor();
                        crashes += 1;
                        break;
                    }
                }
                drained
            };
            if drained {
                break;
            }
            dur = DurableTokenStore::open(&dir, opts(2)).unwrap();
            crawler = Crawler::from_cursor(good_cursor);
        }
        assert!(
            crashes >= 2,
            "the sweep should crash mid-crawl, got {crashes}"
        );
        assert!(
            same_sharded(&reference, dur.inner()),
            "crash/resume crawl must equal the uninterrupted crawl"
        );
        drop(dur);
        let dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(2)).unwrap();
        assert!(same_sharded(&reference, dur.inner()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_store_serves_lookups_through_cryptext() {
        let dir = tmp_dir("cryptext");
        {
            let mut dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(2)).unwrap();
            for t in [
                "the dirrty republicans",
                "thee dirty repubLIEcans",
                "the dirty republic@@ns",
            ] {
                dur.try_ingest_text(t).unwrap();
            }
            dur.compact().unwrap();
        }
        let dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts(2)).unwrap();
        let cx = CrypText::with_store(dur);
        let hits = cx.look_up("republicans", LookupParams::new(1, 1)).unwrap();
        let tokens: Vec<&str> = hits.iter().map(|h| h.token.as_str()).collect();
        assert!(tokens.contains(&"republicans"));
        assert!(tokens.contains(&"repubLIEcans"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_from_refuses_durable_stores() {
        let store = Database::in_memory();
        let err = <DurableTokenStore<TokenDatabase> as TokenStore>::load_from(&store, "tokens")
            .err()
            .expect("load_from must refuse");
        assert!(err.to_string().contains("DurableTokenStore::open"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// CRC framing vouches for integrity, but decoding must never
        /// panic on any byte sequence regardless.
        #[test]
        fn decoders_never_panic_on_arbitrary_bytes(
            bytes in proptest::collection::vec(0u8..=255, 0..80),
        ) {
            let _ = decode_shard_frame(&bytes);
            let _ = decode_commit_frame(&bytes);
        }

        #[test]
        fn delta_frames_round_trip(
            seq in 0u64..1_000_000,
            tokens in proptest::collection::vec("[a-z@1]{1,8}", 0..6),
            deltas in proptest::collection::vec(1u64..1_000, 0..6),
        ) {
            let ops: Vec<(String, u64)> = tokens.into_iter().zip(deltas).collect();
            let frame = encode_delta_frame(seq, &ops);
            let (got_seq, body) = decode_shard_frame(&frame).unwrap();
            prop_assert_eq!(got_seq, seq);
            match body {
                FrameBody::Deltas(got) => prop_assert_eq!(got, ops),
                FrameBody::SeedLexicon => prop_assert!(false, "wrong frame kind"),
            }
            let seed = encode_seed_frame(seq);
            prop_assert!(matches!(
                decode_shard_frame(&seed),
                Ok((s, FrameBody::SeedLexicon)) if s == seq
            ));
        }
    }
}
