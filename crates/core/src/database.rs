//! The human-written token database (§III-A): the single-instance backend
//! of the [`crate::store::TokenStore`] trait.
//!
//! Stores **raw case-sensitive tokens** exactly as found in the corpus,
//! encoded with the customized Soundex at every phonetic level `k ∈
//! {0, 1, 2}`, and maintains the `H_k` hash maps from Soundex code to the
//! set of tokens sharing that sound (Table I of the paper).
//!
//! # Storage backends
//!
//! [`TokenDatabase`] is one of two [`crate::store::TokenStore`] backends:
//!
//! * **`TokenDatabase`** (this module) — one in-memory instance, the right
//!   choice for corpora that fit one machine.
//! * **[`crate::shard::ShardedTokenDatabase`]** — N independent
//!   `TokenDatabase` shards behind a consistent-hash router
//!   ([`cryptext_common::hash::jump_hash`] on the token's primary `H_1`
//!   Soundex code), for corpora that need to scale out. Every record lives
//!   in exactly one shard, so shard-local record ids stay dense; the
//!   router remaps them to globally unique ids at the trait boundary
//!   (`global = local * n_shards + shard`). Both backends produce
//!   byte-identical Look Up / Normalization results (proptest-pinned in
//!   `shard.rs`).
//!
//! The engines ([`crate::lookup`], [`crate::normalize`],
//! [`crate::perturb`], [`crate::listening`], [`crate::ingest`]) are generic
//! over the trait and never name a backend.
//!
//! # Hot-path data layout
//!
//! The Look Up read path (§III-B) touches every record in a bucket, so the
//! in-memory layout is organized for scan speed, not update convenience:
//!
//! * **Records are a dense `Vec<TokenRecord>`** addressed by a `u32` id.
//!   Every index (by-token map, buckets) stores ids, never owned strings.
//! * **Soundex codes are interned per level** in a [`CodeIndex`]: each
//!   distinct code gets a dense `u32` code id; `H_k` is then plain
//!   `postings: Vec<Vec<u32>>` indexed by code id, with a side
//!   `FxHashMap<Box<str>, u32>` used only to resolve a query's code
//!   string to its id (one probe per query code, not per candidate).
//! * **Case folding is precomputed at ingest**: [`TokenRecord::folded`]
//!   holds the lowercased form and [`TokenRecord::folded_chars`] its
//!   scalar count, so the per-candidate filter never calls
//!   `to_lowercase()` or decodes chars — it length-prefilters on the
//!   stored count and runs the scratch-buffer bounded Levenshtein
//!   directly on the stored strings.
//! * **Candidate iteration is visitor-based**:
//!   [`TokenDatabase::for_each_sound_mate`] walks the union of a token's
//!   bucket postings, deduplicating across ambiguous codes with a
//!   generation-marked [`SoundScratch`] (O(1) per candidate, no per-query
//!   set allocation) instead of the old `Vec::contains` linear scan. The
//!   visitor may return [`std::ops::ControlFlow::Break`] to stop early.
//! * **Queries encode once**: the walk takes an [`EncodedQuery`] — level,
//!   deduplicated code set, code hashes, case fold — built a single time
//!   per query, so a sharded deployment's N per-shard walks share one
//!   encoding instead of re-running the multi-variant encoder per shard.
//! * **Each per-level code interner keeps a [`Bloom`] summary** of its
//!   interned codes, current by construction (codes are only interned,
//!   never removed). [`TokenDatabase::may_match`] answers "could any of
//!   this query's codes be indexed here?" without probing the map — the
//!   skip-empty shard routing of `shard.rs` is built on it.
//!
//! Ingest can be parallelized with [`TokenDatabase::ingest_texts`], which
//! computes tokenization and phonetic codes for a batch of texts across
//! cores and then merges sequentially in input order, producing a database
//! byte-identical to one built by calling
//! [`TokenDatabase::ingest_text`] per text.
//!
//! [`TokenDatabase::persist_to`] and [`TokenDatabase::load_from`] move the
//! whole database through the embedded document store (the MongoDB
//! substitute), with the `codes_k*` array fields secondary-indexed so
//! bucket queries stay cheap on the persistent side too.

use std::cell::RefCell;
use std::ops::ControlFlow;

use cryptext_common::failpoint;
use cryptext_common::hash::{fx_hash_str, Bloom, FxHashMap};
use cryptext_common::par::par_map;
use cryptext_common::{Error, Result};
use cryptext_docstore::{Database, Document, Filter, Value};
use cryptext_phonetics::{CustomSoundex, SoundexCode, MAX_PHONETIC_LEVEL};
use cryptext_tokenizer::tokenize_spans;

/// Number of materialized phonetic levels (`k = 0, 1, 2`).
pub const NUM_LEVELS: usize = MAX_PHONETIC_LEVEL + 1;

/// One stored token with its phonetic signature.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenRecord {
    /// The raw case-sensitive surface form.
    pub token: String,
    /// The case-folded form, precomputed at ingest so the Look Up filter
    /// never lowercases per candidate.
    pub folded: String,
    /// Unicode scalar count of [`TokenRecord::folded`], precomputed for the
    /// Levenshtein length pre-filter.
    pub folded_chars: u32,
    /// Number of corpus occurrences (0 for lexicon-seeded entries).
    pub count: u64,
    /// Is this a correctly-spelled dictionary word?
    pub is_english: bool,
    /// All Soundex codes per phonetic level (ambiguous leet glyphs give
    /// several codes per level).
    pub codes: [Vec<SoundexCode>; NUM_LEVELS],
}

/// Aggregate database statistics (the paper quotes >2M tokens across
/// >400K sounds for the production instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenStats {
    /// Distinct case-sensitive tokens.
    pub unique_tokens: usize,
    /// Total token occurrences ingested.
    pub total_occurrences: u64,
    /// Distinct Soundex codes per level.
    pub unique_sounds: [usize; NUM_LEVELS],
    /// How many tokens are dictionary words.
    pub english_tokens: usize,
}

/// One level's interned code table: dense code ids over append-only
/// posting lists. The string map is touched once per *query code*; the
/// per-candidate scan runs over plain `u32` postings. A [`Bloom`] summary
/// of the interned code set rides along (kept current by `intern`, which
/// is the only insertion point), so a shard router can rule the whole
/// level out for a query without probing the map — the skip-empty routing
/// of [`crate::shard::ShardedTokenDatabase`].
#[derive(Debug, Default)]
struct CodeIndex {
    ids: FxHashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
    postings: Vec<Vec<u32>>,
    summary: Bloom,
}

impl CodeIndex {
    #[inline]
    fn id_of(&self, code: &str) -> Option<u32> {
        self.ids.get(code).copied()
    }

    fn intern(&mut self, code: &str) -> u32 {
        if let Some(&id) = self.ids.get(code) {
            return id;
        }
        let id = self.names.len() as u32;
        let boxed: Box<str> = code.into();
        self.summary.insert(fx_hash_str(&boxed));
        self.names.push(boxed.clone());
        self.ids.insert(boxed, id);
        self.postings.push(Vec::new());
        if self.summary.needs_grow() {
            self.rebuild_summary();
        }
        id
    }

    /// Rebuild the Bloom summary from the exact interned code set, sized
    /// for the current count. The interner is append-only, so the rebuilt
    /// filter covers precisely the same keys at a healthy fill ratio —
    /// the growth policy that keeps shard skip rates high as a shard's
    /// code universe outgrows the summary it started with.
    fn rebuild_summary(&mut self) {
        let mut summary = Bloom::with_capacity(self.names.len());
        for name in &self.names {
            summary.insert(fx_hash_str(name));
        }
        self.summary = summary;
    }

    fn add(&mut self, code: &str, record: u32) {
        let id = self.intern(code);
        self.postings[id as usize].push(record);
    }

    #[inline]
    fn members(&self, code: &str) -> &[u32] {
        self.id_of(code)
            .map(|id| self.postings[id as usize].as_slice())
            .unwrap_or(&[])
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// A Look Up query encoded **exactly once**: the phonetic level, the
/// deduplicated Soundex codes of every visual reading at that level (with
/// their Fx hashes, precomputed for Bloom routing), and the case fold the
/// distance filter compares against.
///
/// Before this type existed, every shard of a
/// [`crate::shard::ShardedTokenDatabase`] re-ran the multi-variant Soundex
/// encoder on the raw token — the dominant per-shard overhead of a
/// cross-shard query. Engines now build one `EncodedQuery` per query
/// (reusing its buffers across queries via
/// [`crate::lookup::LookupScratch`]) and thread it through the
/// [`crate::store::TokenStore`] walk methods, so the encoding cost is
/// independent of the shard count.
///
/// Construction validates the phonetic level, so every walk taking an
/// `EncodedQuery` is infallible — the `Result` lives at the encode site.
#[derive(Debug, Default, Clone)]
pub struct EncodedQuery {
    k: usize,
    codes: Vec<SoundexCode>,
    code_hashes: Vec<u64>,
    folded: String,
    folded_chars: usize,
}

impl EncodedQuery {
    /// An empty query holder (encode into it with [`EncodedQuery::encode`]).
    pub fn new() -> Self {
        EncodedQuery::default()
    }

    /// Encode `token` at phonetic level `k`, reusing this query's buffers.
    /// Errors on an unmaterialized level (same contract as
    /// [`TokenDatabase::check_level`]).
    pub fn encode(&mut self, token: &str, k: usize) -> Result<()> {
        TokenDatabase::check_level(k)?;
        self.k = k;
        // The per-level encoders are stateless (`CustomSoundex::new(k)`),
        // so the query encodes without borrowing any backend.
        CustomSoundex::new(k).encode_all_into(token, &mut self.codes);
        self.code_hashes.clear();
        self.code_hashes
            .extend(self.codes.iter().map(|c| fx_hash_str(c.as_str())));
        // ASCII folding equals `str::to_lowercase` for ASCII input and
        // reuses the buffer; non-ASCII takes the allocating Unicode path
        // (final-sigma etc. must match the reference engines).
        self.folded.clear();
        if token.is_ascii() {
            self.folded.push_str(token);
            self.folded.make_ascii_lowercase();
        } else {
            self.folded = token.to_lowercase();
        }
        self.folded_chars = self.folded.chars().count();
        Ok(())
    }

    /// Encode a fresh query for `token` at level `k`.
    pub fn for_token(token: &str, k: usize) -> Result<Self> {
        let mut q = EncodedQuery::new();
        q.encode(token, k)?;
        Ok(q)
    }

    /// The phonetic level this query was encoded at (always valid).
    #[inline]
    pub fn level(&self) -> usize {
        self.k
    }

    /// The deduplicated Soundex codes of every visual reading, primary
    /// reading first.
    #[inline]
    pub fn codes(&self) -> &[SoundexCode] {
        &self.codes
    }

    /// Fx hashes of [`EncodedQuery::codes`], index-aligned. These feed the
    /// per-shard Bloom summaries, so routing never rehashes per shard.
    #[inline]
    pub fn code_hashes(&self) -> &[u64] {
        &self.code_hashes
    }

    /// The case-folded form of the encoded token.
    #[inline]
    pub fn folded(&self) -> &str {
        &self.folded
    }

    /// Unicode scalar count of [`EncodedQuery::folded`].
    #[inline]
    pub fn folded_chars(&self) -> usize {
        self.folded_chars
    }
}

/// Generation-marked visited set: the working memory of
/// [`TokenDatabase::for_each_sound_mate`].
///
/// Marking a record visited is one `u32` compare-and-store; starting a new
/// query is one epoch increment (no clearing). Reuse one instance per
/// thread or per bulk request.
#[derive(Debug, Default)]
pub struct SoundScratch {
    visited: Vec<u32>,
    epoch: u32,
    /// Matching-shard buffer for the sharded fan-out dispatch, kept here
    /// so routing a query allocates nothing (the shard router borrows it
    /// via `mem::take` around its walk).
    pub(crate) fan_out: Vec<u32>,
}

impl SoundScratch {
    /// Fresh scratch space (allocates lazily on first use).
    pub fn new() -> Self {
        SoundScratch::default()
    }

    fn begin(&mut self, n_records: usize) {
        if self.visited.len() < n_records {
            self.visited.resize(n_records, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: old marks could alias. Reset once per 2^32.
            self.visited.fill(0);
            self.epoch = 1;
        }
    }

    /// Returns true on the first visit of `id` this epoch.
    #[inline]
    fn mark(&mut self, id: u32) -> bool {
        let slot = &mut self.visited[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

thread_local! {
    static SHARED_SOUND_SCRATCH: RefCell<SoundScratch> = RefCell::new(SoundScratch::new());
}

/// A word token prepared off-thread during parallel ingest. Shared with
/// the shard router, which prepares against the routed shard's state and
/// scatters the words into per-shard merge queues.
pub(crate) enum PreparedWord {
    /// Too short or no phonetic content; counts toward the token total but
    /// is not stored.
    Skip,
    /// Already in the database when the batch was prepared; the record id
    /// was resolved during the parallel phase, so the sequential merge
    /// bumps the count directly without re-probing `by_token` (the extra
    /// probe per token used to make batch ingest slower than sequential on
    /// single-core hosts).
    Known(u32),
    /// Repeat of a new token first seen earlier in the same text; its
    /// `Fresh` occurrence merges first, so the merge resolves this one
    /// against `by_token`.
    Repeat(String),
    /// New token with phonetic codes precomputed in the parallel phase.
    Fresh(String, Box<[Vec<SoundexCode>; NUM_LEVELS]>),
}

/// One text prepared off-thread during parallel ingest.
struct PreparedText {
    words: Vec<PreparedWord>,
    any_word: bool,
    all_english: bool,
}

/// Cap on accumulated LM training sentences, shared by both
/// [`TokenStore`](crate::store::TokenStore) backends so their
/// `clean_sentences()` output stays byte-identical.
pub(crate) const MAX_CLEAN_SENTENCES: usize = 50_000;

/// The token database.
pub struct TokenDatabase {
    soundex: [CustomSoundex; NUM_LEVELS],
    records: Vec<TokenRecord>,
    by_token: FxHashMap<String, u32>,
    /// `H_k`: interned Soundex code → record ids sharing that sound.
    buckets: [CodeIndex; NUM_LEVELS],
    /// Clean sentences accumulated for LM training (bounded).
    clean_sentences: Vec<String>,
    max_clean_sentences: usize,
}

impl Default for TokenDatabase {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl TokenDatabase {
    /// An empty in-memory database.
    pub fn in_memory() -> Self {
        TokenDatabase {
            soundex: [
                CustomSoundex::new(0),
                CustomSoundex::new(1),
                CustomSoundex::new(2),
            ],
            records: Vec::new(),
            by_token: FxHashMap::default(),
            buckets: [
                CodeIndex::default(),
                CodeIndex::default(),
                CodeIndex::default(),
            ],
            clean_sentences: Vec::new(),
            max_clean_sentences: MAX_CLEAN_SENTENCES,
        }
    }

    /// An empty database pre-seeded with the English lexicon (count 0,
    /// `is_english = true`). Normalization needs dictionary words present
    /// even when the corpus never used them cleanly.
    pub fn with_lexicon() -> Self {
        let mut db = Self::in_memory();
        db.seed_lexicon();
        db
    }

    /// Seed/refresh every dictionary word as an `is_english` record.
    pub fn seed_lexicon(&mut self) {
        for w in cryptext_corpus::english_lexicon() {
            self.upsert_token(w, 0);
        }
    }

    fn compute_codes(&self, token: &str) -> [Vec<SoundexCode>; NUM_LEVELS] {
        [
            self.soundex[0].encode_all(token),
            self.soundex[1].encode_all(token),
            self.soundex[2].encode_all(token),
        ]
    }

    fn insert_new(
        &mut self,
        token: &str,
        add_count: u64,
        codes: [Vec<SoundexCode>; NUM_LEVELS],
    ) -> u32 {
        let id = self.records.len() as u32;
        for (k, level_codes) in codes.iter().enumerate() {
            for code in level_codes {
                self.buckets[k].add(code.as_str(), id);
            }
        }
        let folded = token.to_lowercase();
        let folded_chars = folded.chars().count() as u32;
        self.records.push(TokenRecord {
            token: token.to_string(),
            folded,
            folded_chars,
            count: add_count,
            is_english: cryptext_corpus::is_english_word(token),
            codes,
        });
        self.by_token.insert(token.to_string(), id);
        id
    }

    /// Insert or count a token with an explicit occurrence delta. Crate
    /// internal: the shard router uses it to reshard existing records and
    /// to seed lexicons without re-running the ingest gates.
    pub(crate) fn upsert_token(&mut self, token: &str, add_count: u64) -> u32 {
        if let Some(&id) = self.by_token.get(token) {
            self.records[id as usize].count += add_count;
            return id;
        }
        let codes = self.compute_codes(token);
        self.insert_new(token, add_count, codes)
    }

    /// Ingest one raw token occurrence (case-sensitive, as the paper's
    /// curation does). Tokens without letter interpretation are skipped.
    pub fn ingest_token(&mut self, token: &str) {
        if token.chars().count() < 2 {
            return;
        }
        if self.soundex[0].encode(token).is_none() {
            return; // no phonetic content
        }
        self.upsert_token(token, 1);
    }

    /// Tokenize `text` and ingest every word token. Returns how many
    /// tokens were ingested. If the sentence is fully in-dictionary it is
    /// also recorded as LM training material.
    pub fn ingest_text(&mut self, text: &str) -> usize {
        let mut n = 0;
        let mut all_english = true;
        let mut any_word = false;
        for tok in tokenize_spans(text) {
            if tok.is_word() {
                let word = tok.text(text);
                any_word = true;
                self.ingest_token(word);
                if !cryptext_corpus::is_english_word(word) {
                    all_english = false;
                }
                n += 1;
            }
        }
        if any_word && all_english && self.clean_sentences.len() < self.max_clean_sentences {
            self.clean_sentences.push(text.to_string());
        }
        n
    }

    /// Ingest a batch of texts, parallelizing the expensive per-token work
    /// (tokenization, confusable folding, Soundex encoding at all levels)
    /// across cores and merging sequentially in input order. Tokens already
    /// present when the batch is prepared carry their resolved record id
    /// into the merge, so the sequential phase is a plain count bump per
    /// known token — no second `by_token` probe.
    ///
    /// The resulting database state — record ids, bucket posting order,
    /// counts, clean sentences — is **identical** to calling
    /// [`TokenDatabase::ingest_text`] on each text in order. Returns the
    /// total word-token count, i.e. the sum of the per-text returns.
    pub fn ingest_texts<S: AsRef<str> + Sync>(&mut self, texts: &[S]) -> usize {
        let prepared: Vec<PreparedText> = par_map(texts, |text| self.prepare_text(text.as_ref()));

        let mut n = 0;
        for (text, prep) in texts.iter().zip(prepared) {
            n += prep.words.len();
            for word in prep.words {
                self.merge_prepared_word(word);
            }
            if prep.any_word
                && prep.all_english
                && self.clean_sentences.len() < self.max_clean_sentences
            {
                self.clean_sentences.push(text.as_ref().to_string());
            }
        }
        n
    }

    /// Apply one prepared word to the store — the sequential half of batch
    /// ingest. Shared with the shard router, which merges each shard's
    /// scattered word queue through this in parallel.
    pub(crate) fn merge_prepared_word(&mut self, word: PreparedWord) {
        match word {
            PreparedWord::Skip => {}
            PreparedWord::Known(id) => {
                self.records[id as usize].count += 1;
            }
            PreparedWord::Repeat(t) => {
                let id = *self
                    .by_token
                    .get(t.as_str())
                    .expect("Repeat follows its Fresh within one text");
                self.records[id as usize].count += 1;
            }
            PreparedWord::Fresh(t, codes) => {
                // An earlier text in this batch may have inserted it
                // already; fall back to a plain count bump.
                if let Some(&id) = self.by_token.get(t.as_str()) {
                    self.records[id as usize].count += 1;
                } else {
                    self.insert_new(&t, 1, *codes);
                }
            }
        }
    }

    /// Consume the database, yielding its records in id order. Crate
    /// internal: live resharding drains a shard and redistributes the
    /// records without re-running the Soundex encoders.
    pub(crate) fn into_records(self) -> Vec<TokenRecord> {
        self.records
    }

    /// Append a fully-formed record, reusing its stored codes (no
    /// re-encoding) and assigning the next dense id. Crate internal: live
    /// resharding rebuilds shards from existing records; the caller
    /// guarantees the token is not already present.
    pub(crate) fn insert_record_raw(&mut self, rec: TokenRecord) {
        let id = self.records.len() as u32;
        for (k, level_codes) in rec.codes.iter().enumerate() {
            for code in level_codes {
                self.buckets[k].add(code.as_str(), id);
            }
        }
        self.by_token.insert(rec.token.clone(), id);
        self.records.push(rec);
    }

    /// Is `token` stored, and at which dense record id? Crate internal:
    /// the shard router's batch-prepare resolves ids against the routed
    /// shard before the merge phase.
    #[inline]
    pub(crate) fn id_of_token(&self, token: &str) -> Option<u32> {
        self.by_token.get(token).copied()
    }

    /// Distinct interned code names at level `k`, in interning order.
    /// Crate internal: the shard router unions these across shards for
    /// [`TokenDatabase::stats`]-compatible sound counts.
    pub(crate) fn code_names(&self, k: usize) -> &[Box<str>] {
        &self.buckets[k].names
    }

    /// The read-only, parallel-safe half of ingest: tokenize and encode.
    /// Token text is borrowed from `text` throughout; owned `String`s are
    /// materialized only for genuinely new tokens.
    fn prepare_text(&self, text: &str) -> PreparedText {
        let mut words = Vec::new();
        let mut any_word = false;
        let mut all_english = true;
        // New tokens already encoded earlier in this text: true = emitted
        // as `Fresh` (later occurrences just count), false = unencodable
        // (later occurrences skip). Avoids re-running the 3-level encoder
        // for every repeat of the same new word.
        let mut local: FxHashMap<&str, bool> = FxHashMap::default();
        for tok in tokenize_spans(text) {
            if !tok.is_word() {
                continue;
            }
            let t = tok.text(text);
            any_word = true;
            if !cryptext_corpus::is_english_word(t) {
                all_english = false;
            }
            let word = if t.chars().count() < 2 {
                PreparedWord::Skip
            } else if let Some(&id) = self.by_token.get(t) {
                PreparedWord::Known(id)
            } else {
                match local.get(t) {
                    Some(true) => PreparedWord::Repeat(t.to_string()),
                    Some(false) => PreparedWord::Skip,
                    None => {
                        let codes = self.compute_codes(t);
                        if codes[0].is_empty() {
                            local.insert(t, false);
                            PreparedWord::Skip // no phonetic content
                        } else {
                            local.insert(t, true);
                            PreparedWord::Fresh(t.to_string(), Box::new(codes))
                        }
                    }
                }
            };
            words.push(word);
        }
        PreparedText {
            words,
            any_word,
            all_english,
        }
    }

    /// Record a known-clean sentence for LM training without ingesting
    /// perturbations (used when gold clean text is available).
    pub fn record_clean_sentence(&mut self, text: &str) {
        if self.clean_sentences.len() < self.max_clean_sentences {
            self.clean_sentences.push(text.to_string());
        }
    }

    /// Clean sentences accumulated so far (LM training corpus).
    pub fn clean_sentences(&self) -> &[String] {
        &self.clean_sentences
    }

    /// Fetch a token's record (case-sensitive).
    pub fn get(&self, token: &str) -> Option<&TokenRecord> {
        self.by_token
            .get(token)
            .map(|&id| &self.records[id as usize])
    }

    /// All records.
    pub fn records(&self) -> &[TokenRecord] {
        &self.records
    }

    /// Validate a phonetic level.
    pub fn check_level(k: usize) -> Result<()> {
        if k >= NUM_LEVELS {
            return Err(Error::invalid(format!(
                "phonetic level k={k} unsupported (materialized: k ≤ {MAX_PHONETIC_LEVEL})"
            )));
        }
        Ok(())
    }

    /// The members of bucket `H_k[code]`, if any.
    pub fn bucket(&self, k: usize, code: &str) -> Result<&[u32]> {
        Self::check_level(k)?;
        Ok(self.buckets[k].members(code))
    }

    /// Might this database index any of `query`'s codes at the query's
    /// level? A [`Bloom`]-summary check over the interned code set: `false`
    /// is authoritative (no bucket can match — the walk would visit
    /// nothing), `true` may be a false positive. The shard router uses
    /// this to skip shards that cannot contain a query's codes.
    #[inline]
    pub fn may_match(&self, query: &EncodedQuery) -> bool {
        let summary = &self.buckets[query.level()].summary;
        query.code_hashes().iter().any(|&h| summary.may_contain(h))
    }

    /// Bit width of the level-`k` code summary — growth diagnostics: the
    /// summary starts at a fixed width and is rebuilt wider once the
    /// interned code set outgrows it, which the shard growth tests pin.
    #[cfg(test)]
    pub(crate) fn summary_bits(&self, k: usize) -> usize {
        self.buckets[k].summary.bit_count()
    }

    /// Visit every record sharing a sound with the pre-encoded `query`
    /// (union over the token's ambiguous readings), including the token
    /// itself if stored. Each record is visited exactly once, in bucket
    /// insertion order — the Look Up hot loop drives this directly.
    ///
    /// The visitor may return [`ControlFlow::Break`] to stop the walk
    /// early; the return value reports whether it did. `scratch` carries
    /// the generation-marked visited set; reusing one instance across
    /// calls makes the walk allocation-free. The query carries its own
    /// codes, so sharded backends walk N shards with **one** encoding.
    pub fn for_each_sound_mate<'a, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        mut f: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(u32, &'a TokenRecord) -> ControlFlow<()>,
    {
        scratch.begin(self.records.len());
        let bucket = &self.buckets[query.level()];
        for code in query.codes() {
            if let Some(cid) = bucket.id_of(code.as_str()) {
                for &id in &bucket.postings[cid as usize] {
                    if scratch.mark(id) {
                        f(id, &self.records[id as usize])?;
                    }
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// All records sharing a sound with `token` at level `k`, deduplicated,
    /// in insertion order. Convenience wrapper over
    /// [`TokenDatabase::for_each_sound_mate`] (same generation-marked
    /// dedup; allocates the query encoding and the returned `Vec`).
    pub fn sound_mates(&self, k: usize, token: &str) -> Result<Vec<&TokenRecord>> {
        let query = EncodedQuery::for_token(token, k)?;
        let mut out = Vec::new();
        let _ = SHARED_SOUND_SCRATCH.with(|scratch| {
            self.for_each_sound_mate(&query, &mut scratch.borrow_mut(), |_, rec| {
                out.push(rec);
                ControlFlow::Continue(())
            })
        });
        Ok(out)
    }

    /// The encoder for level `k`.
    pub fn soundex(&self, k: usize) -> Result<&CustomSoundex> {
        Self::check_level(k)?;
        Ok(&self.soundex[k])
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TokenStats {
        TokenStats {
            unique_tokens: self.records.len(),
            total_occurrences: self.records.iter().map(|r| r.count).sum(),
            unique_sounds: [
                self.buckets[0].len(),
                self.buckets[1].len(),
                self.buckets[2].len(),
            ],
            english_tokens: self.records.iter().filter(|r| r.is_english).count(),
        }
    }

    /// Materialize the `H_k` map at level `k` as `(code, tokens)` pairs,
    /// sorted by code — the exact shape of Table I.
    pub fn hashmap_view(&self, k: usize) -> Result<Vec<(String, Vec<String>)>> {
        Self::check_level(k)?;
        let idx = &self.buckets[k];
        let mut out: Vec<(String, Vec<String>)> = idx
            .names
            .iter()
            .zip(&idx.postings)
            .map(|(code, ids)| {
                let mut tokens: Vec<String> = ids
                    .iter()
                    .map(|&id| self.records[id as usize].token.clone())
                    .collect();
                tokens.sort();
                (code.to_string(), tokens)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Persist every record into `store[collection]`, creating the
    /// collection and per-level code indexes. Existing contents of the
    /// collection are replaced — including the per-shard collections of a
    /// previous *sharded* persist under the same name, so switching a
    /// deployment from the sharded backend to the single instance never
    /// leaks a stale corpus copy.
    ///
    /// Crash-safe: the new state is built in full under a staging name and
    /// committed by a single atomic collection rename; a crash at any point
    /// leaves either the complete previous state or the complete new one.
    /// Stale collections of other layouts are swept only after the commit.
    pub fn persist_to(&self, store: &Database, collection: &str) -> Result<()> {
        let staging = format!("{collection}__staging");
        if store.has_collection(&staging) {
            // Leftover from a persist that crashed before its commit.
            store.drop_collection(&staging)?;
        }
        store.create_collection(&staging)?;
        for k in 0..NUM_LEVELS {
            store.create_index(&staging, &format!("codes_k{k}"))?;
        }
        store.create_index(&staging, "token")?;
        for rec in &self.records {
            let mut doc = Document::new()
                .with("token", rec.token.as_str())
                .with("count", rec.count as i64)
                .with("is_english", rec.is_english);
            for (k, codes) in rec.codes.iter().enumerate() {
                doc.set(
                    format!("codes_k{k}"),
                    Value::Array(codes.iter().map(|c| Value::from(c.as_str())).collect()),
                );
            }
            store.insert(&staging, doc)?;
        }
        failpoint::check("persist.commit")?;
        // The commit point: one WAL record swaps staging over live.
        store.rename_collection(&staging, collection)?;
        // Sweep stale layouts (old sharded generations, crashed stagings)
        // strictly after the commit.
        for name in store.collections_with_prefix(&format!("{collection}__")) {
            store.drop_collection(&name)?;
        }
        Ok(())
    }

    /// Rebuild a database from `store[collection]` (inverse of
    /// [`TokenDatabase::persist_to`]). Clean sentences are not persisted.
    pub fn load_from(store: &Database, collection: &str) -> Result<TokenDatabase> {
        let mut db = TokenDatabase::in_memory();
        let docs = store.find(collection, &Filter::All)?;
        for (_, doc) in docs {
            let token = doc
                .get("token")
                .and_then(Value::as_str)
                .ok_or_else(|| Error::corrupt("token field missing"))?
                .to_string();
            let count = doc
                .get("count")
                .and_then(Value::as_int)
                .ok_or_else(|| Error::corrupt("count field missing"))?;
            let id = db.upsert_token(&token, count.max(0) as u64);
            // Trust recomputed codes over stored ones (algorithm is the
            // source of truth), but verify agreement for corruption safety.
            let rec = &db.records[id as usize];
            if let Some(stored) = doc.get("codes_k1").and_then(Value::as_array) {
                let recomputed: Vec<&str> = rec.codes[1].iter().map(|c| c.as_str()).collect();
                let stored_strs: Vec<&str> = stored.iter().filter_map(Value::as_str).collect();
                if recomputed != stored_strs {
                    return Err(Error::corrupt(format!(
                        "code mismatch for token {token}: {stored_strs:?} vs {recomputed:?}"
                    )));
                }
            }
        }
        Ok(db)
    }
}

impl std::fmt::Debug for TokenDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("TokenDatabase")
            .field("unique_tokens", &s.unique_tokens)
            .field("sounds_k1", &s.unique_sounds[1])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_db() -> TokenDatabase {
        let mut db = TokenDatabase::in_memory();
        for s in [
            "the dirrty republicans",
            "thee dirty repubLIEcans",
            "the dirty republic@@ns",
        ] {
            db.ingest_text(s);
        }
        db
    }

    #[test]
    fn table1_h1_groups() {
        let db = table1_db();
        let view = db.hashmap_view(1).unwrap();
        let get = |code: &str| -> Vec<String> {
            view.iter()
                .find(|(c, _)| c == code)
                .map(|(_, t)| t.clone())
                .unwrap_or_default()
        };
        // Table I, reproduced with our (documented) code literals.
        assert_eq!(get("TH000"), vec!["the", "thee"]);
        assert_eq!(get("DI630"), vec!["dirrty", "dirty"]);
        // The republicans row groups all three variants.
        let rep_code = db.soundex(1).unwrap().encode("republicans").unwrap();
        let group = get(rep_code.as_str());
        assert!(group.contains(&"republicans".to_string()));
        assert!(group.contains(&"repubLIEcans".to_string()));
        assert!(group.contains(&"republic@@ns".to_string()));
    }

    #[test]
    fn counts_accumulate_case_sensitively() {
        let db = table1_db();
        assert_eq!(db.get("the").unwrap().count, 2);
        assert_eq!(db.get("dirty").unwrap().count, 2);
        assert_eq!(db.get("repubLIEcans").unwrap().count, 1);
        // Case-sensitive: "The" absent.
        assert!(db.get("The").is_none());
    }

    #[test]
    fn stats_reflect_contents() {
        let db = table1_db();
        let s = db.stats();
        // the, thee, dirrty, dirty, republicans, repubLIEcans, republic@@ns
        assert_eq!(s.unique_tokens, 7);
        assert_eq!(s.total_occurrences, 9);
        assert!(s.english_tokens >= 3, "the, dirty, republicans");
        // H1 sounds: TH000, DI630, RE…, and dirrty≡dirty share DI630.
        assert!(s.unique_sounds[1] >= 3);
        assert!(s.unique_sounds[0] <= s.unique_sounds[1]);
    }

    #[test]
    fn ambiguous_tokens_live_in_multiple_buckets() {
        let mut db = TokenDatabase::in_memory();
        db.ingest_token("suic1de");
        let mates = db.sound_mates(1, "suicide").unwrap();
        assert!(
            mates.iter().any(|r| r.token == "suic1de"),
            "query by the clean word finds the 1-perturbed token"
        );
    }

    #[test]
    fn short_and_unencodable_tokens_skipped() {
        let mut db = TokenDatabase::in_memory();
        db.ingest_token("a");
        db.ingest_token("...");
        db.ingest_token("🙂🙂");
        assert_eq!(db.stats().unique_tokens, 0);
    }

    #[test]
    fn ingest_text_counts_words_only() {
        let mut db = TokenDatabase::in_memory();
        let n = db.ingest_text("@user check https://x.com the vaccine!! 123");
        // "check", "the", "vaccine" are word tokens (123 is a number,
        // @user a mention, the URL a url).
        assert_eq!(n, 3);
        assert!(db.get("vaccine").is_some());
        assert!(db.get("123").is_none());
    }

    #[test]
    fn clean_sentences_gate_on_dictionary() {
        let mut db = TokenDatabase::in_memory();
        db.ingest_text("the vaccine mandate was announced");
        db.ingest_text("the vacc1ne mandate was announced");
        assert_eq!(db.clean_sentences().len(), 1);
        db.record_clean_sentence("manually recorded sentence");
        assert_eq!(db.clean_sentences().len(), 2);
    }

    #[test]
    fn lexicon_seeding_marks_english() {
        let db = TokenDatabase::with_lexicon();
        let s = db.stats();
        assert!(s.unique_tokens > 400);
        assert_eq!(s.english_tokens, s.unique_tokens);
        assert_eq!(s.total_occurrences, 0, "seeds carry no counts");
        let rec = db.get("democrats").unwrap();
        assert!(rec.is_english);
    }

    #[test]
    fn invalid_level_rejected() {
        let db = table1_db();
        assert!(db.bucket(3, "TH000").is_err());
        assert!(db.sound_mates(9, "the").is_err());
        assert!(db.hashmap_view(3).is_err());
        assert!(db.soundex(3).is_err());
    }

    #[test]
    fn bucket_lookup_by_code() {
        let db = table1_db();
        let ids = db.bucket(1, "TH000").unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(db.bucket(1, "ZZ999").unwrap().len(), 0);
    }

    #[test]
    fn persist_and_load_round_trip() {
        let db = table1_db();
        let store = Database::in_memory();
        db.persist_to(&store, "tokens").unwrap();
        assert_eq!(store.len("tokens").unwrap(), 7);

        let restored = TokenDatabase::load_from(&store, "tokens").unwrap();
        assert_eq!(restored.stats(), db.stats());
        assert_eq!(
            restored.get("repubLIEcans").unwrap().count,
            db.get("repubLIEcans").unwrap().count
        );
        assert_eq!(
            restored.hashmap_view(1).unwrap(),
            db.hashmap_view(1).unwrap()
        );
    }

    #[test]
    fn persisted_codes_queryable_through_store_index() {
        let db = table1_db();
        let store = Database::in_memory();
        db.persist_to(&store, "tokens").unwrap();
        // Query the docstore directly by H1 code — exercises the
        // array-valued secondary index.
        let hits = store
            .find("tokens", &Filter::eq("codes_k1", "TH000"))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn persist_replaces_existing_collection() {
        let db = table1_db();
        let store = Database::in_memory();
        db.persist_to(&store, "tokens").unwrap();
        db.persist_to(&store, "tokens").unwrap();
        assert_eq!(store.len("tokens").unwrap(), 7, "no duplicates");
        // Regression: double-persist then load must reconstruct the exact
        // database, not an appended/duplicated one.
        let restored = TokenDatabase::load_from(&store, "tokens").unwrap();
        assert_eq!(restored.stats(), db.stats());
        assert_eq!(
            restored.hashmap_view(1).unwrap(),
            db.hashmap_view(1).unwrap()
        );
    }

    #[test]
    fn repersist_after_new_ingest_replaces_stale_counts() {
        // Persist, ingest more occurrences, persist again: the collection
        // must reflect only the latest state after a round trip.
        let mut db = table1_db();
        let store = Database::in_memory();
        db.persist_to(&store, "tokens").unwrap();
        db.ingest_text("the dirty republicans again");
        db.persist_to(&store, "tokens").unwrap();
        let restored = TokenDatabase::load_from(&store, "tokens").unwrap();
        assert_eq!(restored.stats(), db.stats());
        assert_eq!(restored.get("the").unwrap().count, 3);
    }

    #[test]
    fn reingest_increments_not_duplicates() {
        let mut db = TokenDatabase::in_memory();
        db.ingest_token("vaccine");
        db.ingest_token("vaccine");
        assert_eq!(db.stats().unique_tokens, 1);
        assert_eq!(db.get("vaccine").unwrap().count, 2);
        // Bucket membership not duplicated either.
        let code = db.soundex(1).unwrap().encode("vaccine").unwrap();
        assert_eq!(db.bucket(1, code.as_str()).unwrap().len(), 1);
    }

    #[test]
    fn folded_fields_precomputed() {
        let mut db = TokenDatabase::in_memory();
        db.ingest_token("demokRATs");
        db.ingest_token("vãccine");
        let rec = db.get("demokRATs").unwrap();
        assert_eq!(rec.folded, "demokrats");
        assert_eq!(rec.folded_chars, 9);
        let rec = db.get("vãccine").unwrap();
        assert_eq!(rec.folded, "vãccine");
        assert_eq!(rec.folded_chars, 7, "scalar count, not byte count");
    }

    #[test]
    fn visitor_visits_each_mate_exactly_once() {
        let mut db = TokenDatabase::in_memory();
        // suic1de sits in two H1 buckets (1→l and 1→i readings); a query
        // that probes both buckets must still see it once.
        db.ingest_token("suic1de");
        db.ingest_token("suicide");
        let mut scratch = SoundScratch::new();
        let mut query = EncodedQuery::new();
        query.encode("suic1de", 1).unwrap();
        let mut seen: Vec<String> = Vec::new();
        let _ = db.for_each_sound_mate(&query, &mut scratch, |_, rec| {
            seen.push(rec.token.clone());
            ControlFlow::Continue(())
        });
        let unique: std::collections::HashSet<&String> = seen.iter().collect();
        assert_eq!(unique.len(), seen.len(), "no duplicate visits: {seen:?}");
        assert!(seen.contains(&"suic1de".to_string()));
        assert!(seen.contains(&"suicide".to_string()));
        // Scratch and query-buffer reuse across queries stays correct.
        query.encode("suicide", 1).unwrap();
        let mut second: Vec<String> = Vec::new();
        let _ = db.for_each_sound_mate(&query, &mut scratch, |_, rec| {
            second.push(rec.token.clone());
            ControlFlow::Continue(())
        });
        assert!(second.contains(&"suic1de".to_string()));
    }

    #[test]
    fn visitor_break_stops_the_walk() {
        let mut db = TokenDatabase::in_memory();
        for t in ["dirty", "dirrty", "dirrrty", "dirrrrty"] {
            db.ingest_token(t);
        }
        let query = EncodedQuery::for_token("dirty", 1).unwrap();
        let mut scratch = SoundScratch::new();
        // Full walk first, as the reference sequence.
        let mut full: Vec<u32> = Vec::new();
        let flow = db.for_each_sound_mate(&query, &mut scratch, |id, _| {
            full.push(id);
            ControlFlow::Continue(())
        });
        assert!(flow.is_continue());
        assert_eq!(full.len(), 4);
        // Breaking after n visits yields exactly the n-prefix, and the
        // break is reported to the caller.
        for n in 1..=full.len() {
            let mut seen: Vec<u32> = Vec::new();
            let flow = db.for_each_sound_mate(&query, &mut scratch, |id, _| {
                seen.push(id);
                if seen.len() == n {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
            assert!(flow.is_break());
            assert_eq!(seen, full[..n], "break after {n}");
        }
    }

    #[test]
    fn encoded_query_matches_engine_encoders() {
        let db = table1_db();
        for token in ["republicans", "suic1de", "the", "vãccine", "..."] {
            for k in 0..NUM_LEVELS {
                let q = EncodedQuery::for_token(token, k).unwrap();
                assert_eq!(q.level(), k);
                assert_eq!(
                    q.codes(),
                    db.soundex(k).unwrap().encode_all(token).as_slice(),
                    "query encoding equals the backend encoder for {token:?} k={k}"
                );
                assert_eq!(q.codes().len(), q.code_hashes().len());
                assert_eq!(q.folded(), token.to_lowercase());
                assert_eq!(q.folded_chars(), token.to_lowercase().chars().count());
            }
        }
        assert!(EncodedQuery::for_token("the", 9).is_err(), "invalid level");
    }

    #[test]
    fn may_match_never_false_negative() {
        let db = table1_db();
        for rec in db.records() {
            for k in 0..NUM_LEVELS {
                let q = EncodedQuery::for_token(&rec.token, k).unwrap();
                assert!(
                    db.may_match(&q),
                    "stored token {} must pass the level-{k} summary",
                    rec.token
                );
            }
        }
        // An empty database rules everything out.
        let empty = TokenDatabase::in_memory();
        let q = EncodedQuery::for_token("republicans", 1).unwrap();
        assert!(!empty.may_match(&q));
    }

    #[test]
    fn parallel_ingest_matches_sequential_exactly() {
        let texts: Vec<String> = (0..40)
            .map(|i| match i % 5 {
                0 => format!("the dirrty republicans round {i}"),
                1 => "thee dirty repubLIEcans".to_string(),
                2 => format!("vacc1ne mandate pushback {i}"),
                3 => "the vaccine mandate was announced".to_string(),
                _ => "thinking about suic1de 🙂 ok".to_string(),
            })
            .collect();

        let mut seq = TokenDatabase::in_memory();
        let mut expect_n = 0;
        for t in &texts {
            expect_n += seq.ingest_text(t);
        }

        let mut par = TokenDatabase::in_memory();
        let n = par.ingest_texts(&texts);

        assert_eq!(n, expect_n);
        assert_eq!(par.stats(), seq.stats());
        assert_eq!(par.clean_sentences(), seq.clean_sentences());
        for k in 0..NUM_LEVELS {
            assert_eq!(
                par.hashmap_view(k).unwrap(),
                seq.hashmap_view(k).unwrap(),
                "H_{k} identical"
            );
        }
        // Record ids and bucket posting order are identical too.
        assert_eq!(par.records(), seq.records());
    }

    #[test]
    fn parallel_ingest_repeated_new_token_within_one_text() {
        // A brand-new word repeated inside a single text must count every
        // occurrence while encoding only once (per-text dedup in prepare).
        let texts = [
            "zzyzxx zzyzxx zzyzxx and ...  ... again",
            "zzyzxx once more",
        ];
        let mut seq = TokenDatabase::in_memory();
        for t in texts {
            seq.ingest_text(t);
        }
        let mut par = TokenDatabase::in_memory();
        par.ingest_texts(&texts);
        assert_eq!(par.records(), seq.records());
        assert_eq!(par.get("zzyzxx").unwrap().count, 4);
    }

    #[test]
    fn parallel_ingest_on_prepopulated_database() {
        let mut seq = TokenDatabase::with_lexicon();
        let mut par = TokenDatabase::with_lexicon();
        let texts = ["the demokRATs rallied", "the demokRATs rallied again"];
        for t in texts {
            seq.ingest_text(t);
        }
        par.ingest_texts(&texts);
        assert_eq!(par.records(), seq.records());
        assert_eq!(par.get("demokRATs").unwrap().count, 2);
    }
}
