//! Per-stage engine instrumentation for the workspace metrics registry.
//!
//! [`StageMetrics`] is one shared bundle of counters and histograms for
//! the engine's hot stages — query encoding, the shard/bucket walk, the
//! Levenshtein filter, and language-model candidate scoring. The handles
//! are plain [`cryptext_common::metrics`] cells: cloning is an `Arc`
//! bump, recording is a relaxed atomic op, and a bundle that was never
//! attached to a scratch costs the hot path nothing at all (the
//! `Option<Arc<StageMetrics>>` on [`crate::LookupScratch`] stays `None`
//! and every instrumentation site is a single branch).
//!
//! Timing granularity is deliberately per *call*, not per candidate: a
//! candidate filter step runs in tens of nanoseconds, so wrapping each
//! one in an `Instant` pair would cost more than the work being measured
//! and blow the bench-smoke overhead gate. Candidate-level visibility
//! comes from volume counters instead (`lookup_filter_candidates`,
//! `lookup_hits`, `normalize_scored`), which combine with the per-call
//! histograms into per-candidate averages offline.

use std::sync::Arc;

use cryptext_common::metrics::{Counter, Histogram, MetricsRegistry};

/// The engine's per-stage instrument bundle. One instance per service
/// (shared across worker threads through `Arc`); every field also works
/// standalone in tests.
#[derive(Debug, Default)]
pub struct StageMetrics {
    /// Query encoding (Soundex code set + hashes + case fold), µs per call.
    pub lookup_encode_us: Histogram,
    /// Bucket/shard walk incl. the inline Levenshtein filter, µs per call.
    pub lookup_walk_us: Histogram,
    /// Candidates examined by the SMS filter (sound-mates fed to
    /// `hit_distance`).
    pub lookup_filter_candidates: Counter,
    /// Candidates that survived the filter and reached the visitor.
    pub lookup_hits: Counter,
    /// Normalization candidate collection (retrieval + LM scoring +
    /// ranking), µs per cold call. The nested retrieval runs with its
    /// encode/walk timers detached — this histogram already spans it,
    /// and a normalize call fans out to one retrieval per token, so
    /// `lookup_encode_us`/`lookup_walk_us` sample direct Look Up calls
    /// only. The scorer runs inline in the retrieval visitor, so timing
    /// it separately would mean per-candidate clock reads.
    pub normalize_collect_us: Histogram,
    /// Re-scoring of memoized candidate pairs on the candidate-cache
    /// replay path, µs per call.
    pub normalize_rescore_us: Histogram,
    /// Candidate pairs scored by the language model (both paths).
    pub normalize_scored: Counter,
}

impl StageMetrics {
    /// Fresh unregistered bundle (all cells at zero).
    pub fn new() -> Self {
        StageMetrics::default()
    }

    /// Register every stage instrument with `registry` under the
    /// workspace naming scheme (`cryptext_lookup_*` /
    /// `cryptext_normalize_*`). Call once per registry; re-registering
    /// the same bundle panics on the duplicate names.
    pub fn register(&self, registry: &MetricsRegistry) {
        registry.register_histogram(
            "cryptext_lookup_encode_us",
            "Look Up query encoding time per call (microseconds)",
            &[],
            &self.lookup_encode_us,
        );
        registry.register_histogram(
            "cryptext_lookup_walk_us",
            "Look Up bucket/shard walk time per call, filter inclusive (microseconds)",
            &[],
            &self.lookup_walk_us,
        );
        registry.register_counter(
            "cryptext_lookup_filter_candidates_total",
            "Sound-mate candidates examined by the SMS Levenshtein filter",
            &[],
            &self.lookup_filter_candidates,
        );
        registry.register_counter(
            "cryptext_lookup_hits_total",
            "Candidates that passed the SMS filter and were visited",
            &[],
            &self.lookup_hits,
        );
        registry.register_histogram(
            "cryptext_normalize_collect_us",
            "Normalization candidate collection time per cold call (microseconds)",
            &[],
            &self.normalize_collect_us,
        );
        registry.register_histogram(
            "cryptext_normalize_rescore_us",
            "Normalization candidate-cache replay re-scoring time per call (microseconds)",
            &[],
            &self.normalize_rescore_us,
        );
        registry.register_counter(
            "cryptext_normalize_scored_total",
            "Candidate pairs scored by the coherency language model",
            &[],
            &self.normalize_scored,
        );
    }
}

/// Attachable handle: `None` (the default) keeps every instrumentation
/// site on its no-op branch.
pub type Stages = Option<Arc<StageMetrics>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_exposes_all_stage_instruments() {
        let registry = MetricsRegistry::new();
        let stages = StageMetrics::new();
        stages.register(&registry);
        stages.lookup_encode_us.observe(3);
        stages.lookup_filter_candidates.add(7);
        stages.normalize_scored.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.histogram_count("cryptext_lookup_encode_us"), 1);
        assert_eq!(
            snap.counter_total("cryptext_lookup_filter_candidates_total"),
            7
        );
        assert_eq!(snap.counter_total("cryptext_normalize_scored_total"), 1);
        assert_eq!(snap.histogram_count("cryptext_normalize_collect_us"), 0);
    }

    #[test]
    fn unregistered_bundle_still_records() {
        let stages = StageMetrics::new();
        stages.lookup_hits.inc();
        stages.lookup_walk_us.observe(12);
        assert_eq!(stages.lookup_hits.get(), 1);
        assert_eq!(stages.lookup_walk_us.count(), 1);
    }
}
