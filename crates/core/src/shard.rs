//! Consistent-hash sharding of the token database.
//!
//! [`ShardedTokenDatabase`] splits the corpus across N independent
//! [`TokenDatabase`] shards so dictionaries that outgrow one instance
//! (the paper mines ~3.6M perturbations and keeps growing) scale out
//! instead of up. The pieces:
//!
//! * **Routing** — every token is owned by exactly one shard, selected by
//!   [`jump_hash`](cryptext_common::hash::jump_hash) over the Fx hash of
//!   the token's **primary `H_1` Soundex code** (tokens without phonetic
//!   content fall back to hashing the raw token). Hashing the sound
//!   rather than the spelling keeps a clean word and the bulk of its
//!   perturbations colocated, and jump hashing keeps a future shard-count
//!   change from reshuffling the whole corpus.
//! * **Shard-local id spaces** — each shard keeps its own dense `u32`
//!   record ids (the `CodeIndex` postings stay small and cache-friendly);
//!   the router remaps them to globally unique ids at the
//!   [`TokenStore`] boundary as `global = local * n_shards + shard`.
//! * **Reads** — a query is encoded **once** into an
//!   [`EncodedQuery`] (codes + hashes + fold) and every shard's walk
//!   shares it; records are disjoint across shards, so no cross-shard
//!   dedup is needed and results are byte-identical to the
//!   single-instance backend (proptest-pinned below). `&self` reads are
//!   lock-free and `Sync`, so bulk endpoints fan out across cores without
//!   serializing behind any writer.
//! * **Skip-empty routing** — each shard's per-level code interner keeps a
//!   [`Bloom`](cryptext_common::hash::Bloom) summary of its code set
//!   (maintained at intern time, so ingest, resharding, and persist/load
//!   keep it current for free). A query walks only the shards whose
//!   summaries admit at least one of its codes
//!   ([`TokenDatabase::may_match`]); a ruled-out shard could not have
//!   produced a hit, so skipping it is invisible to results.
//! * **Per-query parallel fan-out** —
//!   [`TokenStore::fan_out_sound_mates`] runs the matching shards' walks
//!   through the [`cryptext_common::par`] pool (per-worker scratch,
//!   per-shard result buffers) and merges in shard order, so the sink
//!   observes exactly the sequential walk's sequence — early-exit
//!   [`ControlFlow`] semantics included. Single-matching-shard queries
//!   bypass the pool entirely.
//! * **Batch ingest** — the parallel prepare phase (tokenize, confusable
//!   fold, 3-level Soundex) runs per text through
//!   [`cryptext_common::par`], then the prepared words scatter into
//!   per-shard queues that merge **in parallel, one worker per shard**.
//! * **Persistence** — one document-store collection per shard plus a
//!   shard-count manifest record; persist and load fan out across shards
//!   through the same pool. Re-persisting replaces the previous layout,
//!   including stale shard collections from a larger prior shard count.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::ControlFlow;

use cryptext_common::hash::{FxHashMap, FxHashSet, ShardRing};
use cryptext_common::par::{par_map, try_par_map};
use cryptext_common::{Error, Result};
use cryptext_docstore::{Database, Document, Filter, Value};
use cryptext_phonetics::{CustomSoundex, SoundexCode};
use cryptext_tokenizer::tokenize_spans;
use parking_lot::Mutex;

use crate::database::{
    EncodedQuery, PreparedWord, SoundScratch, TokenDatabase, TokenRecord, TokenStats,
    MAX_CLEAN_SENTENCES, NUM_LEVELS,
};
use crate::store::TokenStore;

thread_local! {
    /// Per-worker walk scratch for the parallel fan-out path: each pool
    /// worker (and the participating caller) dedups its shard walks
    /// through its own visited set, so no scratch crosses threads.
    static FAN_OUT_SCRATCH: RefCell<SoundScratch> = RefCell::new(SoundScratch::new());
}

/// One text prepared off-thread during parallel sharded ingest: the
/// routed, encoded words plus the clean-sentence gate bits.
struct ShardPreparedText {
    /// `(shard, word)` for every word that reaches a shard; `Skip`s are
    /// counted in `n_words` but not scattered.
    words: Vec<(u32, PreparedWord)>,
    n_words: usize,
    any_word: bool,
    all_english: bool,
}

/// A token database split across consistent-hash shards. See the module
/// docs for the routing and id-space design; the public surface is the
/// [`TokenStore`] trait plus a few shard-introspection helpers.
pub struct ShardedTokenDatabase {
    ring: ShardRing,
    soundex: [CustomSoundex; NUM_LEVELS],
    shards: Vec<TokenDatabase>,
    clean_sentences: Vec<String>,
}

impl ShardedTokenDatabase {
    /// An empty store over `shards` consistent-hash shards (clamped to at
    /// least 1).
    pub fn in_memory(shards: usize) -> Self {
        let ring = ShardRing::new(shards);
        ShardedTokenDatabase {
            ring,
            soundex: [
                CustomSoundex::new(0),
                CustomSoundex::new(1),
                CustomSoundex::new(2),
            ],
            shards: (0..ring.shards())
                .map(|_| TokenDatabase::in_memory())
                .collect(),
            clean_sentences: Vec::new(),
        }
    }

    /// An empty sharded store pre-seeded with the English lexicon.
    pub fn with_lexicon(shards: usize) -> Self {
        let mut db = Self::in_memory(shards);
        db.seed_lexicon_impl();
        db
    }

    /// Reshard an existing single-instance database: every record keeps
    /// its token, occurrence count, and lexicon status; clean sentences
    /// carry over. Statistics and retrieval results are preserved exactly.
    pub fn from_database(db: &TokenDatabase, shards: usize) -> Self {
        let mut out = Self::in_memory(shards);
        for rec in db.records() {
            let s = out.route(&rec.token);
            out.shards[s].upsert_token(&rec.token, rec.count);
        }
        for sentence in db.clean_sentences() {
            out.record_clean_sentence_impl(sentence);
        }
        out
    }

    /// The shard that owns `token`: jump hash of the primary `H_1` code,
    /// falling back to the raw token for strings without phonetic content.
    #[inline]
    fn route(&self, token: &str) -> usize {
        match self.soundex[1].encode(token) {
            Some(code) => self.ring.route_str(code.as_str()),
            None => self.ring.route_str(token),
        }
    }

    /// Read access to one shard (for introspection and tests).
    pub fn shard(&self, i: usize) -> &TokenDatabase {
        &self.shards[i]
    }

    /// The record behind a global id handed out by
    /// [`TokenStore::for_each_sound_mate`].
    pub fn record(&self, global_id: u32) -> Option<&TokenRecord> {
        let n = self.shards.len() as u32;
        let shard = self.shards.get((global_id % n) as usize)?;
        shard.records().get((global_id / n) as usize)
    }

    /// The shards whose Bloom summaries admit at least one of `query`'s
    /// codes — the only shards a walk visits. False positives are
    /// possible (a listed shard may still produce no hits); false
    /// negatives are not (codes are only ever interned, never removed).
    pub fn matching_shards(&self, query: &EncodedQuery) -> Vec<u32> {
        (0..self.shards.len() as u32)
            .filter(|&s| self.shards[s as usize].may_match(query))
            .collect()
    }

    /// How many of a query's shard walks the Bloom summaries skip — the
    /// `skip-rate` statistic of the bench's `shards` dimension.
    pub fn skipped_shards(&self, query: &EncodedQuery) -> usize {
        self.shards.iter().filter(|s| !s.may_match(query)).count()
    }

    /// The parallel half of [`TokenStore::fan_out_sound_mates`]: run every
    /// matching shard's walk (candidate visit + `map`) on the worker pool,
    /// buffering per-shard results, then feed the buffers to `sink` in
    /// shard order. Because shards are disjoint and `map` is pure, the
    /// sink observes exactly the sequence the sequential walk produces —
    /// including under early exit, where later results are simply
    /// discarded. Kept separate from the dispatch heuristic so tests can
    /// pin this path against the sequential walk regardless of core count.
    fn fan_out_collected<'a, M, R, F>(
        &'a self,
        query: &EncodedQuery,
        matching: &[u32],
        map: &M,
        mut sink: F,
    ) -> ControlFlow<()>
    where
        M: Fn(u32, &'a TokenRecord) -> Option<R> + Sync,
        R: Send,
        F: FnMut(R) -> ControlFlow<()>,
    {
        let n = self.shards.len() as u32;
        let per_shard: Vec<Vec<R>> = par_map(matching, |&s| {
            FAN_OUT_SCRATCH.with(|scratch| {
                let scratch = &mut *scratch.borrow_mut();
                let mut out: Vec<R> = Vec::new();
                let flow =
                    self.shards[s as usize].for_each_sound_mate(query, scratch, |local, rec| {
                        if let Some(r) = map(local * n + s, rec) {
                            out.push(r);
                        }
                        ControlFlow::Continue(())
                    });
                debug_assert!(flow.is_continue());
                out
            })
        });
        for results in per_shard {
            for r in results {
                sink(r)?;
            }
        }
        ControlFlow::Continue(())
    }

    fn compute_codes(&self, token: &str) -> [Vec<SoundexCode>; NUM_LEVELS] {
        [
            self.soundex[0].encode_all(token),
            self.soundex[1].encode_all(token),
            self.soundex[2].encode_all(token),
        ]
    }

    /// The read-only, parallel-safe half of sharded batch ingest: route,
    /// gate, and encode every word of one text against the pre-batch
    /// shard states. Mirrors `TokenDatabase::prepare_text` word for word,
    /// with the routed shard standing in for the single instance.
    fn prepare_text(&self, text: &str) -> ShardPreparedText {
        let mut words = Vec::new();
        let mut n_words = 0usize;
        let mut any_word = false;
        let mut all_english = true;
        // New tokens already encoded earlier in this text (routing is
        // deterministic, so a repeated token always targets one shard).
        let mut local: FxHashMap<&str, bool> = FxHashMap::default();
        // Routing runs a Soundex encode, so memoize it per distinct token:
        // a word repeated through a text routes once, not per occurrence.
        let mut routed: FxHashMap<&str, u32> = FxHashMap::default();
        for tok in tokenize_spans(text) {
            if !tok.is_word() {
                continue;
            }
            let t = tok.text(text);
            any_word = true;
            if !cryptext_corpus::is_english_word(t) {
                all_english = false;
            }
            n_words += 1;
            if t.chars().count() < 2 {
                continue; // Skip: counted, never stored.
            }
            let s = match routed.get(t) {
                Some(&s) => s,
                None => {
                    let s = self.route(t) as u32;
                    routed.insert(t, s);
                    s
                }
            };
            if let Some(id) = self.shards[s as usize].id_of_token(t) {
                words.push((s, PreparedWord::Known(id)));
                continue;
            }
            match local.get(t) {
                Some(true) => words.push((s, PreparedWord::Repeat(t.to_string()))),
                Some(false) => {}
                None => {
                    let codes = self.compute_codes(t);
                    if codes[0].is_empty() {
                        local.insert(t, false); // no phonetic content
                    } else {
                        local.insert(t, true);
                        words.push((s, PreparedWord::Fresh(t.to_string(), Box::new(codes))));
                    }
                }
            }
        }
        ShardPreparedText {
            words,
            n_words,
            any_word,
            all_english,
        }
    }

    fn record_clean_sentence_impl(&mut self, text: &str) {
        if self.clean_sentences.len() < MAX_CLEAN_SENTENCES {
            self.clean_sentences.push(text.to_string());
        }
    }

    fn seed_lexicon_impl(&mut self) {
        for w in cryptext_corpus::english_lexicon() {
            let s = self.route(w);
            self.shards[s].upsert_token(w, 0);
        }
    }

    /// Merged Table-I view across shards: identical to what a single
    /// instance over the same corpus would produce (each record lives in
    /// exactly one shard, and both sides sort codes and tokens).
    pub fn hashmap_view(&self, k: usize) -> Result<Vec<(String, Vec<String>)>> {
        TokenDatabase::check_level(k)?;
        let mut merged: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for shard in &self.shards {
            for (code, tokens) in shard.hashmap_view(k)? {
                merged.entry(code).or_default().extend(tokens);
            }
        }
        Ok(merged
            .into_iter()
            .map(|(code, mut tokens)| {
                tokens.sort();
                (code, tokens)
            })
            .collect())
    }

    /// The name of shard `i`'s collection under a persist of `collection`.
    fn shard_collection(collection: &str, i: usize) -> String {
        format!("{collection}__shard{i}")
    }

    /// Read the shard count recorded by a sharded persist of `collection`,
    /// or `None` when the collection is absent or not a sharded layout.
    pub fn manifest_shards(store: &Database, collection: &str) -> Result<Option<usize>> {
        if !store.has_collection(collection) {
            return Ok(None);
        }
        let Some((_, doc)) = store.find_one(collection, &Filter::All)? else {
            return Ok(None);
        };
        Ok(doc
            .get("shard_manifest")
            .and_then(Value::as_int)
            .filter(|&n| n > 0)
            .map(|n| n as usize))
    }
}

impl TokenStore for ShardedTokenDatabase {
    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn for_each_sound_mate<'a, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        mut f: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(u32, &'a TokenRecord) -> ControlFlow<()>,
    {
        let n = self.shards.len() as u32;
        for (s, shard) in self.shards.iter().enumerate() {
            if !shard.may_match(query) {
                continue; // Bloom says no bucket here can match.
            }
            let s = s as u32;
            shard.for_each_sound_mate(query, scratch, |local, rec| f(local * n + s, rec))?;
        }
        ControlFlow::Continue(())
    }

    fn fan_out_sound_mates<'a, M, R, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        map: M,
        mut sink: F,
    ) -> ControlFlow<()>
    where
        M: Fn(u32, &'a TokenRecord) -> Option<R> + Sync,
        R: Send,
        F: FnMut(R) -> ControlFlow<()>,
    {
        let n = self.shards.len() as u32;
        // Route through the scratch's reusable shard buffer — the hot
        // path stays allocation-free per query.
        let mut matching = std::mem::take(&mut scratch.fan_out);
        matching.clear();
        matching.extend((0..n).filter(|&s| self.shards[s as usize].may_match(query)));
        let flow = if matching.len() <= 1 {
            // Nothing to fan out: walk the (at most one) matching shard
            // inline on the caller's scratch, no per-shard buffers.
            let mut walk = || -> ControlFlow<()> {
                for &s in &matching {
                    self.shards[s as usize].for_each_sound_mate(query, scratch, |local, rec| {
                        match map(local * n + s, rec) {
                            Some(r) => sink(r),
                            None => ControlFlow::Continue(()),
                        }
                    })?;
                }
                ControlFlow::Continue(())
            };
            walk()
        } else {
            self.fan_out_collected(query, &matching, &map, sink)
        };
        scratch.fan_out = matching;
        flow
    }

    fn get(&self, token: &str) -> Option<&TokenRecord> {
        self.shards[self.route(token)].get(token)
    }

    fn stats(&self) -> TokenStats {
        let mut stats = TokenStats {
            unique_tokens: 0,
            total_occurrences: 0,
            unique_sounds: [0; NUM_LEVELS],
            english_tokens: 0,
        };
        for shard in &self.shards {
            let s = shard.stats();
            stats.unique_tokens += s.unique_tokens;
            stats.total_occurrences += s.total_occurrences;
            stats.english_tokens += s.english_tokens;
        }
        // Sounds are not disjoint across shards (a code can host tokens in
        // several shards through ambiguous secondary readings), so the
        // per-level counts are unions, not sums.
        for k in 0..NUM_LEVELS {
            let mut seen: FxHashSet<&str> = FxHashSet::default();
            for shard in &self.shards {
                for name in shard.code_names(k) {
                    seen.insert(name);
                }
            }
            stats.unique_sounds[k] = seen.len();
        }
        stats
    }

    fn unique_tokens(&self) -> usize {
        self.shards.iter().map(|s| s.records().len()).sum()
    }

    fn clean_sentences(&self) -> &[String] {
        &self.clean_sentences
    }

    fn soundex(&self, k: usize) -> Result<&CustomSoundex> {
        TokenDatabase::check_level(k)?;
        Ok(&self.soundex[k])
    }

    fn hashmap_view(&self, k: usize) -> Result<Vec<(String, Vec<String>)>> {
        ShardedTokenDatabase::hashmap_view(self, k)
    }

    fn ingest_token(&mut self, token: &str) {
        if token.chars().count() < 2 {
            return;
        }
        if self.soundex[0].encode(token).is_none() {
            return; // no phonetic content
        }
        let s = self.route(token);
        self.shards[s].upsert_token(token, 1);
    }

    // `ingest_text` uses the trait's default implementation: the canonical
    // tokenize/gate/clean-sentence loop over `ingest_token` +
    // `record_clean_sentence`, shared with the single-instance backend so
    // the two can never drift.

    fn ingest_texts<T: AsRef<str> + Sync>(&mut self, texts: &[T]) -> usize {
        let prepared: Vec<ShardPreparedText> =
            par_map(texts, |text| self.prepare_text(text.as_ref()));

        // Scatter into per-shard merge queues in input order, collecting
        // clean sentences at the router (the gate is per text, not per
        // shard).
        let mut queues: Vec<Vec<PreparedWord>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut n = 0;
        for (text, prep) in texts.iter().zip(prepared) {
            n += prep.n_words;
            for (s, word) in prep.words {
                queues[s as usize].push(word);
            }
            if prep.any_word && prep.all_english {
                self.record_clean_sentence_impl(text.as_ref());
            }
        }

        // Parallel per-shard merge: shards are disjoint, so each queue
        // applies independently. Each Mutex is locked exactly once, by the
        // worker that owns that shard's merge.
        let jobs: Vec<Mutex<(TokenDatabase, Vec<PreparedWord>)>> =
            self.shards.drain(..).zip(queues).map(Mutex::new).collect();
        par_map(&jobs, |job| {
            let mut guard = job.lock();
            let (shard, queue) = &mut *guard;
            for word in queue.drain(..) {
                shard.merge_prepared_word(word);
            }
        });
        self.shards = jobs.into_iter().map(|job| job.into_inner().0).collect();
        n
    }

    fn record_clean_sentence(&mut self, text: &str) {
        self.record_clean_sentence_impl(text)
    }

    fn seed_lexicon(&mut self) {
        self.seed_lexicon_impl()
    }

    fn persist_to(&self, store: &Database, collection: &str) -> Result<()> {
        // Replace semantics: wipe the manifest and every shard collection
        // from a previous persist under this name — including stale ones
        // left by a persist with a larger shard count.
        if store.has_collection(collection) {
            store.drop_collection(collection)?;
        }
        let prefix = format!("{collection}__shard");
        for name in store.collections_with_prefix(&prefix) {
            store.drop_collection(&name)?;
        }
        store.create_collection(collection)?;
        store.insert(
            collection,
            Document::new().with("shard_manifest", self.shards.len() as i64),
        )?;
        // Fan out: one collection per shard, persisted in parallel (the
        // document store takes per-collection locks, so writers do not
        // contend).
        let jobs: Vec<(usize, &TokenDatabase)> = self.shards.iter().enumerate().collect();
        try_par_map(&jobs, |&(i, shard)| {
            shard.persist_to(store, &Self::shard_collection(collection, i))
        })?;
        Ok(())
    }

    fn load_from(store: &Database, collection: &str) -> Result<Self> {
        let n = Self::manifest_shards(store, collection)?.ok_or_else(|| {
            Error::corrupt(format!(
                "collection {collection} has no shard-count manifest"
            ))
        })?;
        let idx: Vec<usize> = (0..n).collect();
        let shards = try_par_map(&idx, |&i| {
            TokenDatabase::load_from(store, &Self::shard_collection(collection, i))
        })?;
        let mut out = Self::in_memory(n);
        out.shards = shards;
        Ok(out)
    }
}

impl std::fmt::Debug for ShardedTokenDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = TokenStore::stats(self);
        f.debug_struct("ShardedTokenDatabase")
            .field("shards", &self.shards.len())
            .field("unique_tokens", &s.unique_tokens)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::{look_up, LookupParams};

    const FIXTURE_TEXTS: [&str; 6] = [
        "the dirrty republicans",
        "thee dirty repubLIEcans",
        "the dirty republic@@ns",
        "the demokRATs and the democrats",
        "thinking about suic1de",
        "suicide prevention matters",
    ];

    fn single() -> TokenDatabase {
        let mut db = TokenDatabase::in_memory();
        for t in FIXTURE_TEXTS {
            db.ingest_text(t);
        }
        db
    }

    fn sharded(n: usize) -> ShardedTokenDatabase {
        let mut db = ShardedTokenDatabase::in_memory(n);
        for t in FIXTURE_TEXTS {
            TokenStore::ingest_text(&mut db, t);
        }
        db
    }

    fn assert_equivalent(flat: &TokenDatabase, wide: &ShardedTokenDatabase) {
        assert_eq!(TokenStore::stats(wide), flat.stats());
        assert_eq!(wide.clean_sentences(), flat.clean_sentences());
        for k in 0..NUM_LEVELS {
            assert_eq!(
                ShardedTokenDatabase::hashmap_view(wide, k).unwrap(),
                flat.hashmap_view(k).unwrap(),
                "H_{k} identical"
            );
        }
        for q in [
            "republicans",
            "democrats",
            "suic1de",
            "the",
            "zzzzzz",
            "vãccine",
        ] {
            for k in 0..NUM_LEVELS {
                for d in 0..4 {
                    for params in [
                        LookupParams::new(k, d),
                        LookupParams::new(k, d).perturbations_only(),
                        LookupParams::new(k, d).observed(),
                    ] {
                        assert_eq!(
                            look_up(wide, q, params).unwrap(),
                            look_up(flat, q, params).unwrap(),
                            "query {q:?} params {params:?}"
                        );
                    }
                }
            }
            assert_eq!(TokenStore::get(wide, q), flat.get(q));
        }
    }

    #[test]
    fn sharded_matches_single_for_every_shard_count() {
        let flat = single();
        for n in 1..=8 {
            let wide = sharded(n);
            assert_eq!(wide.num_shards(), n);
            assert_equivalent(&flat, &wide);
        }
    }

    #[test]
    fn every_record_lives_in_exactly_one_shard() {
        let wide = sharded(4);
        let flat = single();
        let total: usize = (0..4).map(|i| wide.shard(i).records().len()).sum();
        assert_eq!(total, flat.stats().unique_tokens);
        // With more than one shard and this corpus, the records actually
        // spread out (the router is not degenerate).
        let populated = (0..4)
            .filter(|&i| !wide.shard(i).records().is_empty())
            .count();
        assert!(populated > 1, "tokens spread across shards");
    }

    #[test]
    fn routing_groups_primary_sound_mates() {
        let wide = sharded(8);
        // Tokens sharing a primary H_1 code are colocated by construction.
        let a = wide.route("dirty");
        let b = wide.route("dirrty");
        assert_eq!(a, b, "same primary H_1 code → same shard");
    }

    #[test]
    fn global_ids_decode_back_to_records() {
        let wide = sharded(3);
        let mut scratch = SoundScratch::new();
        let query = EncodedQuery::for_token("republicans", 1).unwrap();
        let mut seen = 0;
        let flow = TokenStore::for_each_sound_mate(&wide, &query, &mut scratch, |id, rec| {
            assert_eq!(
                wide.record(id).expect("global id resolves"),
                rec,
                "id ↔ record agree through the shard remap"
            );
            seen += 1;
            ControlFlow::Continue(())
        });
        assert!(flow.is_continue());
        assert!(seen >= 3, "all republicans variants visited");
        assert!(wide.record(u32::MAX).is_none());
    }

    /// Reference sequence: the sequential shard-order walk with the map
    /// applied inline — what `fan_out_sound_mates` must reproduce exactly.
    fn sequential_reference(
        wide: &ShardedTokenDatabase,
        query: &EncodedQuery,
    ) -> Vec<(u32, String)> {
        let mut scratch = SoundScratch::new();
        let mut out = Vec::new();
        let _ = TokenStore::for_each_sound_mate(wide, query, &mut scratch, |id, rec| {
            out.push((id, rec.token.clone()));
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn parallel_fan_out_matches_sequential_walk_exactly() {
        for n in [2usize, 3, 5, 8] {
            let wide = sharded(n);
            for token in ["republicans", "the", "suic1de", "democrats", "zzzzzz"] {
                for k in 0..NUM_LEVELS {
                    let query = EncodedQuery::for_token(token, k).unwrap();
                    let reference = sequential_reference(&wide, &query);

                    // Drive the parallel collect-then-merge path directly
                    // (bypassing the ≤1-matching-shard shortcut) so the pin
                    // holds even on single-core hosts and sparse queries.
                    let matching = wide.matching_shards(&query);
                    let mut collected = Vec::new();
                    let flow = wide.fan_out_collected(
                        &query,
                        &matching,
                        &|id, rec: &TokenRecord| Some((id, rec.token.clone())),
                        |r| {
                            collected.push(r);
                            ControlFlow::Continue(())
                        },
                    );
                    assert!(flow.is_continue());
                    assert_eq!(
                        collected, reference,
                        "{n} shards, {token:?} k={k}: parallel == sequential"
                    );

                    // The public dispatcher agrees too.
                    let mut scratch = SoundScratch::new();
                    let mut dispatched = Vec::new();
                    let _ = wide.fan_out_sound_mates(
                        &query,
                        &mut scratch,
                        |id, rec| Some((id, rec.token.clone())),
                        |r| {
                            dispatched.push(r);
                            ControlFlow::Continue(())
                        },
                    );
                    assert_eq!(dispatched, reference);
                }
            }
        }
    }

    #[test]
    fn fan_out_early_exit_yields_exact_prefix() {
        let wide = sharded(4);
        let query = EncodedQuery::for_token("republicans", 1).unwrap();
        let reference = sequential_reference(&wide, &query);
        assert!(reference.len() >= 3, "fixture has republicans variants");
        let matching = wide.matching_shards(&query);
        for cut in 0..=reference.len() {
            let mut seen = Vec::new();
            let flow = wide.fan_out_collected(
                &query,
                &matching,
                &|id, rec: &TokenRecord| Some((id, rec.token.clone())),
                |r| {
                    seen.push(r);
                    if seen.len() > cut {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            if cut < reference.len() {
                assert!(flow.is_break(), "cut {cut} breaks");
                assert_eq!(seen, reference[..cut + 1], "prefix after break at {cut}");
            } else {
                assert!(flow.is_continue());
                assert_eq!(seen, reference);
            }
        }
    }

    #[test]
    fn bloom_routing_skips_shards_without_losing_hits() {
        // At 8 shards most queries route to a strict subset; every hit a
        // full (skip-free) walk finds must still be found.
        let wide = sharded(8);
        let mut skipped_total = 0usize;
        for token in ["republicans", "democrats", "suic1de", "the", "dirty"] {
            let query = EncodedQuery::for_token(token, 1).unwrap();
            let matching = wide.matching_shards(&query);
            skipped_total += wide.skipped_shards(&query);
            assert_eq!(matching.len() + wide.skipped_shards(&query), 8);
            // Walk the skipped shards exhaustively: none may contain a hit.
            let mut scratch = SoundScratch::new();
            for s in 0..8u32 {
                if matching.contains(&s) {
                    continue;
                }
                let mut found = 0usize;
                let _ = wide
                    .shard(s as usize)
                    .for_each_sound_mate(&query, &mut scratch, |_, _| {
                        found += 1;
                        ControlFlow::Continue(())
                    });
                assert_eq!(found, 0, "skipped shard {s} had a hit for {token:?}");
            }
        }
        assert!(
            skipped_total > 0,
            "with 8 shards and this corpus, routing must actually skip"
        );
    }

    #[test]
    fn batch_ingest_matches_sequential_and_single() {
        let texts: Vec<String> = (0..40)
            .map(|i| match i % 5 {
                0 => format!("the dirrty republicans round {i}"),
                1 => "thee dirty repubLIEcans".to_string(),
                2 => format!("vacc1ne mandate pushback {i}"),
                3 => "the vaccine mandate was announced".to_string(),
                _ => "thinking about suic1de 🙂 ok".to_string(),
            })
            .collect();

        let mut flat = TokenDatabase::in_memory();
        let mut expect_n = 0;
        for t in &texts {
            expect_n += flat.ingest_text(t);
        }

        for n in [1usize, 3, 8] {
            let mut seq = ShardedTokenDatabase::in_memory(n);
            for t in &texts {
                TokenStore::ingest_text(&mut seq, t);
            }
            let mut par = ShardedTokenDatabase::in_memory(n);
            let got_n = TokenStore::ingest_texts(&mut par, &texts);
            assert_eq!(got_n, expect_n, "{n} shards: token count");
            for i in 0..n {
                assert_eq!(
                    par.shard(i).records(),
                    seq.shard(i).records(),
                    "{n} shards: shard {i} byte-identical to sequential"
                );
            }
            assert_eq!(par.clean_sentences(), seq.clean_sentences());
            assert_equivalent(&flat, &par);
        }
    }

    #[test]
    fn batch_ingest_on_prepopulated_store() {
        let mut flat = TokenDatabase::with_lexicon();
        let mut wide = ShardedTokenDatabase::with_lexicon(4);
        let texts = ["the demokRATs rallied", "the demokRATs rallied again"];
        for t in texts {
            flat.ingest_text(t);
        }
        TokenStore::ingest_texts(&mut wide, &texts);
        assert_eq!(TokenStore::get(&wide, "demokRATs").unwrap().count, 2);
        assert_equivalent(&flat, &wide);
    }

    #[test]
    fn from_database_preserves_everything() {
        let flat = single();
        for n in [1usize, 2, 5, 8] {
            let wide = ShardedTokenDatabase::from_database(&flat, n);
            assert_equivalent(&flat, &wide);
        }
    }

    #[test]
    fn persist_load_round_trip_per_shard_count() {
        let flat = single();
        for n in [1usize, 2, 4, 8] {
            let wide = sharded(n);
            let store = Database::in_memory();
            TokenStore::persist_to(&wide, &store, "tokens").unwrap();
            assert_eq!(
                ShardedTokenDatabase::manifest_shards(&store, "tokens").unwrap(),
                Some(n)
            );
            let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
            assert_eq!(restored.num_shards(), n);
            assert_eq!(TokenStore::stats(&restored), flat.stats());
            for k in 0..NUM_LEVELS {
                assert_eq!(
                    ShardedTokenDatabase::hashmap_view(&restored, k).unwrap(),
                    flat.hashmap_view(k).unwrap()
                );
            }
            assert_eq!(
                look_up(&restored, "republicans", LookupParams::paper_default()).unwrap(),
                look_up(&flat, "republicans", LookupParams::paper_default()).unwrap()
            );
        }
    }

    #[test]
    fn repersist_replaces_and_drops_stale_shards() {
        // Persist with 8 shards, then re-persist the same corpus with 2:
        // the load must see exactly 2 shards and the 6 stale collections
        // must be gone (double-persist is replace, never append).
        let store = Database::in_memory();
        TokenStore::persist_to(&sharded(8), &store, "tokens").unwrap();
        let names_before = store.collections_with_prefix("tokens__shard");
        assert_eq!(names_before.len(), 8);

        let two = sharded(2);
        TokenStore::persist_to(&two, &store, "tokens").unwrap();
        TokenStore::persist_to(&two, &store, "tokens").unwrap(); // double persist
        assert_eq!(store.collections_with_prefix("tokens__shard").len(), 2);

        let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
        assert_eq!(restored.num_shards(), 2);
        assert_eq!(TokenStore::stats(&restored), single().stats());
    }

    #[test]
    fn load_from_without_manifest_is_corrupt() {
        let store = Database::in_memory();
        single().persist_to(&store, "tokens").unwrap();
        let err = ShardedTokenDatabase::load_from(&store, "tokens").unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)));
        assert!(ShardedTokenDatabase::load_from(&store, "missing").is_err());
    }

    #[test]
    fn crawler_feeds_sharded_store_identically() {
        use crate::ingest::Crawler;
        let platform = cryptext_stream::SocialPlatform::simulate(cryptext_stream::StreamConfig {
            n_posts: 200,
            seed: 3,
            ..cryptext_stream::StreamConfig::default()
        });
        let mut flat = TokenDatabase::in_memory();
        let mut wide = ShardedTokenDatabase::in_memory(4);
        let a = Crawler::new().run_once(&platform, &mut flat, 0);
        let b = Crawler::new().run_once(&platform, &mut wide, 0);
        assert_eq!(a, b, "crawl statistics agree");
        assert_eq!(TokenStore::stats(&wide), flat.stats());
    }

    #[test]
    fn normalize_identical_across_backends() {
        let mut flat = TokenDatabase::with_lexicon();
        for t in FIXTURE_TEXTS {
            flat.ingest_text(t);
        }
        let lm = cryptext_lm::NgramLm::train([
            "biden belongs to the democrats",
            "the republicans blocked the bill",
            "suicide prevention is important",
        ]);
        let n = crate::normalize::Normalizer::new(&lm);
        let wide = ShardedTokenDatabase::from_database(&flat, 5);
        for text in [
            "Biden belongs to the demokRATs",
            "thinking about suic1de",
            "the dirty republic@@ns everywhere",
            "clean text stays clean",
        ] {
            assert_eq!(
                n.normalize(&wide, text, crate::normalize::NormalizeParams::default())
                    .unwrap(),
                n.normalize(&flat, text, crate::normalize::NormalizeParams::default())
                    .unwrap(),
                "text {text:?}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::lookup::{look_up, LookupParams};
    use proptest::prelude::*;

    /// Multi-word text over an alphabet that exercises leet fan-out
    /// (1 ↔ i/l, @ ↔ a) against the seeded lexicon.
    fn text_strategy() -> impl Strategy<Value = String> {
        proptest::collection::vec("[a-e1@]{2,8}", 0..6).prop_map(|ws| ws.join(" "))
    }

    proptest! {
        /// The tentpole pin: for any corpus and any shard count 1–8, the
        /// sharded backend returns byte-identical Look Up hits, statistics,
        /// and Table-I views to the single instance — including after a
        /// per-shard persist/load round trip.
        #[test]
        fn sharded_equals_single_reference(
            tokens in proptest::collection::vec("[a-e1@O]{2,9}", 1..25),
            queries in proptest::collection::vec("[a-e1@O]{2,9}", 1..5),
            shards in 1usize..=8,
            k in 0usize..=2,
            d in 0usize..=4,
            exclude_identity in proptest::arbitrary::any::<bool>(),
            observed_only in proptest::arbitrary::any::<bool>(),
        ) {
            let mut flat = TokenDatabase::in_memory();
            let mut wide = ShardedTokenDatabase::in_memory(shards);
            for t in &tokens {
                flat.ingest_token(t);
                TokenStore::ingest_token(&mut wide, t);
            }
            let mut params = LookupParams::new(k, d);
            params.exclude_identity = exclude_identity;
            params.observed_only = observed_only;

            prop_assert_eq!(TokenStore::stats(&wide), flat.stats());
            for level in 0..NUM_LEVELS {
                prop_assert_eq!(
                    ShardedTokenDatabase::hashmap_view(&wide, level).unwrap(),
                    flat.hashmap_view(level).unwrap()
                );
            }
            for q in &queries {
                prop_assert_eq!(
                    look_up(&wide, q, params).unwrap(),
                    look_up(&flat, q, params).unwrap(),
                    "query {:?} params {:?}", q, params
                );
                prop_assert_eq!(TokenStore::get(&wide, q), flat.get(q));
            }

            // Persist/load round trip at this shard count.
            let store = Database::in_memory();
            TokenStore::persist_to(&wide, &store, "tokens").unwrap();
            let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
            prop_assert_eq!(restored.num_shards(), shards);
            prop_assert_eq!(TokenStore::stats(&restored), flat.stats());
            for q in &queries {
                prop_assert_eq!(
                    look_up(&restored, q, params).unwrap(),
                    look_up(&flat, q, params).unwrap(),
                    "after round trip: query {:?}", q
                );
            }
        }

        /// Normalization over the sharded backend is byte-identical to the
        /// single instance: same corrected text, same spans, same scores,
        /// same full candidate ordering.
        #[test]
        fn sharded_normalize_equals_single(
            corpus in proptest::collection::vec(text_strategy(), 1..6),
            texts in proptest::collection::vec(text_strategy(), 1..4),
            shards in 2usize..=8,
        ) {
            let mut flat = TokenDatabase::with_lexicon();
            for t in &corpus {
                flat.ingest_text(t);
            }
            let wide = ShardedTokenDatabase::from_database(&flat, shards);
            let lm = cryptext_lm::NgramLm::train(corpus.iter().map(|s| s.as_str()));
            let n = crate::normalize::Normalizer::new(&lm);
            let params = crate::normalize::NormalizeParams::default();
            for text in &texts {
                prop_assert_eq!(
                    n.normalize(&wide, text, params).unwrap(),
                    n.normalize(&flat, text, params).unwrap(),
                    "text {:?} shards {}", text, shards
                );
            }
        }

        /// The fan-out pin: for any corpus, shard count, query, and level,
        /// the Bloom-routed parallel collect-then-merge path produces the
        /// exact sequence of the sequential shard walk — including after a
        /// persist/load round trip, and including the prefix an
        /// early-exiting sink observes.
        #[test]
        fn fan_out_equals_sequential_walk(
            tokens in proptest::collection::vec("[a-e1@O]{2,9}", 1..25),
            query_str in "[a-e1@O]{2,9}",
            shards in 1usize..=8,
            k in 0usize..=2,
            cut in 0usize..=6,
        ) {
            let mut wide = ShardedTokenDatabase::in_memory(shards);
            for t in &tokens {
                TokenStore::ingest_token(&mut wide, t);
            }
            let query = EncodedQuery::for_token(&query_str, k).unwrap();

            let reference = {
                let mut scratch = SoundScratch::new();
                let mut out: Vec<(u32, String)> = Vec::new();
                let _ = TokenStore::for_each_sound_mate(&wide, &query, &mut scratch, |id, rec| {
                    out.push((id, rec.token.clone()));
                    ControlFlow::Continue(())
                });
                out
            };

            for store in [&wide, &ShardedTokenDatabase::load_from(&{
                let s = Database::in_memory();
                TokenStore::persist_to(&wide, &s, "tokens").unwrap();
                s
            }, "tokens").unwrap()] {
                // Full parallel path, forced past the dispatch shortcut.
                let matching = store.matching_shards(&query);
                let mut collected: Vec<(u32, String)> = Vec::new();
                let _ = store.fan_out_collected(
                    &query,
                    &matching,
                    &|id, rec: &TokenRecord| Some((id, rec.token.clone())),
                    |r| { collected.push(r); ControlFlow::Continue(()) },
                );
                prop_assert_eq!(&collected, &reference, "parallel == sequential");

                // Early exit after `cut` results sees exactly the prefix.
                let mut prefix: Vec<(u32, String)> = Vec::new();
                let _ = store.fan_out_collected(
                    &query,
                    &matching,
                    &|id, rec: &TokenRecord| Some((id, rec.token.clone())),
                    |r| {
                        prefix.push(r);
                        if prefix.len() > cut { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
                    },
                );
                let want = &reference[..reference.len().min(cut + 1)];
                prop_assert_eq!(&prefix[..], want, "early-exit prefix");
            }
        }

        /// `for_each_hit_until` with a breaking visitor observes exactly
        /// the prefix of the non-breaking visit sequence, on both backends.
        #[test]
        fn early_exit_hits_are_a_prefix(
            tokens in proptest::collection::vec("[a-e1@O]{2,9}", 1..20),
            query in "[a-e1@O]{2,9}",
            shards in 1usize..=8,
            d in 0usize..=3,
            cut in 0usize..=5,
        ) {
            let mut flat = TokenDatabase::in_memory();
            let mut wide = ShardedTokenDatabase::in_memory(shards);
            for t in &tokens {
                flat.ingest_token(t);
                TokenStore::ingest_token(&mut wide, t);
            }
            let params = LookupParams::new(1, d);
            let mut scratch = crate::lookup::LookupScratch::new();
            for backend in [true, false] {
                let full: Vec<(u32, usize)> = {
                    let mut out = Vec::new();
                    if backend {
                        crate::lookup::for_each_hit(&wide, &query, params, &mut scratch,
                            |id, _, dist| out.push((id, dist))).unwrap();
                    } else {
                        crate::lookup::for_each_hit(&flat, &query, params, &mut scratch,
                            |id, _, dist| out.push((id, dist))).unwrap();
                    }
                    out
                };
                let mut seen: Vec<(u32, usize)> = Vec::new();
                let visit = |seen: &mut Vec<(u32, usize)>, id: u32, dist: usize| {
                    seen.push((id, dist));
                    if seen.len() > cut { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
                };
                if backend {
                    crate::lookup::for_each_hit_until(&wide, &query, params, &mut scratch,
                        |id, _, dist| visit(&mut seen, id, dist)).unwrap();
                } else {
                    crate::lookup::for_each_hit_until(&flat, &query, params, &mut scratch,
                        |id, _, dist| visit(&mut seen, id, dist)).unwrap();
                }
                let want = &full[..full.len().min(cut + 1)];
                prop_assert_eq!(&seen[..], want, "backend sharded={}", backend);
            }
        }

        /// Parallel sharded batch ingest is byte-identical (per shard) to
        /// sequential sharded ingest of the same texts in order.
        #[test]
        fn sharded_batch_ingest_equals_sequential(
            texts in proptest::collection::vec(text_strategy(), 1..10),
            shards in 1usize..=6,
        ) {
            let mut seq = ShardedTokenDatabase::in_memory(shards);
            let mut expect_n = 0;
            for t in &texts {
                expect_n += TokenStore::ingest_text(&mut seq, t);
            }
            let mut par = ShardedTokenDatabase::in_memory(shards);
            let n = TokenStore::ingest_texts(&mut par, &texts);
            prop_assert_eq!(n, expect_n);
            for i in 0..shards {
                prop_assert_eq!(par.shard(i).records(), seq.shard(i).records(), "shard {}", i);
            }
            prop_assert_eq!(par.clean_sentences(), seq.clean_sentences());
        }
    }
}
