//! Consistent-hash sharding of the token database.
//!
//! [`ShardedTokenDatabase`] splits the corpus across N independent
//! [`TokenDatabase`] shards so dictionaries that outgrow one instance
//! (the paper mines ~3.6M perturbations and keeps growing) scale out
//! instead of up. The pieces:
//!
//! * **Routing** — every token is owned by exactly one shard, selected by
//!   [`jump_hash`](cryptext_common::hash::jump_hash) over the Fx hash of
//!   the token's **primary `H_1` Soundex code** (tokens without phonetic
//!   content fall back to hashing the raw token). Hashing the sound
//!   rather than the spelling keeps a clean word and the bulk of its
//!   perturbations colocated, and jump hashing keeps a future shard-count
//!   change from reshuffling the whole corpus.
//! * **Shard-local id spaces** — each shard keeps its own dense `u32`
//!   record ids (the `CodeIndex` postings stay small and cache-friendly);
//!   the router remaps them to globally unique ids at the
//!   [`TokenStore`] boundary as `global = local * n_shards + shard`.
//! * **Reads** — a query is encoded **once** into an
//!   [`EncodedQuery`] (codes + hashes + fold) and every shard's walk
//!   shares it; records are disjoint across shards, so no cross-shard
//!   dedup is needed and results are byte-identical to the
//!   single-instance backend (proptest-pinned below). `&self` reads are
//!   lock-free and `Sync`, so bulk endpoints fan out across cores without
//!   serializing behind any writer.
//! * **Skip-empty routing** — each shard's per-level code interner keeps a
//!   [`Bloom`](cryptext_common::hash::Bloom) summary of its code set
//!   (maintained at intern time, so ingest, resharding, and persist/load
//!   keep it current for free). A query walks only the shards whose
//!   summaries admit at least one of its codes
//!   ([`TokenDatabase::may_match`]); a ruled-out shard could not have
//!   produced a hit, so skipping it is invisible to results.
//! * **Per-query parallel fan-out** —
//!   [`TokenStore::fan_out_sound_mates`] runs the matching shards' walks
//!   through the [`cryptext_common::par`] pool (per-worker scratch,
//!   per-shard result buffers) and merges in shard order, so the sink
//!   observes exactly the sequential walk's sequence — early-exit
//!   [`ControlFlow`] semantics included. Single-matching-shard queries
//!   bypass the pool entirely.
//! * **Batch ingest** — the parallel prepare phase (tokenize, confusable
//!   fold, 3-level Soundex) runs per text through
//!   [`cryptext_common::par`], then the prepared words scatter into
//!   per-shard queues that merge **in parallel, one worker per shard**.
//! * **Persistence** — one document-store collection per shard plus a
//!   manifest record carrying the shard count and a **generation**
//!   number; persist and load fan out across shards through the same
//!   pool. A persist is crash-safe: the new layout is written first under
//!   a fresh generation (`{name}__g{g}__shard{i}`), the manifest swap
//!   (staging collection renamed over the live name — one WAL record) is
//!   the single commit point, and stale generations are swept only after
//!   the swap. A crash at any boundary leaves the previous persist fully
//!   loadable (fault-injection-pinned below).
//! * **Live resharding** — [`ShardedTokenDatabase::grow_one_shard`] grows
//!   N→N+1 in place. Jump hashing moves a key only to the *new* shard, so
//!   ~1/(N+1) of the records relocate (reusing their stored codes, no
//!   re-encoding) and the result is pinned byte-identical to a fresh
//!   (N+1)-shard build of the same corpus.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::ControlFlow;

use cryptext_common::failpoint;
use cryptext_common::hash::{FxHashMap, FxHashSet, ShardRing};
use cryptext_common::metrics::{Counter, MetricsRegistry};
use cryptext_common::par::{par_map, try_par_map};
use cryptext_common::{Error, Result};
use cryptext_docstore::{Database, Document, Filter, Value};
use cryptext_phonetics::{CustomSoundex, SoundexCode};
use cryptext_tokenizer::tokenize_spans;
use parking_lot::Mutex;

use crate::database::{
    EncodedQuery, PreparedWord, SoundScratch, TokenDatabase, TokenRecord, TokenStats,
    MAX_CLEAN_SENTENCES, NUM_LEVELS,
};
use crate::store::TokenStore;

thread_local! {
    /// Per-worker walk scratch for the parallel fan-out path: each pool
    /// worker (and the participating caller) dedups its shard walks
    /// through its own visited set, so no scratch crosses threads.
    static FAN_OUT_SCRATCH: RefCell<SoundScratch> = RefCell::new(SoundScratch::new());
}

/// One text prepared off-thread during parallel sharded ingest: the
/// routed, encoded words plus the clean-sentence gate bits.
struct ShardPreparedText {
    /// `(shard, word)` for every word that reaches a shard; `Skip`s are
    /// counted in `n_words` but not scattered.
    words: Vec<(u32, PreparedWord)>,
    n_words: usize,
    any_word: bool,
    all_english: bool,
}

/// A token database split across consistent-hash shards. See the module
/// docs for the routing and id-space design; the public surface is the
/// [`TokenStore`] trait plus a few shard-introspection helpers.
pub struct ShardedTokenDatabase {
    ring: ShardRing,
    soundex: [CustomSoundex; NUM_LEVELS],
    shards: Vec<TokenDatabase>,
    clean_sentences: Vec<String>,
    /// Shard walks actually performed (Bloom summary admitted the query).
    shard_walks: Counter,
    /// Shard walks skipped outright by the Bloom summaries.
    shard_skips: Counter,
}

impl ShardedTokenDatabase {
    /// An empty store over `shards` consistent-hash shards (clamped to at
    /// least 1).
    pub fn in_memory(shards: usize) -> Self {
        let ring = ShardRing::new(shards);
        ShardedTokenDatabase {
            ring,
            soundex: [
                CustomSoundex::new(0),
                CustomSoundex::new(1),
                CustomSoundex::new(2),
            ],
            shards: (0..ring.shards())
                .map(|_| TokenDatabase::in_memory())
                .collect(),
            clean_sentences: Vec::new(),
            shard_walks: Counter::new(),
            shard_skips: Counter::new(),
        }
    }

    /// An empty sharded store pre-seeded with the English lexicon.
    pub fn with_lexicon(shards: usize) -> Self {
        let mut db = Self::in_memory(shards);
        db.seed_lexicon_impl();
        db
    }

    /// Reshard an existing single-instance database: every record keeps
    /// its token, occurrence count, and lexicon status; clean sentences
    /// carry over. Statistics and retrieval results are preserved exactly.
    pub fn from_database(db: &TokenDatabase, shards: usize) -> Self {
        let mut out = Self::in_memory(shards);
        for rec in db.records() {
            let s = out.route(&rec.token);
            out.shards[s].upsert_token(&rec.token, rec.count);
        }
        for sentence in db.clean_sentences() {
            out.record_clean_sentence_impl(sentence);
        }
        out
    }

    /// The shard that owns `token`: jump hash of the primary `H_1` code,
    /// falling back to the raw token for strings without phonetic content.
    /// Crate internal beyond this module: the durable ingest layer routes
    /// delta-log records with it.
    #[inline]
    pub(crate) fn route(&self, token: &str) -> usize {
        match self.soundex[1].encode(token) {
            Some(code) => self.ring.route_str(code.as_str()),
            None => self.ring.route_str(token),
        }
    }

    /// Read access to one shard (for introspection and tests).
    pub fn shard(&self, i: usize) -> &TokenDatabase {
        &self.shards[i]
    }

    /// The record behind a global id handed out by
    /// [`TokenStore::for_each_sound_mate`].
    pub fn record(&self, global_id: u32) -> Option<&TokenRecord> {
        let n = self.shards.len() as u32;
        let shard = self.shards.get((global_id % n) as usize)?;
        shard.records().get((global_id / n) as usize)
    }

    /// The shards whose Bloom summaries admit at least one of `query`'s
    /// codes — the only shards a walk visits. False positives are
    /// possible (a listed shard may still produce no hits); false
    /// negatives are not (codes are only ever interned, never removed).
    pub fn matching_shards(&self, query: &EncodedQuery) -> Vec<u32> {
        (0..self.shards.len() as u32)
            .filter(|&s| self.shards[s as usize].may_match(query))
            .collect()
    }

    /// How many of a query's shard walks the Bloom summaries skip — the
    /// `skip-rate` statistic of the bench's `shards` dimension.
    pub fn skipped_shards(&self, query: &EncodedQuery) -> usize {
        self.shards.iter().filter(|s| !s.may_match(query)).count()
    }

    /// The parallel half of [`TokenStore::fan_out_sound_mates`]: run every
    /// matching shard's walk (candidate visit + `map`) on the worker pool,
    /// buffering per-shard results, then feed the buffers to `sink` in
    /// shard order. Because shards are disjoint and `map` is pure, the
    /// sink observes exactly the sequence the sequential walk produces —
    /// including under early exit, where later results are simply
    /// discarded. Kept separate from the dispatch heuristic so tests can
    /// pin this path against the sequential walk regardless of core count.
    fn fan_out_collected<'a, M, R, F>(
        &'a self,
        query: &EncodedQuery,
        matching: &[u32],
        map: &M,
        mut sink: F,
    ) -> ControlFlow<()>
    where
        M: Fn(u32, &'a TokenRecord) -> Option<R> + Sync,
        R: Send,
        F: FnMut(R) -> ControlFlow<()>,
    {
        let n = self.shards.len() as u32;
        let per_shard: Vec<Vec<R>> = par_map(matching, |&s| {
            FAN_OUT_SCRATCH.with(|scratch| {
                let scratch = &mut *scratch.borrow_mut();
                let mut out: Vec<R> = Vec::new();
                let flow =
                    self.shards[s as usize].for_each_sound_mate(query, scratch, |local, rec| {
                        if let Some(r) = map(local * n + s, rec) {
                            out.push(r);
                        }
                        ControlFlow::Continue(())
                    });
                debug_assert!(flow.is_continue());
                out
            })
        });
        for results in per_shard {
            for r in results {
                sink(r)?;
            }
        }
        ControlFlow::Continue(())
    }

    fn compute_codes(&self, token: &str) -> [Vec<SoundexCode>; NUM_LEVELS] {
        [
            self.soundex[0].encode_all(token),
            self.soundex[1].encode_all(token),
            self.soundex[2].encode_all(token),
        ]
    }

    /// The read-only, parallel-safe half of sharded batch ingest: route,
    /// gate, and encode every word of one text against the pre-batch
    /// shard states. Mirrors `TokenDatabase::prepare_text` word for word,
    /// with the routed shard standing in for the single instance.
    fn prepare_text(&self, text: &str) -> ShardPreparedText {
        let mut words = Vec::new();
        let mut n_words = 0usize;
        let mut any_word = false;
        let mut all_english = true;
        // New tokens already encoded earlier in this text (routing is
        // deterministic, so a repeated token always targets one shard).
        let mut local: FxHashMap<&str, bool> = FxHashMap::default();
        // Routing runs a Soundex encode, so memoize it per distinct token:
        // a word repeated through a text routes once, not per occurrence.
        let mut routed: FxHashMap<&str, u32> = FxHashMap::default();
        for tok in tokenize_spans(text) {
            if !tok.is_word() {
                continue;
            }
            let t = tok.text(text);
            any_word = true;
            if !cryptext_corpus::is_english_word(t) {
                all_english = false;
            }
            n_words += 1;
            if t.chars().count() < 2 {
                continue; // Skip: counted, never stored.
            }
            let s = match routed.get(t) {
                Some(&s) => s,
                None => {
                    let s = self.route(t) as u32;
                    routed.insert(t, s);
                    s
                }
            };
            if let Some(id) = self.shards[s as usize].id_of_token(t) {
                words.push((s, PreparedWord::Known(id)));
                continue;
            }
            match local.get(t) {
                Some(true) => words.push((s, PreparedWord::Repeat(t.to_string()))),
                Some(false) => {}
                None => {
                    let codes = self.compute_codes(t);
                    if codes[0].is_empty() {
                        local.insert(t, false); // no phonetic content
                    } else {
                        local.insert(t, true);
                        words.push((s, PreparedWord::Fresh(t.to_string(), Box::new(codes))));
                    }
                }
            }
        }
        ShardPreparedText {
            words,
            n_words,
            any_word,
            all_english,
        }
    }

    /// Apply one replayed count delta to the routed shard. Crate internal:
    /// the durable ingest layer's recovery path (`crate::durable`) replays
    /// delta-log records through this, reproducing live ingest exactly.
    pub(crate) fn upsert_routed(&mut self, token: &str, delta: u64) {
        let s = self.route(token);
        self.shards[s].upsert_token(token, delta);
    }

    /// Seed the slice of the English lexicon owned by `shard` — the exact
    /// subsequence (in lexicon order) that [`Self::seed_lexicon_impl`]
    /// would route there. Crate internal: delta-log replay re-seeds one
    /// shard at a time.
    pub(crate) fn seed_lexicon_shard(&mut self, shard: usize) {
        for w in cryptext_corpus::english_lexicon() {
            if self.route(w) == shard {
                self.shards[shard].upsert_token(w, 0);
            }
        }
    }

    fn record_clean_sentence_impl(&mut self, text: &str) {
        if self.clean_sentences.len() < MAX_CLEAN_SENTENCES {
            self.clean_sentences.push(text.to_string());
        }
    }

    fn seed_lexicon_impl(&mut self) {
        for w in cryptext_corpus::english_lexicon() {
            let s = self.route(w);
            self.shards[s].upsert_token(w, 0);
        }
    }

    /// Merged Table-I view across shards: identical to what a single
    /// instance over the same corpus would produce (each record lives in
    /// exactly one shard, and both sides sort codes and tokens).
    pub fn hashmap_view(&self, k: usize) -> Result<Vec<(String, Vec<String>)>> {
        TokenDatabase::check_level(k)?;
        let mut merged: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for shard in &self.shards {
            for (code, tokens) in shard.hashmap_view(k)? {
                merged.entry(code).or_default().extend(tokens);
            }
        }
        Ok(merged
            .into_iter()
            .map(|(code, mut tokens)| {
                tokens.sort();
                (code, tokens)
            })
            .collect())
    }

    /// The name of shard `i`'s collection under generation `g` of a
    /// persist of `collection`.
    fn shard_collection(collection: &str, g: u64, i: usize) -> String {
        format!("{collection}__g{g}__shard{i}")
    }

    /// Parse the generation out of a `{collection}__g{g}__shard{i}`-style
    /// name — including the `__staging` suffixes a crashed shard persist
    /// can leave behind. `None` for names that are not part of a sharded
    /// layout of `collection` (the stale-generation sweep only ever drops
    /// names this function recognizes). Parsing the number rather than
    /// string-prefix matching keeps `g1` from swallowing `g10`.
    fn collection_generation(collection: &str, name: &str) -> Option<u64> {
        let rest = name.strip_prefix(collection)?.strip_prefix("__g")?;
        let end = rest.find(|c: char| !c.is_ascii_digit())?;
        if end == 0 || !rest[end..].starts_with("__shard") {
            return None;
        }
        rest[..end].parse().ok()
    }

    /// Read the `(shard_count, generation)` pair recorded by a sharded
    /// persist of `collection`, or `None` when the collection is absent or
    /// not a sharded layout.
    fn manifest_meta(store: &Database, collection: &str) -> Result<Option<(usize, u64)>> {
        if !store.has_collection(collection) {
            return Ok(None);
        }
        let Some((_, doc)) = store.find_one(collection, &Filter::All)? else {
            return Ok(None);
        };
        let Some(n) = doc
            .get("shard_manifest")
            .and_then(Value::as_int)
            .filter(|&n| n > 0)
        else {
            return Ok(None);
        };
        let g = doc
            .get("generation")
            .and_then(Value::as_int)
            .unwrap_or(0)
            .max(0) as u64;
        Ok(Some((n as usize, g)))
    }

    /// Read the shard count recorded by a sharded persist of `collection`,
    /// or `None` when the collection is absent or not a sharded layout.
    pub fn manifest_shards(store: &Database, collection: &str) -> Result<Option<usize>> {
        Ok(Self::manifest_meta(store, collection)?.map(|(n, _)| n))
    }

    /// Route a stored record against `ring` without re-running the Soundex
    /// encoder: records keep their codes, and `encode_all` lists the
    /// primary `H_1` reading first, so resharding reuses it (with the same
    /// raw-token fallback as [`Self::route`] for records without phonetic
    /// content).
    fn route_record(ring: &ShardRing, rec: &TokenRecord) -> usize {
        match rec.codes[1].first() {
            Some(code) => ring.route_str(code.as_str()),
            None => ring.route_str(&rec.token),
        }
    }

    /// Grow the store by one shard in place, relocating only the records
    /// whose jump-hash home changes. Jump consistent hashing guarantees a
    /// key's route either stays put or moves to the *new* shard, so going
    /// N→N+1 touches ~1/(N+1) of the corpus and every retained shard keeps
    /// its records (and record order) byte-identical to a fresh
    /// (N+1)-shard build of the same corpus. Reads pause only for the
    /// rebuild itself (`&mut self`); before and after, every query surface
    /// — lookups, stats, Table-I views, Bloom routing — matches the fresh
    /// build (proptest-pinned below). Returns the number of records moved.
    pub fn grow_one_shard(&mut self) -> usize {
        let old_n = self.shards.len();
        let new_ring = ShardRing::new(old_n + 1);
        let mut movers: Vec<TokenRecord> = Vec::new();
        for s in 0..old_n {
            let shard = std::mem::take(&mut self.shards[s]);
            let mut keep = TokenDatabase::in_memory();
            for rec in shard.into_records() {
                let home = Self::route_record(&new_ring, &rec);
                // Jump hash moves keys only to the new last shard;
                // anything else breaks the minimal-movement contract.
                debug_assert!(home == s || home == old_n);
                if home == s {
                    keep.insert_record_raw(rec);
                } else {
                    movers.push(rec);
                }
            }
            self.shards[s] = keep;
        }
        let moved = movers.len();
        let mut fresh = TokenDatabase::in_memory();
        for rec in movers {
            fresh.insert_record_raw(rec);
        }
        self.shards.push(fresh);
        self.ring = new_ring;
        moved
    }
}

impl TokenStore for ShardedTokenDatabase {
    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn for_each_sound_mate<'a, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        mut f: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(u32, &'a TokenRecord) -> ControlFlow<()>,
    {
        let n = self.shards.len() as u32;
        // Tally walk/skip decisions locally and flush as two adds per
        // query (early exit included), never per shard.
        let mut walked = 0u64;
        let mut skipped = 0u64;
        let mut flow = ControlFlow::Continue(());
        for (s, shard) in self.shards.iter().enumerate() {
            if !shard.may_match(query) {
                skipped += 1;
                continue; // Bloom says no bucket here can match.
            }
            walked += 1;
            let s = s as u32;
            if shard
                .for_each_sound_mate(query, scratch, |local, rec| f(local * n + s, rec))
                .is_break()
            {
                flow = ControlFlow::Break(());
                break;
            }
        }
        self.shard_walks.add(walked);
        self.shard_skips.add(skipped);
        flow
    }

    fn fan_out_sound_mates<'a, M, R, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        map: M,
        mut sink: F,
    ) -> ControlFlow<()>
    where
        M: Fn(u32, &'a TokenRecord) -> Option<R> + Sync,
        R: Send,
        F: FnMut(R) -> ControlFlow<()>,
    {
        let n = self.shards.len() as u32;
        // Route through the scratch's reusable shard buffer — the hot
        // path stays allocation-free per query.
        let mut matching = std::mem::take(&mut scratch.fan_out);
        matching.clear();
        matching.extend((0..n).filter(|&s| self.shards[s as usize].may_match(query)));
        self.shard_walks.add(matching.len() as u64);
        self.shard_skips.add(n as u64 - matching.len() as u64);
        let flow = if matching.len() <= 1 {
            // Nothing to fan out: walk the (at most one) matching shard
            // inline on the caller's scratch, no per-shard buffers.
            let mut walk = || -> ControlFlow<()> {
                for &s in &matching {
                    self.shards[s as usize].for_each_sound_mate(query, scratch, |local, rec| {
                        match map(local * n + s, rec) {
                            Some(r) => sink(r),
                            None => ControlFlow::Continue(()),
                        }
                    })?;
                }
                ControlFlow::Continue(())
            };
            walk()
        } else {
            self.fan_out_collected(query, &matching, &map, sink)
        };
        scratch.fan_out = matching;
        flow
    }

    fn get(&self, token: &str) -> Option<&TokenRecord> {
        self.shards[self.route(token)].get(token)
    }

    fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "cryptext_store_shard_walks_total",
            "Per-query shard walks the Bloom summaries admitted",
            &[],
            &self.shard_walks,
        );
        registry.register_counter(
            "cryptext_store_shard_skips_total",
            "Per-query shard walks skipped by the Bloom summaries",
            &[],
            &self.shard_skips,
        );
    }

    fn stats(&self) -> TokenStats {
        let mut stats = TokenStats {
            unique_tokens: 0,
            total_occurrences: 0,
            unique_sounds: [0; NUM_LEVELS],
            english_tokens: 0,
        };
        for shard in &self.shards {
            let s = shard.stats();
            stats.unique_tokens += s.unique_tokens;
            stats.total_occurrences += s.total_occurrences;
            stats.english_tokens += s.english_tokens;
        }
        // Sounds are not disjoint across shards (a code can host tokens in
        // several shards through ambiguous secondary readings), so the
        // per-level counts are unions, not sums.
        for k in 0..NUM_LEVELS {
            let mut seen: FxHashSet<&str> = FxHashSet::default();
            for shard in &self.shards {
                for name in shard.code_names(k) {
                    seen.insert(name);
                }
            }
            stats.unique_sounds[k] = seen.len();
        }
        stats
    }

    fn unique_tokens(&self) -> usize {
        self.shards.iter().map(|s| s.records().len()).sum()
    }

    fn clean_sentences(&self) -> &[String] {
        &self.clean_sentences
    }

    fn soundex(&self, k: usize) -> Result<&CustomSoundex> {
        TokenDatabase::check_level(k)?;
        Ok(&self.soundex[k])
    }

    fn hashmap_view(&self, k: usize) -> Result<Vec<(String, Vec<String>)>> {
        ShardedTokenDatabase::hashmap_view(self, k)
    }

    fn ingest_token(&mut self, token: &str) {
        if token.chars().count() < 2 {
            return;
        }
        if self.soundex[0].encode(token).is_none() {
            return; // no phonetic content
        }
        let s = self.route(token);
        self.shards[s].upsert_token(token, 1);
    }

    // `ingest_text` uses the trait's default implementation: the canonical
    // tokenize/gate/clean-sentence loop over `ingest_token` +
    // `record_clean_sentence`, shared with the single-instance backend so
    // the two can never drift.

    fn ingest_texts<T: AsRef<str> + Sync>(&mut self, texts: &[T]) -> usize {
        let prepared: Vec<ShardPreparedText> =
            par_map(texts, |text| self.prepare_text(text.as_ref()));

        // Scatter into per-shard merge queues in input order, collecting
        // clean sentences at the router (the gate is per text, not per
        // shard).
        let mut queues: Vec<Vec<PreparedWord>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut n = 0;
        for (text, prep) in texts.iter().zip(prepared) {
            n += prep.n_words;
            for (s, word) in prep.words {
                queues[s as usize].push(word);
            }
            if prep.any_word && prep.all_english {
                self.record_clean_sentence_impl(text.as_ref());
            }
        }

        // Parallel per-shard merge: shards are disjoint, so each queue
        // applies independently. Each Mutex is locked exactly once, by the
        // worker that owns that shard's merge.
        let jobs: Vec<Mutex<(TokenDatabase, Vec<PreparedWord>)>> =
            self.shards.drain(..).zip(queues).map(Mutex::new).collect();
        par_map(&jobs, |job| {
            let mut guard = job.lock();
            let (shard, queue) = &mut *guard;
            for word in queue.drain(..) {
                shard.merge_prepared_word(word);
            }
        });
        self.shards = jobs.into_iter().map(|job| job.into_inner().0).collect();
        n
    }

    fn record_clean_sentence(&mut self, text: &str) {
        self.record_clean_sentence_impl(text)
    }

    fn seed_lexicon(&mut self) {
        self.seed_lexicon_impl()
    }

    fn persist_to(&self, store: &Database, collection: &str) -> Result<()> {
        // Crash-safe replace: write the new layout under a fresh
        // generation first, swap the manifest last, clean stale
        // generations only after the swap. The manifest rename is the
        // single commit point — a crash anywhere else leaves the previous
        // persist fully loadable.
        let live = Self::manifest_meta(store, collection)?.map_or(0, |(_, g)| g);
        let ceiling = store
            .collections_with_prefix(&format!("{collection}__g"))
            .iter()
            .filter_map(|name| Self::collection_generation(collection, name))
            .fold(live, u64::max);
        let generation = ceiling + 1;

        failpoint::check("persist.shards.write")?;
        // Fan out: one collection per shard, persisted in parallel (the
        // document store takes per-collection locks, so writers do not
        // contend). The live generation's collections are untouched.
        let jobs: Vec<(usize, &TokenDatabase)> = self.shards.iter().enumerate().collect();
        try_par_map(&jobs, |&(i, shard)| {
            shard.persist_to(store, &Self::shard_collection(collection, generation, i))
        })?;

        // Stage the manifest and rename it over the live name: the rename
        // is a single WAL record with replace semantics, so recovery sees
        // the old manifest or the new one, never neither.
        let staging = format!("{collection}__manifest_staging");
        if store.has_collection(&staging) {
            store.drop_collection(&staging)?;
        }
        store.create_collection(&staging)?;
        store.insert(
            &staging,
            Document::new()
                .with("shard_manifest", self.shards.len() as i64)
                .with("generation", generation as i64),
        )?;
        failpoint::check("persist.manifest.swap")?;
        store.rename_collection(&staging, collection)?;

        // Only now is every other generation garbage — including leftovers
        // from persists that crashed before their swap.
        for name in store.collections_with_prefix(&format!("{collection}__g")) {
            match Self::collection_generation(collection, &name) {
                Some(g) if g != generation => store.drop_collection(&name)?,
                _ => {}
            }
        }
        Ok(())
    }

    fn load_from(store: &Database, collection: &str) -> Result<Self> {
        let (n, generation) = Self::manifest_meta(store, collection)?.ok_or_else(|| {
            Error::corrupt(format!(
                "collection {collection} has no shard-count manifest"
            ))
        })?;
        let idx: Vec<usize> = (0..n).collect();
        let shards = try_par_map(&idx, |&i| {
            TokenDatabase::load_from(store, &Self::shard_collection(collection, generation, i))
        })?;
        let mut out = Self::in_memory(n);
        out.shards = shards;
        Ok(out)
    }
}

impl std::fmt::Debug for ShardedTokenDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = TokenStore::stats(self);
        f.debug_struct("ShardedTokenDatabase")
            .field("shards", &self.shards.len())
            .field("unique_tokens", &s.unique_tokens)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::{look_up, LookupParams};

    const FIXTURE_TEXTS: [&str; 6] = [
        "the dirrty republicans",
        "thee dirty repubLIEcans",
        "the dirty republic@@ns",
        "the demokRATs and the democrats",
        "thinking about suic1de",
        "suicide prevention matters",
    ];

    fn single() -> TokenDatabase {
        let mut db = TokenDatabase::in_memory();
        for t in FIXTURE_TEXTS {
            db.ingest_text(t);
        }
        db
    }

    fn sharded(n: usize) -> ShardedTokenDatabase {
        let mut db = ShardedTokenDatabase::in_memory(n);
        for t in FIXTURE_TEXTS {
            TokenStore::ingest_text(&mut db, t);
        }
        db
    }

    fn assert_equivalent(flat: &TokenDatabase, wide: &ShardedTokenDatabase) {
        assert_eq!(TokenStore::stats(wide), flat.stats());
        assert_eq!(wide.clean_sentences(), flat.clean_sentences());
        for k in 0..NUM_LEVELS {
            assert_eq!(
                ShardedTokenDatabase::hashmap_view(wide, k).unwrap(),
                flat.hashmap_view(k).unwrap(),
                "H_{k} identical"
            );
        }
        for q in [
            "republicans",
            "democrats",
            "suic1de",
            "the",
            "zzzzzz",
            "vãccine",
        ] {
            for k in 0..NUM_LEVELS {
                for d in 0..4 {
                    for params in [
                        LookupParams::new(k, d),
                        LookupParams::new(k, d).perturbations_only(),
                        LookupParams::new(k, d).observed(),
                    ] {
                        assert_eq!(
                            look_up(wide, q, params).unwrap(),
                            look_up(flat, q, params).unwrap(),
                            "query {q:?} params {params:?}"
                        );
                    }
                }
            }
            assert_eq!(TokenStore::get(wide, q), flat.get(q));
        }
    }

    #[test]
    fn sharded_matches_single_for_every_shard_count() {
        let flat = single();
        for n in 1..=8 {
            let wide = sharded(n);
            assert_eq!(wide.num_shards(), n);
            assert_equivalent(&flat, &wide);
        }
    }

    #[test]
    fn every_record_lives_in_exactly_one_shard() {
        let wide = sharded(4);
        let flat = single();
        let total: usize = (0..4).map(|i| wide.shard(i).records().len()).sum();
        assert_eq!(total, flat.stats().unique_tokens);
        // With more than one shard and this corpus, the records actually
        // spread out (the router is not degenerate).
        let populated = (0..4)
            .filter(|&i| !wide.shard(i).records().is_empty())
            .count();
        assert!(populated > 1, "tokens spread across shards");
    }

    #[test]
    fn routing_groups_primary_sound_mates() {
        let wide = sharded(8);
        // Tokens sharing a primary H_1 code are colocated by construction.
        let a = wide.route("dirty");
        let b = wide.route("dirrty");
        assert_eq!(a, b, "same primary H_1 code → same shard");
    }

    #[test]
    fn global_ids_decode_back_to_records() {
        let wide = sharded(3);
        let mut scratch = SoundScratch::new();
        let query = EncodedQuery::for_token("republicans", 1).unwrap();
        let mut seen = 0;
        let flow = TokenStore::for_each_sound_mate(&wide, &query, &mut scratch, |id, rec| {
            assert_eq!(
                wide.record(id).expect("global id resolves"),
                rec,
                "id ↔ record agree through the shard remap"
            );
            seen += 1;
            ControlFlow::Continue(())
        });
        assert!(flow.is_continue());
        assert!(seen >= 3, "all republicans variants visited");
        assert!(wide.record(u32::MAX).is_none());
    }

    /// Reference sequence: the sequential shard-order walk with the map
    /// applied inline — what `fan_out_sound_mates` must reproduce exactly.
    fn sequential_reference(
        wide: &ShardedTokenDatabase,
        query: &EncodedQuery,
    ) -> Vec<(u32, String)> {
        let mut scratch = SoundScratch::new();
        let mut out = Vec::new();
        let _ = TokenStore::for_each_sound_mate(wide, query, &mut scratch, |id, rec| {
            out.push((id, rec.token.clone()));
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn parallel_fan_out_matches_sequential_walk_exactly() {
        for n in [2usize, 3, 5, 8] {
            let wide = sharded(n);
            for token in ["republicans", "the", "suic1de", "democrats", "zzzzzz"] {
                for k in 0..NUM_LEVELS {
                    let query = EncodedQuery::for_token(token, k).unwrap();
                    let reference = sequential_reference(&wide, &query);

                    // Drive the parallel collect-then-merge path directly
                    // (bypassing the ≤1-matching-shard shortcut) so the pin
                    // holds even on single-core hosts and sparse queries.
                    let matching = wide.matching_shards(&query);
                    let mut collected = Vec::new();
                    let flow = wide.fan_out_collected(
                        &query,
                        &matching,
                        &|id, rec: &TokenRecord| Some((id, rec.token.clone())),
                        |r| {
                            collected.push(r);
                            ControlFlow::Continue(())
                        },
                    );
                    assert!(flow.is_continue());
                    assert_eq!(
                        collected, reference,
                        "{n} shards, {token:?} k={k}: parallel == sequential"
                    );

                    // The public dispatcher agrees too.
                    let mut scratch = SoundScratch::new();
                    let mut dispatched = Vec::new();
                    let _ = wide.fan_out_sound_mates(
                        &query,
                        &mut scratch,
                        |id, rec| Some((id, rec.token.clone())),
                        |r| {
                            dispatched.push(r);
                            ControlFlow::Continue(())
                        },
                    );
                    assert_eq!(dispatched, reference);
                }
            }
        }
    }

    #[test]
    fn fan_out_early_exit_yields_exact_prefix() {
        let wide = sharded(4);
        let query = EncodedQuery::for_token("republicans", 1).unwrap();
        let reference = sequential_reference(&wide, &query);
        assert!(reference.len() >= 3, "fixture has republicans variants");
        let matching = wide.matching_shards(&query);
        for cut in 0..=reference.len() {
            let mut seen = Vec::new();
            let flow = wide.fan_out_collected(
                &query,
                &matching,
                &|id, rec: &TokenRecord| Some((id, rec.token.clone())),
                |r| {
                    seen.push(r);
                    if seen.len() > cut {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            if cut < reference.len() {
                assert!(flow.is_break(), "cut {cut} breaks");
                assert_eq!(seen, reference[..cut + 1], "prefix after break at {cut}");
            } else {
                assert!(flow.is_continue());
                assert_eq!(seen, reference);
            }
        }
    }

    #[test]
    fn bloom_routing_skips_shards_without_losing_hits() {
        // At 8 shards most queries route to a strict subset; every hit a
        // full (skip-free) walk finds must still be found.
        let wide = sharded(8);
        let mut skipped_total = 0usize;
        for token in ["republicans", "democrats", "suic1de", "the", "dirty"] {
            let query = EncodedQuery::for_token(token, 1).unwrap();
            let matching = wide.matching_shards(&query);
            skipped_total += wide.skipped_shards(&query);
            assert_eq!(matching.len() + wide.skipped_shards(&query), 8);
            // Walk the skipped shards exhaustively: none may contain a hit.
            let mut scratch = SoundScratch::new();
            for s in 0..8u32 {
                if matching.contains(&s) {
                    continue;
                }
                let mut found = 0usize;
                let _ = wide
                    .shard(s as usize)
                    .for_each_sound_mate(&query, &mut scratch, |_, _| {
                        found += 1;
                        ControlFlow::Continue(())
                    });
                assert_eq!(found, 0, "skipped shard {s} had a hit for {token:?}");
            }
        }
        assert!(
            skipped_total > 0,
            "with 8 shards and this corpus, routing must actually skip"
        );
    }

    #[test]
    fn batch_ingest_matches_sequential_and_single() {
        let texts: Vec<String> = (0..40)
            .map(|i| match i % 5 {
                0 => format!("the dirrty republicans round {i}"),
                1 => "thee dirty repubLIEcans".to_string(),
                2 => format!("vacc1ne mandate pushback {i}"),
                3 => "the vaccine mandate was announced".to_string(),
                _ => "thinking about suic1de 🙂 ok".to_string(),
            })
            .collect();

        let mut flat = TokenDatabase::in_memory();
        let mut expect_n = 0;
        for t in &texts {
            expect_n += flat.ingest_text(t);
        }

        for n in [1usize, 3, 8] {
            let mut seq = ShardedTokenDatabase::in_memory(n);
            for t in &texts {
                TokenStore::ingest_text(&mut seq, t);
            }
            let mut par = ShardedTokenDatabase::in_memory(n);
            let got_n = TokenStore::ingest_texts(&mut par, &texts);
            assert_eq!(got_n, expect_n, "{n} shards: token count");
            for i in 0..n {
                assert_eq!(
                    par.shard(i).records(),
                    seq.shard(i).records(),
                    "{n} shards: shard {i} byte-identical to sequential"
                );
            }
            assert_eq!(par.clean_sentences(), seq.clean_sentences());
            assert_equivalent(&flat, &par);
        }
    }

    #[test]
    fn batch_ingest_on_prepopulated_store() {
        let mut flat = TokenDatabase::with_lexicon();
        let mut wide = ShardedTokenDatabase::with_lexicon(4);
        let texts = ["the demokRATs rallied", "the demokRATs rallied again"];
        for t in texts {
            flat.ingest_text(t);
        }
        TokenStore::ingest_texts(&mut wide, &texts);
        assert_eq!(TokenStore::get(&wide, "demokRATs").unwrap().count, 2);
        assert_equivalent(&flat, &wide);
    }

    #[test]
    fn from_database_preserves_everything() {
        let flat = single();
        for n in [1usize, 2, 5, 8] {
            let wide = ShardedTokenDatabase::from_database(&flat, n);
            assert_equivalent(&flat, &wide);
        }
    }

    #[test]
    fn persist_load_round_trip_per_shard_count() {
        let flat = single();
        for n in [1usize, 2, 4, 8] {
            let wide = sharded(n);
            let store = Database::in_memory();
            TokenStore::persist_to(&wide, &store, "tokens").unwrap();
            assert_eq!(
                ShardedTokenDatabase::manifest_shards(&store, "tokens").unwrap(),
                Some(n)
            );
            let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
            assert_eq!(restored.num_shards(), n);
            assert_eq!(TokenStore::stats(&restored), flat.stats());
            for k in 0..NUM_LEVELS {
                assert_eq!(
                    ShardedTokenDatabase::hashmap_view(&restored, k).unwrap(),
                    flat.hashmap_view(k).unwrap()
                );
            }
            assert_eq!(
                look_up(&restored, "republicans", LookupParams::paper_default()).unwrap(),
                look_up(&flat, "republicans", LookupParams::paper_default()).unwrap()
            );
        }
    }

    /// Count the shard collections (any generation) persisted under
    /// `collection`.
    fn shard_collection_count(store: &Database, collection: &str) -> usize {
        store
            .collections_with_prefix(&format!("{collection}__g"))
            .iter()
            .filter(|name| ShardedTokenDatabase::collection_generation(collection, name).is_some())
            .count()
    }

    #[test]
    fn repersist_replaces_and_drops_stale_shards() {
        // Persist with 8 shards, then re-persist the same corpus with 2:
        // the load must see exactly 2 shards and the 8 stale collections
        // must be gone (double-persist is replace, never append).
        let store = Database::in_memory();
        TokenStore::persist_to(&sharded(8), &store, "tokens").unwrap();
        assert_eq!(shard_collection_count(&store, "tokens"), 8);

        let two = sharded(2);
        TokenStore::persist_to(&two, &store, "tokens").unwrap();
        TokenStore::persist_to(&two, &store, "tokens").unwrap(); // double persist
        assert_eq!(shard_collection_count(&store, "tokens"), 2);

        let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
        assert_eq!(restored.num_shards(), 2);
        assert_eq!(TokenStore::stats(&restored), single().stats());
    }

    #[test]
    fn persist_kill_between_steps_preserves_previous_state() {
        use cryptext_common::failpoint;

        let store = Database::in_memory();
        let old = sharded(3);
        TokenStore::persist_to(&old, &store, "tokens").unwrap();
        let mut newer = sharded(3);
        TokenStore::ingest_text(&mut newer, "entirely fresh zebra vocabulary");
        let old_stats = TokenStore::stats(&old);
        let new_stats = TokenStore::stats(&newer);
        assert_ne!(old_stats, new_stats);

        // Kill before the shard writes, then between the shard writes and
        // the manifest swap: both must leave the old persist loadable.
        for point in ["persist.shards.write", "persist.manifest.swap"] {
            let guard = failpoint::arm(point, "kill");
            let err = TokenStore::persist_to(&newer, &store, "tokens").unwrap_err();
            assert!(failpoint::is_injected(&err), "{point}: {err}");
            drop(guard);
            let loaded = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
            assert_eq!(
                TokenStore::stats(&loaded),
                old_stats,
                "{point}: old state intact after injected crash"
            );
        }

        // With no failpoint armed the persist commits and sweeps every
        // stale generation, including the crashed attempts' leftovers.
        TokenStore::persist_to(&newer, &store, "tokens").unwrap();
        let loaded = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
        assert_eq!(TokenStore::stats(&loaded), new_stats);
        let gens: std::collections::BTreeSet<u64> = store
            .collections_with_prefix("tokens__g")
            .iter()
            .filter_map(|n| ShardedTokenDatabase::collection_generation("tokens", n))
            .collect();
        assert_eq!(gens.len(), 1, "exactly one generation survives");
        assert!(!store.has_collection("tokens__manifest_staging"));
    }

    #[test]
    fn flat_persist_kill_at_commit_preserves_previous_state() {
        use cryptext_common::failpoint;

        let store = Database::in_memory();
        let old = single();
        old.persist_to(&store, "tokens").unwrap();
        let mut newer = single();
        newer.ingest_text("entirely fresh zebra vocabulary");

        let guard = failpoint::arm("persist.commit", "kill");
        let err = newer.persist_to(&store, "tokens").unwrap_err();
        assert!(failpoint::is_injected(&err));
        drop(guard);
        let loaded = TokenDatabase::load_from(&store, "tokens").unwrap();
        assert_eq!(loaded.stats(), old.stats(), "old state intact");

        newer.persist_to(&store, "tokens").unwrap();
        let loaded = TokenDatabase::load_from(&store, "tokens").unwrap();
        assert_eq!(loaded.stats(), newer.stats());
        assert!(
            store.collections_with_prefix("tokens__").is_empty(),
            "staging swept after commit"
        );
    }

    #[test]
    fn grow_one_shard_moves_minimum_and_matches_fresh_build() {
        let flat = single();
        for n in 1usize..=8 {
            let mut grown = sharded(n);
            let total: usize = (0..n).map(|i| grown.shard(i).records().len()).sum();
            let moved = grown.grow_one_shard();
            assert_eq!(grown.num_shards(), n + 1);

            let fresh = sharded(n + 1);
            // Exactly the records whose jump-hash home changed moved, and
            // they all landed in the new shard — the same population a
            // fresh (n+1)-shard build routes there.
            assert_eq!(moved, fresh.shard(n).records().len(), "n={n}: movers");
            assert!(moved <= total);
            // Retained shards are byte-identical to the fresh build; the
            // new shard holds the same record set (arrival order differs —
            // movers drain in shard order, not corpus order).
            for i in 0..n {
                assert_eq!(
                    grown.shard(i).records(),
                    fresh.shard(i).records(),
                    "n={n}: retained shard {i} byte-identical"
                );
            }
            let sorted = |db: &ShardedTokenDatabase| {
                let mut v: Vec<TokenRecord> = db.shard(n).records().to_vec();
                v.sort_by(|a, b| a.token.cmp(&b.token));
                v
            };
            assert_eq!(sorted(&grown), sorted(&fresh), "n={n}: new shard set");
            assert_equivalent(&flat, &grown);
        }
    }

    #[test]
    fn grow_then_persist_load_round_trips() {
        let flat = single();
        for n in [1usize, 3, 7] {
            let mut grown = sharded(n);
            grown.grow_one_shard();
            let store = Database::in_memory();
            TokenStore::persist_to(&grown, &store, "tokens").unwrap();
            let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
            assert_eq!(restored.num_shards(), n + 1);
            assert_eq!(TokenStore::stats(&restored), flat.stats());
            for k in 0..NUM_LEVELS {
                assert_eq!(
                    ShardedTokenDatabase::hashmap_view(&restored, k).unwrap(),
                    flat.hashmap_view(k).unwrap()
                );
            }
            assert_eq!(
                look_up(&restored, "republicans", LookupParams::paper_default()).unwrap(),
                look_up(&flat, "republicans", LookupParams::paper_default()).unwrap()
            );
        }
    }

    #[test]
    fn load_from_without_manifest_is_corrupt() {
        let store = Database::in_memory();
        single().persist_to(&store, "tokens").unwrap();
        let err = ShardedTokenDatabase::load_from(&store, "tokens").unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)));
        assert!(ShardedTokenDatabase::load_from(&store, "missing").is_err());
    }

    #[test]
    fn crawler_feeds_sharded_store_identically() {
        use crate::ingest::Crawler;
        let platform = cryptext_stream::SocialPlatform::simulate(cryptext_stream::StreamConfig {
            n_posts: 200,
            seed: 3,
            ..cryptext_stream::StreamConfig::default()
        });
        let mut flat = TokenDatabase::in_memory();
        let mut wide = ShardedTokenDatabase::in_memory(4);
        let a = Crawler::new().run_once(&platform, &mut flat, 0);
        let b = Crawler::new().run_once(&platform, &mut wide, 0);
        assert_eq!(a, b, "crawl statistics agree");
        assert_eq!(TokenStore::stats(&wide), flat.stats());
    }

    #[test]
    fn normalize_identical_across_backends() {
        let mut flat = TokenDatabase::with_lexicon();
        for t in FIXTURE_TEXTS {
            flat.ingest_text(t);
        }
        let lm = cryptext_lm::NgramLm::train([
            "biden belongs to the democrats",
            "the republicans blocked the bill",
            "suicide prevention is important",
        ]);
        let n = crate::normalize::Normalizer::new(&lm);
        let wide = ShardedTokenDatabase::from_database(&flat, 5);
        for text in [
            "Biden belongs to the demokRATs",
            "thinking about suic1de",
            "the dirty republic@@ns everywhere",
            "clean text stays clean",
        ] {
            assert_eq!(
                n.normalize(&wide, text, crate::normalize::NormalizeParams::default())
                    .unwrap(),
                n.normalize(&flat, text, crate::normalize::NormalizeParams::default())
                    .unwrap(),
                "text {text:?}"
            );
        }
    }

    /// Regression for the Bloom growth policy: after a large ingest — the
    /// `exp_bench_json` corpus (4 000 simulated posts, seed 7) plus
    /// enough distinct-code vocabulary that **every** shard rebuilds its
    /// summaries wider — the 8-shard skip rate over the bench query mix
    /// must hold the PR 4 baseline (85 of 96 shard walks skipped):
    /// growing a summary may only *sharpen* routing, never dull it. And
    /// the routing must stay exact: no skipped shard hides a hit.
    #[test]
    fn grown_summaries_hold_the_bench_skip_rate_at_8_shards() {
        let platform = cryptext_stream::SocialPlatform::simulate(cryptext_stream::StreamConfig {
            n_posts: 4_000,
            seed: 7,
            ..cryptext_stream::StreamConfig::default()
        });
        let mut flat = TokenDatabase::with_lexicon();
        for post in platform.posts() {
            flat.ingest_text(&post.text);
        }
        // The simulated platform's vocabulary alone stays under the
        // growth threshold; the long tail of a real crawl is what pushes
        // the interners past it. Synthesize that tail with pairwise
        // distinct-code tokens (disjoint from the query mix by prefix).
        for i in 0..8 * 2_800 {
            flat.ingest_token(&super::proptests::distinct_sound_token(i));
        }
        let wide = ShardedTokenDatabase::from_database(&flat, 8);
        for s in 0..8 {
            assert!(
                wide.shard(s).summary_bits(0) > 4_096,
                "shard {s} must have rebuilt its level-0 summary wider"
            );
        }

        let queries = [
            "democrats",
            "republicans",
            "vaccine",
            "suicide",
            "muslim",
            "depression",
            "vacc1ne",
            "the",
            "demokrats",
            "zzzmiss",
            "lesbian",
            "dirty",
        ];
        let k = LookupParams::paper_default().k;
        let mut walks = 0usize;
        let mut skipped = 0usize;
        let mut scratch = SoundScratch::new();
        for q in queries {
            let query = EncodedQuery::for_token(q, k).unwrap();
            walks += 8;
            skipped += wide.skipped_shards(&query);
            // Exactness: every shard the router skips truly has no hits.
            let matching = wide.matching_shards(&query);
            for s in 0..8u32 {
                if matching.contains(&s) {
                    continue;
                }
                let mut found = 0usize;
                let _ = wide
                    .shard(s as usize)
                    .for_each_sound_mate(&query, &mut scratch, |_, _| {
                        found += 1;
                        ControlFlow::Continue(())
                    });
                assert_eq!(found, 0, "skipped shard {s} had a hit for {q:?}");
            }
        }
        assert!(
            skipped >= 85,
            "skip-rate regression: {skipped}/{walks} shard walks skipped \
             (PR 4 baseline: 85/96)"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::lookup::{look_up, LookupParams};
    use proptest::prelude::*;

    /// Multi-word text over an alphabet that exercises leet fan-out
    /// (1 ↔ i/l, @ ↔ a) against the seeded lexicon.
    fn text_strategy() -> impl Strategy<Value = String> {
        proptest::collection::vec("[a-e1@]{2,8}", 0..6).prop_map(|ws| ws.join(" "))
    }

    proptest! {
        /// The tentpole pin: for any corpus and any shard count 1–8, the
        /// sharded backend returns byte-identical Look Up hits, statistics,
        /// and Table-I views to the single instance — including after a
        /// per-shard persist/load round trip.
        #[test]
        fn sharded_equals_single_reference(
            tokens in proptest::collection::vec("[a-e1@O]{2,9}", 1..25),
            queries in proptest::collection::vec("[a-e1@O]{2,9}", 1..5),
            shards in 1usize..=8,
            k in 0usize..=2,
            d in 0usize..=4,
            exclude_identity in proptest::arbitrary::any::<bool>(),
            observed_only in proptest::arbitrary::any::<bool>(),
        ) {
            let mut flat = TokenDatabase::in_memory();
            let mut wide = ShardedTokenDatabase::in_memory(shards);
            for t in &tokens {
                flat.ingest_token(t);
                TokenStore::ingest_token(&mut wide, t);
            }
            let mut params = LookupParams::new(k, d);
            params.exclude_identity = exclude_identity;
            params.observed_only = observed_only;

            prop_assert_eq!(TokenStore::stats(&wide), flat.stats());
            for level in 0..NUM_LEVELS {
                prop_assert_eq!(
                    ShardedTokenDatabase::hashmap_view(&wide, level).unwrap(),
                    flat.hashmap_view(level).unwrap()
                );
            }
            for q in &queries {
                prop_assert_eq!(
                    look_up(&wide, q, params).unwrap(),
                    look_up(&flat, q, params).unwrap(),
                    "query {:?} params {:?}", q, params
                );
                prop_assert_eq!(TokenStore::get(&wide, q), flat.get(q));
            }

            // Persist/load round trip at this shard count.
            let store = Database::in_memory();
            TokenStore::persist_to(&wide, &store, "tokens").unwrap();
            let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
            prop_assert_eq!(restored.num_shards(), shards);
            prop_assert_eq!(TokenStore::stats(&restored), flat.stats());
            for q in &queries {
                prop_assert_eq!(
                    look_up(&restored, q, params).unwrap(),
                    look_up(&flat, q, params).unwrap(),
                    "after round trip: query {:?}", q
                );
            }
        }

        /// Normalization over the sharded backend is byte-identical to the
        /// single instance: same corrected text, same spans, same scores,
        /// same full candidate ordering.
        #[test]
        fn sharded_normalize_equals_single(
            corpus in proptest::collection::vec(text_strategy(), 1..6),
            texts in proptest::collection::vec(text_strategy(), 1..4),
            shards in 2usize..=8,
        ) {
            let mut flat = TokenDatabase::with_lexicon();
            for t in &corpus {
                flat.ingest_text(t);
            }
            let wide = ShardedTokenDatabase::from_database(&flat, shards);
            let lm = cryptext_lm::NgramLm::train(corpus.iter().map(|s| s.as_str()));
            let n = crate::normalize::Normalizer::new(&lm);
            let params = crate::normalize::NormalizeParams::default();
            for text in &texts {
                prop_assert_eq!(
                    n.normalize(&wide, text, params).unwrap(),
                    n.normalize(&flat, text, params).unwrap(),
                    "text {:?} shards {}", text, shards
                );
            }
        }

        /// The fan-out pin: for any corpus, shard count, query, and level,
        /// the Bloom-routed parallel collect-then-merge path produces the
        /// exact sequence of the sequential shard walk — including after a
        /// persist/load round trip, and including the prefix an
        /// early-exiting sink observes.
        #[test]
        fn fan_out_equals_sequential_walk(
            tokens in proptest::collection::vec("[a-e1@O]{2,9}", 1..25),
            query_str in "[a-e1@O]{2,9}",
            shards in 1usize..=8,
            k in 0usize..=2,
            cut in 0usize..=6,
        ) {
            let mut wide = ShardedTokenDatabase::in_memory(shards);
            for t in &tokens {
                TokenStore::ingest_token(&mut wide, t);
            }
            let query = EncodedQuery::for_token(&query_str, k).unwrap();

            let reference = {
                let mut scratch = SoundScratch::new();
                let mut out: Vec<(u32, String)> = Vec::new();
                let _ = TokenStore::for_each_sound_mate(&wide, &query, &mut scratch, |id, rec| {
                    out.push((id, rec.token.clone()));
                    ControlFlow::Continue(())
                });
                out
            };

            for store in [&wide, &ShardedTokenDatabase::load_from(&{
                let s = Database::in_memory();
                TokenStore::persist_to(&wide, &s, "tokens").unwrap();
                s
            }, "tokens").unwrap()] {
                // Full parallel path, forced past the dispatch shortcut.
                let matching = store.matching_shards(&query);
                let mut collected: Vec<(u32, String)> = Vec::new();
                let _ = store.fan_out_collected(
                    &query,
                    &matching,
                    &|id, rec: &TokenRecord| Some((id, rec.token.clone())),
                    |r| { collected.push(r); ControlFlow::Continue(()) },
                );
                prop_assert_eq!(&collected, &reference, "parallel == sequential");

                // Early exit after `cut` results sees exactly the prefix.
                let mut prefix: Vec<(u32, String)> = Vec::new();
                let _ = store.fan_out_collected(
                    &query,
                    &matching,
                    &|id, rec: &TokenRecord| Some((id, rec.token.clone())),
                    |r| {
                        prefix.push(r);
                        if prefix.len() > cut { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
                    },
                );
                let want = &reference[..reference.len().min(cut + 1)];
                prop_assert_eq!(&prefix[..], want, "early-exit prefix");
            }
        }

        /// `for_each_hit_until` with a breaking visitor observes exactly
        /// the prefix of the non-breaking visit sequence, on both backends.
        #[test]
        fn early_exit_hits_are_a_prefix(
            tokens in proptest::collection::vec("[a-e1@O]{2,9}", 1..20),
            query in "[a-e1@O]{2,9}",
            shards in 1usize..=8,
            d in 0usize..=3,
            cut in 0usize..=5,
        ) {
            let mut flat = TokenDatabase::in_memory();
            let mut wide = ShardedTokenDatabase::in_memory(shards);
            for t in &tokens {
                flat.ingest_token(t);
                TokenStore::ingest_token(&mut wide, t);
            }
            let params = LookupParams::new(1, d);
            let mut scratch = crate::lookup::LookupScratch::new();
            for backend in [true, false] {
                let full: Vec<(u32, usize)> = {
                    let mut out = Vec::new();
                    if backend {
                        crate::lookup::for_each_hit(&wide, &query, params, &mut scratch,
                            |id, _, dist| out.push((id, dist))).unwrap();
                    } else {
                        crate::lookup::for_each_hit(&flat, &query, params, &mut scratch,
                            |id, _, dist| out.push((id, dist))).unwrap();
                    }
                    out
                };
                let mut seen: Vec<(u32, usize)> = Vec::new();
                let visit = |seen: &mut Vec<(u32, usize)>, id: u32, dist: usize| {
                    seen.push((id, dist));
                    if seen.len() > cut { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
                };
                if backend {
                    crate::lookup::for_each_hit_until(&wide, &query, params, &mut scratch,
                        |id, _, dist| visit(&mut seen, id, dist)).unwrap();
                } else {
                    crate::lookup::for_each_hit_until(&flat, &query, params, &mut scratch,
                        |id, _, dist| visit(&mut seen, id, dist)).unwrap();
                }
                let want = &full[..full.len().min(cut + 1)];
                prop_assert_eq!(&seen[..], want, "backend sharded={}", backend);
            }
        }

        /// The resharding pin: growing N→N+1 moves only the jump-hash
        /// movers (retained shards stay byte-identical) and every query
        /// surface matches a fresh (N+1)-shard build of the same corpus —
        /// including after a persist/load round trip of the grown store.
        #[test]
        fn grow_one_shard_equals_fresh_build(
            tokens in proptest::collection::vec("[a-e1@O]{2,9}", 1..25),
            queries in proptest::collection::vec("[a-e1@O]{2,9}", 1..5),
            shards in 1usize..=8,
            k in 0usize..=2,
            d in 0usize..=4,
        ) {
            let mut grown = ShardedTokenDatabase::in_memory(shards);
            let mut fresh = ShardedTokenDatabase::in_memory(shards + 1);
            for t in &tokens {
                TokenStore::ingest_token(&mut grown, t);
                TokenStore::ingest_token(&mut fresh, t);
            }
            let moved = grown.grow_one_shard();
            prop_assert_eq!(grown.num_shards(), shards + 1);
            prop_assert_eq!(moved, fresh.shard(shards).records().len());
            for i in 0..shards {
                prop_assert_eq!(
                    grown.shard(i).records(),
                    fresh.shard(i).records(),
                    "retained shard {}", i
                );
            }
            prop_assert_eq!(TokenStore::stats(&grown), TokenStore::stats(&fresh));
            for level in 0..NUM_LEVELS {
                prop_assert_eq!(
                    ShardedTokenDatabase::hashmap_view(&grown, level).unwrap(),
                    ShardedTokenDatabase::hashmap_view(&fresh, level).unwrap()
                );
            }
            let params = LookupParams::new(k, d);
            for q in &queries {
                prop_assert_eq!(
                    look_up(&grown, q, params).unwrap(),
                    look_up(&fresh, q, params).unwrap(),
                    "query {:?}", q
                );
                prop_assert_eq!(TokenStore::get(&grown, q), TokenStore::get(&fresh, q));
            }

            // Persist/load round trip of the grown store.
            let store = Database::in_memory();
            TokenStore::persist_to(&grown, &store, "tokens").unwrap();
            let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
            prop_assert_eq!(restored.num_shards(), shards + 1);
            for q in &queries {
                prop_assert_eq!(
                    look_up(&restored, q, params).unwrap(),
                    look_up(&fresh, q, params).unwrap(),
                    "after round trip: query {:?}", q
                );
            }
        }

        /// Parallel sharded batch ingest is byte-identical (per shard) to
        /// sequential sharded ingest of the same texts in order.
        #[test]
        fn sharded_batch_ingest_equals_sequential(
            texts in proptest::collection::vec(text_strategy(), 1..10),
            shards in 1usize..=6,
        ) {
            let mut seq = ShardedTokenDatabase::in_memory(shards);
            let mut expect_n = 0;
            for t in &texts {
                expect_n += TokenStore::ingest_text(&mut seq, t);
            }
            let mut par = ShardedTokenDatabase::in_memory(shards);
            let n = TokenStore::ingest_texts(&mut par, &texts);
            prop_assert_eq!(n, expect_n);
            for i in 0..shards {
                prop_assert_eq!(par.shard(i).records(), seq.shard(i).records(), "shard {}", i);
            }
            prop_assert_eq!(par.clean_sentences(), seq.clean_sentences());
        }
    }

    /// `i` → a token with a distinct customized-Soundex code at *every*
    /// level: base-5 digits pick one consonant per Soundex class, never
    /// repeating the previous class, so no adjacent digits collapse and
    /// the class sequence (hence the code) is injective in `i`.
    pub(super) fn distinct_sound_token(mut i: usize) -> String {
        // One representative per Soundex class 1-6.
        const CLASS: [char; 6] = ['b', 'k', 'd', 'l', 'm', 'r'];
        let mut out = String::from("y");
        let mut prev = usize::MAX;
        loop {
            let d = i % 5;
            i /= 5;
            let class = (0..CLASS.len())
                .filter(|&c| c != prev)
                .nth(d)
                .expect("five choices remain");
            out.push(CLASS[class]);
            prev = class;
            if i == 0 {
                break;
            }
        }
        out
    }

    proptest! {
        /// Bloom growth never costs correctness: after every shard's
        /// level-0 interner is pushed past the growth threshold (so each
        /// summary was rebuilt from the exact interner at least once),
        /// routing still has **no false negatives** — every stored probe
        /// token is found through the routed walk, and every shard the
        /// router skips truly holds no hits.
        #[test]
        fn grown_summaries_never_produce_false_negatives(
            probes in proptest::collection::vec("[a-e1@O]{2,9}", 1..24),
            shards in 2usize..=4,
        ) {
            let mut wide = ShardedTokenDatabase::in_memory(shards);
            for i in 0..shards * 900 {
                TokenStore::ingest_token(&mut wide, &distinct_sound_token(i));
            }
            for p in &probes {
                TokenStore::ingest_token(&mut wide, p);
            }
            for s in 0..shards {
                prop_assert!(
                    wide.shard(s).summary_bits(0) > 4_096,
                    "shard {} level-0 summary must have been rebuilt wider", s
                );
            }

            let mut scratch = SoundScratch::new();
            for p in &probes {
                for k in 0..NUM_LEVELS {
                    let query = EncodedQuery::for_token(p, k).unwrap();
                    let matching = wide.matching_shards(&query);

                    // The stored probe itself must surface via routing…
                    let mut found_self = false;
                    let _ = TokenStore::for_each_sound_mate(
                        &wide, &query, &mut scratch, |_, rec| {
                            found_self |= rec.token == *p;
                            ControlFlow::Continue(())
                        });
                    prop_assert!(found_self, "probe {:?} lost at level {}", p, k);

                    // …and skipped shards must be exactly empty for it.
                    for s in 0..shards as u32 {
                        if matching.contains(&s) {
                            continue;
                        }
                        let mut hits = 0usize;
                        let _ = wide.shard(s as usize).for_each_sound_mate(
                            &query, &mut scratch, |_, _| {
                                hits += 1;
                                ControlFlow::Continue(())
                            });
                        prop_assert_eq!(
                            hits, 0,
                            "skipped shard {} had a hit for {:?} at level {}", s, p, k
                        );
                    }
                }
            }
        }
    }
}
