//! Look Up (§III-B): retrieving the perturbation set `P_x`.
//!
//! The SMS property: a perturbation of `x` is a stored token with the same
//! **S**ound (shared `H_k` bucket at phonetic level `k`), the same
//! **M**eaning (approximated by case-folded Levenshtein distance ≤ `d`),
//! and (optionally) different **S**pelling. Defaults are the paper's
//! `k = 1, d = 3`.

use std::cell::RefCell;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cryptext_common::Result;
use cryptext_editdist::{levenshtein_bounded_chars, levenshtein_bounded_scratch, EditScratch};

use crate::database::{EncodedQuery, SoundScratch, TokenDatabase, TokenRecord};
use crate::metrics::StageMetrics;
use crate::store::TokenStore;

/// Parameters of a Look Up query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LookupParams {
    /// Phonetic level (`k ≤ 2`).
    pub k: usize,
    /// Levenshtein bound `d` (case-folded).
    pub d: usize,
    /// Drop hits whose case-folded spelling equals the query's (keep only
    /// true perturbations). Off by default: the paper's `P_x` includes the
    /// query token itself.
    pub exclude_identity: bool,
    /// Keep only hits actually observed in a corpus (count > 0), dropping
    /// lexicon-seeded entries. Off by default.
    pub observed_only: bool,
}

impl LookupParams {
    /// Custom `k` and `d`.
    pub fn new(k: usize, d: usize) -> Self {
        LookupParams {
            k,
            d,
            exclude_identity: false,
            observed_only: false,
        }
    }

    /// The paper's GUI defaults: `k = 1, d = 3`.
    pub fn paper_default() -> Self {
        LookupParams::new(1, 3)
    }

    /// Builder: drop identity spellings.
    pub fn perturbations_only(mut self) -> Self {
        self.exclude_identity = true;
        self
    }

    /// Builder: only corpus-observed tokens.
    pub fn observed(mut self) -> Self {
        self.observed_only = true;
        self
    }
}

impl Default for LookupParams {
    fn default() -> Self {
        LookupParams::paper_default()
    }
}

/// One member of `P_x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupHit {
    /// The stored case-sensitive token.
    pub token: String,
    /// Corpus frequency.
    pub count: u64,
    /// Case-folded Levenshtein distance to the query.
    pub distance: usize,
    /// Is the hit a dictionary word?
    pub is_english: bool,
}

/// Reusable working memory for [`look_up_with`] / [`for_each_hit`]: the
/// generation-marked bucket-walk state, the bounded-Levenshtein scratch
/// (DP rows + Myers bitmaps), and the [`EncodedQuery`] buffers (code set,
/// code hashes, case fold). One instance per thread (or per bulk request)
/// makes the whole retrieval path allocation-free per candidate — and, for
/// ASCII queries, per query.
#[derive(Debug, Default)]
pub struct LookupScratch {
    sound: SoundScratch,
    edit: EditScratch,
    query: EncodedQuery,
    /// Optional per-stage instrument bundle. `None` (the default) keeps
    /// every instrumentation site in the retrieval path on its no-op
    /// branch; attaching shares the service's live cells.
    pub(crate) stages: Option<Arc<StageMetrics>>,
}

impl LookupScratch {
    /// Fresh scratch space (allocates lazily on first use).
    pub fn new() -> Self {
        LookupScratch::default()
    }

    /// Attach (or, with `None`, detach) a stage-metrics bundle. While
    /// attached, every retrieval through this scratch records encode/walk
    /// timings and filter/hit volumes into the bundle's shared cells.
    pub fn attach_stages(&mut self, stages: Option<Arc<StageMetrics>>) {
        self.stages = stages;
    }

    /// The currently attached stage-metrics bundle, if any.
    pub fn stages(&self) -> Option<&Arc<StageMetrics>> {
        self.stages.as_ref()
    }
}

thread_local! {
    static SHARED_LOOKUP_SCRATCH: RefCell<LookupScratch> = RefCell::new(LookupScratch::new());
    /// Edit-distance scratch for the *parallel* hit filter: the distance
    /// runs inside [`crate::store::TokenStore::fan_out_sound_mates`]'s
    /// `map` on pool workers (and on the participating caller), so it
    /// cannot borrow the caller's [`LookupScratch`]. Distinct from
    /// `SHARED_LOOKUP_SCRATCH` so a caller mid-borrow of that scratch can
    /// still participate as a fan-out worker.
    static FAN_OUT_EDIT_SCRATCH: RefCell<EditScratch> = RefCell::new(EditScratch::new());
}

/// Execute a Look Up against any [`TokenStore`] backend. Hits are ordered
/// by `(distance asc, count desc, token asc)` — closest and most frequent
/// perturbations first, deterministic throughout (and therefore identical
/// across backends, whatever order their buckets are walked in).
///
/// Uses a thread-local [`LookupScratch`]; callers managing their own
/// scratch (bulk endpoints, benches) should call [`look_up_with`].
pub fn look_up<S: TokenStore>(db: &S, token: &str, params: LookupParams) -> Result<Vec<LookupHit>> {
    SHARED_LOOKUP_SCRATCH.with(|scratch| look_up_with(db, token, params, &mut scratch.borrow_mut()))
}

/// The SMS hit filter shared by every retrieval path: `None` when the
/// candidate cannot be a hit, `Some(distance)` otherwise. Pure apart from
/// the reusable edit scratch, so the sharded fan-out may run it on pool
/// workers.
#[inline]
fn hit_distance(
    rec: &TokenRecord,
    query_folded: &str,
    query_chars: usize,
    params: LookupParams,
    edit: &mut EditScratch,
) -> Option<usize> {
    if params.observed_only && rec.count == 0 {
        return None;
    }
    // Cheap pre-filter: the length gap lower-bounds the distance.
    if query_chars.abs_diff(rec.folded_chars as usize) > params.d {
        return None;
    }
    if params.exclude_identity && rec.folded == query_folded {
        return None;
    }
    levenshtein_bounded_scratch(query_folded, &rec.folded, params.d, edit)
}

/// Visit every Look Up hit for `token` without materializing owned hit
/// structs — the zero-copy sibling of [`look_up_with`] and the engine under
/// Normalization candidate scoring.
///
/// `f` receives each matching record's id, the borrowed
/// [`crate::database::TokenRecord`], and its case-folded Levenshtein
/// distance to the query. Records arrive in **bucket insertion order**
/// (the order [`TokenDatabase::for_each_sound_mate`] walks postings, shard
/// by shard for sharded backends), not hit-sorted order; callers that need
/// the public `(distance, count, token)` ordering should use
/// [`look_up_with`], which sorts.
///
/// The query is encoded (Soundex code set, code hashes, case fold) exactly
/// once into the scratch's [`EncodedQuery`], regardless of how many shards
/// back `db`. The hot loop is allocation-free per candidate *and* per
/// ASCII query: each candidate's precomputed fold/length comes straight
/// off its record, a length-difference pre-filter skips hopeless
/// candidates before any distance work, and the bounded Levenshtein runs
/// bit-parallel (Myers) through reusable scratch. Sharded backends skip
/// shards via their Bloom summaries and may fan the per-shard filter work
/// out across the worker pool — results are byte-identical either way.
pub fn for_each_hit<'a, S, F>(
    db: &'a S,
    token: &str,
    params: LookupParams,
    scratch: &mut LookupScratch,
    mut f: F,
) -> Result<()>
where
    S: TokenStore,
    F: FnMut(u32, &'a TokenRecord, usize),
{
    for_each_hit_until(db, token, params, scratch, |id, rec, distance| {
        f(id, rec, distance);
        ControlFlow::Continue(())
    })
}

/// [`for_each_hit`] with an early-exit visitor: returning
/// [`ControlFlow::Break`] stops the retrieval. The visited prefix is
/// identical to what the non-breaking visitor would have seen — pinned
/// across backends and across the sequential/parallel fan-out paths by the
/// proptests in `shard.rs`.
pub fn for_each_hit_until<'a, S, F>(
    db: &'a S,
    token: &str,
    params: LookupParams,
    scratch: &mut LookupScratch,
    mut f: F,
) -> Result<()>
where
    S: TokenStore,
    F: FnMut(u32, &'a TokenRecord, usize) -> ControlFlow<()>,
{
    let LookupScratch {
        sound,
        edit,
        query,
        stages,
    } = scratch;
    let stages = stages.as_deref();
    {
        // Scope the encode timer to the encode alone; the guard records
        // on drop, before `?` can propagate an encode error.
        let _t = stages.map(|s| s.lookup_encode_us.start_timer());
        query.encode(token, params.k)?;
    }
    let query_folded: &str = query.folded();
    let query_chars = query.folded_chars();

    // Volume tallies accumulate locally and flush as one atomic add per
    // walk — never per candidate (the fan-out map runs on pool workers,
    // where a shared hot cell would bounce between cores).
    let track = stages.is_some();
    let examined = AtomicU64::new(0);
    let mut hits: u64 = 0;
    let _walk = stages.map(|s| s.lookup_walk_us.start_timer());

    if db.num_shards() <= 1 {
        // Single walk: filter inline with the caller's edit scratch.
        let mut seen: u64 = 0;
        let _ = db.for_each_sound_mate(query, sound, |id, rec| {
            seen += 1;
            match hit_distance(rec, query_folded, query_chars, params, edit) {
                Some(distance) => {
                    hits += 1;
                    f(id, rec, distance)
                }
                None => ControlFlow::Continue(()),
            }
        });
        examined.store(seen, Ordering::Relaxed);
    } else {
        // Sharded: one encoding feeds every shard; the store may run the
        // filter map per shard on pool workers (thread-local edit
        // scratch), with Bloom routing skipping shards that cannot match.
        let _ = db.fan_out_sound_mates(
            query,
            sound,
            |id, rec| {
                if track {
                    examined.fetch_add(1, Ordering::Relaxed);
                }
                FAN_OUT_EDIT_SCRATCH.with(|edit| {
                    hit_distance(
                        rec,
                        query_folded,
                        query_chars,
                        params,
                        &mut edit.borrow_mut(),
                    )
                    .map(|distance| (id, rec, distance))
                })
            },
            |(id, rec, distance)| {
                hits += 1;
                f(id, rec, distance)
            },
        );
    }
    if let Some(s) = stages {
        s.lookup_filter_candidates
            .add(examined.load(Ordering::Relaxed));
        s.lookup_hits.add(hits);
    }
    Ok(())
}

/// [`look_up`] with caller-provided scratch buffers: drives
/// [`for_each_hit`] and materializes the sorted public hit list.
pub fn look_up_with<S: TokenStore>(
    db: &S,
    token: &str,
    params: LookupParams,
    scratch: &mut LookupScratch,
) -> Result<Vec<LookupHit>> {
    let mut hits: Vec<LookupHit> = Vec::with_capacity(16);
    for_each_hit(db, token, params, scratch, |_, rec, distance| {
        hits.push(LookupHit {
            token: rec.token.clone(),
            count: rec.count,
            distance,
            is_english: rec.is_english,
        });
    })?;
    // Hit keys are unique (one record per token string), so an unstable
    // sort yields the same order as the reference's stable sort.
    hits.sort_unstable_by(hit_order);
    Ok(hits)
}

/// [`look_up_with`] with a cooperative cancellation probe, for callers
/// whose request carries a deadline (the service gateway): `cancel` is
/// consulted before each candidate hit is accepted, and the first
/// `Some(err)` it returns aborts the walk mid-bucket — through
/// [`for_each_hit_until`]'s early-exit plumbing, so a cancelled query
/// stops paying for shard walks it no longer wants — and surfaces `err`
/// to the caller. A query that is never cancelled returns exactly what
/// [`look_up_with`] would.
pub fn look_up_cancellable<S: TokenStore>(
    db: &S,
    token: &str,
    params: LookupParams,
    scratch: &mut LookupScratch,
    cancel: &mut dyn FnMut() -> Option<cryptext_common::Error>,
) -> Result<Vec<LookupHit>> {
    let mut hits: Vec<LookupHit> = Vec::with_capacity(16);
    let mut aborted: Option<cryptext_common::Error> = None;
    for_each_hit_until(db, token, params, scratch, |_, rec, distance| {
        if let Some(err) = cancel() {
            aborted = Some(err);
            return ControlFlow::Break(());
        }
        hits.push(LookupHit {
            token: rec.token.clone(),
            count: rec.count,
            distance,
            is_english: rec.is_english,
        });
        ControlFlow::Continue(())
    })?;
    if let Some(err) = aborted {
        return Err(err);
    }
    hits.sort_unstable_by(hit_order);
    Ok(hits)
}

/// The pre-optimization Look Up, kept as the differential-testing and
/// benchmarking reference. It reproduces the seed engine faithfully:
/// candidates come from a `Vec<&TokenRecord>` deduplicated with an O(n²)
/// `Vec::contains` scan over string-probed buckets, and per candidate it
/// lowercases, collects `Vec<char>`, and runs the allocating bounded DP.
/// Must return byte-identical hits in identical order to [`look_up`].
pub fn look_up_naive(
    db: &TokenDatabase,
    token: &str,
    params: LookupParams,
) -> Result<Vec<LookupHit>> {
    TokenDatabase::check_level(params.k)?;
    let query_folded: Vec<char> = token.to_lowercase().chars().collect();

    let mut hits: Vec<LookupHit> = Vec::new();
    for rec in sound_mates_naive(db, params.k, token)? {
        if params.observed_only && rec.count == 0 {
            continue;
        }
        let cand_folded: Vec<char> = rec.token.to_lowercase().chars().collect();
        if params.exclude_identity && cand_folded == query_folded {
            continue;
        }
        if let Some(distance) = levenshtein_bounded_chars(&query_folded, &cand_folded, params.d) {
            hits.push(LookupHit {
                token: rec.token.clone(),
                count: rec.count,
                distance,
                is_english: rec.is_english,
            });
        }
    }
    sort_hits(&mut hits);
    Ok(hits)
}

/// The seed's candidate gathering: linear-scan dedup (`seen.contains`)
/// over per-code bucket probes — O(candidates²) — kept verbatim so the
/// naive baseline measures what the engine replaced.
fn sound_mates_naive<'a>(
    db: &'a TokenDatabase,
    k: usize,
    token: &str,
) -> Result<Vec<&'a TokenRecord>> {
    let mut seen: Vec<u32> = Vec::new();
    for code in db.soundex(k)?.encode_all(token) {
        for &id in db.bucket(k, code.as_str())? {
            if !seen.contains(&id) {
                seen.push(id);
            }
        }
    }
    let records = db.records();
    Ok(seen.into_iter().map(|id| &records[id as usize]).collect())
}

fn hit_order(a: &LookupHit, b: &LookupHit) -> std::cmp::Ordering {
    a.distance
        .cmp(&b.distance)
        .then_with(|| b.count.cmp(&a.count))
        .then_with(|| a.token.cmp(&b.token))
}

fn sort_hits(hits: &mut [LookupHit]) {
    hits.sort_by(hit_order);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TokenDatabase {
        let mut db = TokenDatabase::in_memory();
        for s in [
            "the dirrty republicans",
            "thee dirty repubLIEcans",
            "the dirty republic@@ns",
            "the demokRATs and the democrats",
            "thinking about suic1de",
            "suicide prevention matters",
        ] {
            db.ingest_text(s);
        }
        db
    }

    #[test]
    fn paper_example_k1_d1() {
        let hits = look_up(&db(), "republicans", LookupParams::new(1, 1)).unwrap();
        let tokens: Vec<&str> = hits.iter().map(|h| h.token.as_str()).collect();
        assert_eq!(tokens, vec!["republicans", "repubLIEcans"]);
    }

    #[test]
    fn widening_d_admits_more() {
        let hits = look_up(&db(), "republicans", LookupParams::new(1, 2)).unwrap();
        let tokens: Vec<&str> = hits.iter().map(|h| h.token.as_str()).collect();
        assert!(tokens.contains(&"republic@@ns"));
        assert_eq!(tokens.len(), 3);
    }

    #[test]
    fn identity_exclusion() {
        let hits = look_up(
            &db(),
            "republicans",
            LookupParams::new(1, 2).perturbations_only(),
        )
        .unwrap();
        assert!(hits
            .iter()
            .all(|h| !h.token.eq_ignore_ascii_case("republicans")));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn ambiguous_leet_reachable_both_directions() {
        let d = db();
        // Clean → perturbed.
        let hits = look_up(&d, "suicide", LookupParams::paper_default()).unwrap();
        assert!(hits.iter().any(|h| h.token == "suic1de"));
        // Perturbed → clean.
        let hits = look_up(&d, "suic1de", LookupParams::paper_default()).unwrap();
        assert!(hits.iter().any(|h| h.token == "suicide"));
    }

    #[test]
    fn ordering_distance_then_count() {
        let mut d = TokenDatabase::in_memory();
        // Three same-sound variants at different distances/counts.
        d.ingest_text("dirty dirty dirty dirrty dirrty dirrrty");
        let hits = look_up(&d, "dirty", LookupParams::paper_default()).unwrap();
        let tokens: Vec<&str> = hits.iter().map(|h| h.token.as_str()).collect();
        assert_eq!(tokens, vec!["dirty", "dirrty", "dirrrty"]);
        assert_eq!(hits[0].distance, 0);
        assert!(hits[1].count >= hits[2].count);
    }

    #[test]
    fn case_emphasis_is_distance_zero() {
        let hits = look_up(&db(), "democrats", LookupParams::new(1, 0)).unwrap();
        let tokens: Vec<&str> = hits.iter().map(|h| h.token.as_str()).collect();
        assert!(!tokens.contains(&"demokRATs"));
        assert!(tokens.contains(&"democrats"));
        // demokRATs is distance 1 (k→c after folding).
        let hits = look_up(&db(), "democrats", LookupParams::new(1, 1)).unwrap();
        assert!(hits.iter().any(|h| h.token == "demokRATs"));
    }

    #[test]
    fn unknown_token_returns_empty_not_error() {
        let hits = look_up(&db(), "zzzzzz", LookupParams::paper_default()).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn invalid_level_is_error() {
        assert!(look_up(&db(), "the", LookupParams::new(5, 1)).is_err());
    }

    #[test]
    fn observed_only_drops_lexicon_seeds() {
        let mut d = TokenDatabase::with_lexicon();
        d.ingest_text("the demokRATs rallied");
        let all = look_up(&d, "democrats", LookupParams::paper_default()).unwrap();
        assert!(all.iter().any(|h| h.count == 0), "lexicon seed present");
        let observed = look_up(&d, "democrats", LookupParams::paper_default().observed()).unwrap();
        assert!(observed.iter().all(|h| h.count > 0));
        assert!(observed.iter().any(|h| h.token == "demokRATs"));
    }

    #[test]
    fn optimized_matches_naive_on_fixture_db() {
        let d = db();
        let mut scratch = LookupScratch::new();
        for q in [
            "republicans",
            "democrats",
            "suic1de",
            "the",
            "zzzzzz",
            "vãccine",
        ] {
            for k in 0..3 {
                for dist in 0..4 {
                    for params in [
                        LookupParams::new(k, dist),
                        LookupParams::new(k, dist).perturbations_only(),
                        LookupParams::new(k, dist).observed(),
                    ] {
                        let fast = look_up_with(&d, q, params, &mut scratch).unwrap();
                        let slow = look_up_naive(&d, q, params).unwrap();
                        assert_eq!(fast, slow, "query {q:?} params {params:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn visitor_yields_exactly_the_lookup_hits() {
        let d = db();
        let mut scratch = LookupScratch::new();
        for q in ["republicans", "suic1de", "the", "zzzzzz", "vãccine"] {
            for params in [
                LookupParams::paper_default(),
                LookupParams::new(1, 2).perturbations_only(),
                LookupParams::new(0, 3).observed(),
            ] {
                let mut visited: Vec<LookupHit> = Vec::new();
                for_each_hit(&d, q, params, &mut scratch, |id, rec, distance| {
                    assert_eq!(d.records()[id as usize], *rec, "id ↔ record agree");
                    visited.push(LookupHit {
                        token: rec.token.clone(),
                        count: rec.count,
                        distance,
                        is_english: rec.is_english,
                    });
                })
                .unwrap();
                visited.sort_unstable_by(hit_order);
                let reference = look_up_with(&d, q, params, &mut scratch).unwrap();
                assert_eq!(visited, reference, "query {q:?} params {params:?}");
            }
        }
    }

    #[test]
    fn visitor_rejects_invalid_level() {
        let d = db();
        let mut scratch = LookupScratch::new();
        assert!(for_each_hit(
            &d,
            "the",
            LookupParams::new(9, 1),
            &mut scratch,
            |_, _, _| {}
        )
        .is_err());
    }

    #[test]
    fn cancellable_lookup_matches_plain_when_never_cancelled() {
        let d = db();
        let mut scratch = LookupScratch::new();
        for q in ["republicans", "suic1de", "zzzzzz"] {
            let plain = look_up_with(&d, q, LookupParams::paper_default(), &mut scratch).unwrap();
            let cancellable = look_up_cancellable(
                &d,
                q,
                LookupParams::paper_default(),
                &mut scratch,
                &mut || None,
            )
            .unwrap();
            assert_eq!(plain, cancellable, "query {q:?}");
        }
    }

    #[test]
    fn cancellable_lookup_aborts_mid_walk_with_the_probe_error() {
        let d = db();
        let mut scratch = LookupScratch::new();
        // Sanity: the query has several hits, so a cancel after the first
        // candidate really does abort mid-walk.
        let all = look_up_with(&d, "republicans", LookupParams::new(1, 2), &mut scratch).unwrap();
        assert!(all.len() >= 2);
        let mut probes = 0u32;
        let err = look_up_cancellable(
            &d,
            "republicans",
            LookupParams::new(1, 2),
            &mut scratch,
            &mut || {
                probes += 1;
                (probes > 1).then_some(cryptext_common::Error::DeadlineExceeded { budget_ms: 7 })
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            cryptext_common::Error::DeadlineExceeded { budget_ms: 7 }
        ));
    }

    #[test]
    fn k_zero_is_coarser_than_k_one() {
        let mut d = TokenDatabase::in_memory();
        d.ingest_token("losbian");
        d.ingest_token("lesbian");
        // k=0: classic-style collision (both L…), so lookup finds both.
        let hits = look_up(&d, "lesbian", LookupParams::new(0, 2)).unwrap();
        assert_eq!(hits.len(), 2);
        // k=1: distinct prefixes LO/LE → only the exact word.
        let hits = look_up(&d, "lesbian", LookupParams::new(1, 2)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].token, "lesbian");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_db(tokens: &[String]) -> TokenDatabase {
        let mut db = TokenDatabase::in_memory();
        for t in tokens {
            db.ingest_token(t);
        }
        db
    }

    proptest! {
        /// Every hit satisfies the SMS contract: within distance d, and
        /// sharing at least one H_k code with the query.
        #[test]
        fn hits_respect_sms_contract(
            tokens in proptest::collection::vec("[a-e]{2,7}", 1..20),
            query in "[a-e]{2,7}",
            k in 0usize..=2,
            d in 0usize..=3,
        ) {
            let db = small_db(&tokens);
            let hits = look_up(&db, &query, LookupParams::new(k, d)).unwrap();
            let sx = db.soundex(k).unwrap();
            let query_codes = sx.encode_all(&query);
            for h in &hits {
                prop_assert!(h.distance <= d, "{} at distance {}", h.token, h.distance);
                prop_assert_eq!(
                    cryptext_editdist::levenshtein(&h.token.to_lowercase(), &query.to_lowercase()),
                    h.distance
                );
                let cand_codes = sx.encode_all(&h.token);
                prop_assert!(
                    cand_codes.iter().any(|c| query_codes.contains(c)),
                    "{} shares a sound with {}", h.token, query
                );
            }
            // Sorted by (distance, count desc, token).
            for w in hits.windows(2) {
                prop_assert!(w[0].distance <= w[1].distance);
            }
        }

        /// Widening d only adds hits (monotone retrieval).
        #[test]
        fn widening_d_is_monotone(
            tokens in proptest::collection::vec("[a-e]{2,7}", 1..20),
            query in "[a-e]{2,7}",
            d in 0usize..=2,
        ) {
            let db = small_db(&tokens);
            let narrow = look_up(&db, &query, LookupParams::new(1, d)).unwrap();
            let wide = look_up(&db, &query, LookupParams::new(1, d + 1)).unwrap();
            for h in &narrow {
                prop_assert!(
                    wide.iter().any(|w| w.token == h.token),
                    "{} lost when widening d", h.token
                );
            }
        }

        /// A stored token is always findable from itself (reflexivity), at
        /// any k and d.
        #[test]
        fn stored_tokens_find_themselves(
            token in "[a-e]{2,7}",
            k in 0usize..=2,
        ) {
            let db = small_db(std::slice::from_ref(&token));
            let hits = look_up(&db, &token, LookupParams::new(k, 0)).unwrap();
            prop_assert!(hits.iter().any(|h| h.token == token));
        }

        /// Differential pin: the read-optimized engine returns
        /// byte-identical hits in identical order to the kept naive
        /// reference, across random corpora (including leet/confusable
        /// glyphs that fan out to multiple codes), queries, levels and
        /// bounds, and all parameter flags.
        #[test]
        fn optimized_equals_naive_reference(
            tokens in proptest::collection::vec("[a-e1@O]{2,9}", 1..30),
            query in "[a-e1@O]{2,9}",
            k in 0usize..=2,
            d in 0usize..=4,
            exclude_identity in proptest::arbitrary::any::<bool>(),
            observed_only in proptest::arbitrary::any::<bool>(),
        ) {
            let db = small_db(&tokens);
            let mut params = LookupParams::new(k, d);
            params.exclude_identity = exclude_identity;
            params.observed_only = observed_only;

            let mut scratch = LookupScratch::new();
            let fast = look_up_with(&db, &query, params, &mut scratch).unwrap();
            let slow = look_up_naive(&db, &query, params).unwrap();
            prop_assert_eq!(&fast, &slow, "params {:?} query {:?}", params, query);

            // The thread-local convenience wrapper agrees too.
            let wrapped = look_up(&db, &query, params).unwrap();
            prop_assert_eq!(&wrapped, &slow);
        }
    }
}
