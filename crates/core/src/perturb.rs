//! Perturbation (§III-D): rewriting text with *database* perturbations.
//!
//! Unlike the machine baselines in `cryptext-attacks`, every replacement
//! here is drawn from the token database via Look Up — i.e. it was
//! actually written by a human somewhere in the corpus. That is the
//! paper's headline claim for this function: "perturbations utilized by
//! CrypText are guaranteed to be observable in human-written texts."

use cryptext_common::{Result, SplitMix64};
use cryptext_tokenizer::{splice, tokenize, Token};

use crate::database::TokenDatabase;
use crate::lookup::{look_up, LookupParams};
use crate::store::TokenStore;

/// Parameters of a Perturbation pass.
#[derive(Debug, Clone, Copy)]
pub struct PerturbParams {
    /// Manipulation ratio `r`: fraction of eligible tokens to rewrite
    /// (the paper's GUI offers 15%, 25%, 50%).
    pub ratio: f64,
    /// Phonetic level for Look Up.
    pub k: usize,
    /// Edit-distance bound for Look Up.
    pub d: usize,
    /// Case-sensitive mode: when false, a perturbation of any casing of
    /// the token is acceptable (§III-D offers both).
    pub case_sensitive: bool,
    /// Only replacements observed in a corpus (count > 0). On by default —
    /// this is the "guaranteed human-written" property.
    pub observed_only: bool,
    /// RNG seed; equal seeds give identical rewrites.
    pub seed: u64,
}

impl PerturbParams {
    /// Ratio `r` with paper-default `k = 1, d = 3`.
    pub fn with_ratio(ratio: f64) -> Self {
        PerturbParams {
            ratio,
            k: 1,
            d: 3,
            case_sensitive: false,
            observed_only: true,
            seed: 42,
        }
    }

    /// Builder: set the seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One applied replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedPerturbation {
    /// Original token.
    pub original: String,
    /// Database perturbation that replaced it.
    pub replacement: String,
    /// Byte span in the source text (Fig. 3 highlights these).
    pub span: std::ops::Range<usize>,
}

/// Result of a Perturbation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerturbationOutcome {
    /// The rewritten text.
    pub text: String,
    /// What was replaced, in span order.
    pub replacements: Vec<AppliedPerturbation>,
    /// Tokens sampled for manipulation that had no perturbation in the
    /// database (counted toward `r` but left unchanged).
    pub misses: usize,
}

/// The Perturbation engine, generic over the storage backend.
pub struct Perturber<'a, S: TokenStore = TokenDatabase> {
    db: &'a S,
}

impl<'a, S: TokenStore> Perturber<'a, S> {
    /// Build over a token store.
    pub fn new(db: &'a S) -> Self {
        Perturber { db }
    }

    /// The perturbation choices available for one token (excluding
    /// identity spellings).
    pub fn choices_for(&self, token: &str, params: PerturbParams) -> Result<Vec<String>> {
        let mut lookup_params = LookupParams::new(params.k, params.d).perturbations_only();
        if params.observed_only {
            lookup_params = lookup_params.observed();
        }
        let hits = look_up(self.db, token, lookup_params)?;
        Ok(hits
            .into_iter()
            .filter(|h| {
                // A *different* dictionary word is not a perturbation of
                // this token — it is a different word that merely sounds
                // alike ("the" vs "they"). Real perturbations are either
                // out-of-dictionary spellings or case-emphasis variants of
                // the same word (the latter only in case-insensitive mode,
                // per §III-D's case-sensitivity switch).
                if h.token.eq_ignore_ascii_case(token) {
                    !params.case_sensitive && h.token != token
                } else {
                    !h.is_english
                }
            })
            .map(|h| h.token)
            .collect())
    }

    /// Rewrite `text` at manipulation ratio `r` (§III-D, Fig. 3).
    pub fn perturb(&self, text: &str, params: PerturbParams) -> Result<PerturbationOutcome> {
        TokenDatabase::check_level(params.k)?;
        let mut rng = SplitMix64::new(params.seed);
        let tokens = tokenize(text);
        let eligible: Vec<&Token> = tokens
            .iter()
            .filter(|t| t.is_word() && t.text.chars().count() >= 3)
            .collect();
        if eligible.is_empty() {
            return Ok(PerturbationOutcome {
                text: text.to_string(),
                replacements: Vec::new(),
                misses: 0,
            });
        }
        let n_target = ((params.ratio.clamp(0.0, 1.0) * eligible.len() as f64).ceil() as usize)
            .min(eligible.len());
        let mut chosen = rng.sample_indices(eligible.len(), n_target);
        chosen.sort_unstable();

        let mut replacements: Vec<AppliedPerturbation> = Vec::new();
        let mut misses = 0usize;
        for idx in chosen {
            let tok = eligible[idx];
            let choices = self.choices_for(&tok.text, params)?;
            match rng.choose(&choices) {
                Some(replacement) => replacements.push(AppliedPerturbation {
                    original: tok.text.clone(),
                    replacement: replacement.clone(),
                    span: tok.span.clone(),
                }),
                None => misses += 1,
            }
        }
        let splices: Vec<(std::ops::Range<usize>, String)> = replacements
            .iter()
            .map(|r| (r.span.clone(), r.replacement.clone()))
            .collect();
        Ok(PerturbationOutcome {
            text: splice(text, &splices),
            replacements,
            misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TokenDatabase {
        let mut db = TokenDatabase::in_memory();
        for s in [
            "the demokRATs and democrats argue",
            "the dem0crats lie",
            "repubLIEcans and republicans fight",
            "republic@@ns everywhere",
            "the vacc1ne and the vaccine",
            "vac-cine skeptics",
        ] {
            db.ingest_text(s);
        }
        db
    }

    #[test]
    fn replacements_come_from_database() {
        let d = db();
        let p = Perturber::new(&d);
        let out = p
            .perturb(
                "Biden belongs to the democrats",
                PerturbParams::with_ratio(1.0),
            )
            .unwrap();
        for r in &out.replacements {
            assert!(
                d.get(&r.replacement).is_some(),
                "{} is a stored human-written token",
                r.replacement
            );
            assert!(d.get(&r.replacement).unwrap().count > 0, "observed");
            assert_ne!(r.replacement, r.original);
        }
        // "democrats" must have been rewritten to one of its stored variants.
        let demo = out
            .replacements
            .iter()
            .find(|r| r.original == "democrats")
            .expect("democrats perturbed");
        assert!(["demokRATs", "dem0crats"].contains(&demo.replacement.as_str()));
    }

    #[test]
    fn ratio_controls_attempt_count() {
        let d = db();
        let p = Perturber::new(&d);
        let text =
            "democrats republicans vaccine democrats republicans vaccine democrats republicans";
        for (ratio, expected) in [(0.25, 2), (0.5, 4), (1.0, 8)] {
            let out = p.perturb(text, PerturbParams::with_ratio(ratio)).unwrap();
            assert_eq!(
                out.replacements.len() + out.misses,
                expected,
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn zero_ratio_is_identity() {
        let d = db();
        let p = Perturber::new(&d);
        let text = "the democrats and republicans";
        let out = p.perturb(text, PerturbParams::with_ratio(0.0)).unwrap();
        assert_eq!(out.text, text);
        assert!(out.replacements.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = db();
        let p = Perturber::new(&d);
        let text = "democrats and republicans discuss the vaccine at length";
        let a = p
            .perturb(text, PerturbParams::with_ratio(0.5).seeded(7))
            .unwrap();
        let b = p
            .perturb(text, PerturbParams::with_ratio(0.5).seeded(7))
            .unwrap();
        assert_eq!(a, b);
        let c = p
            .perturb(text, PerturbParams::with_ratio(0.5).seeded(8))
            .unwrap();
        // Different seed → (almost surely) different outcome.
        assert!(a != c || a.replacements.is_empty());
    }

    #[test]
    fn tokens_without_perturbations_count_as_misses() {
        let d = db();
        let p = Perturber::new(&d);
        let out = p
            .perturb("zebra crossing ahead", PerturbParams::with_ratio(1.0))
            .unwrap();
        assert_eq!(out.replacements.len(), 0);
        assert_eq!(out.misses, 3);
        assert_eq!(out.text, "zebra crossing ahead");
    }

    #[test]
    fn spans_reference_original_text() {
        let d = db();
        let p = Perturber::new(&d);
        let text = "the democrats met the republicans";
        let out = p.perturb(text, PerturbParams::with_ratio(1.0)).unwrap();
        for r in &out.replacements {
            assert_eq!(&text[r.span.clone()], r.original);
        }
    }

    #[test]
    fn choices_exclude_identity_spellings() {
        let d = db();
        let p = Perturber::new(&d);
        let choices = p
            .choices_for("democrats", PerturbParams::with_ratio(1.0))
            .unwrap();
        assert!(!choices
            .iter()
            .any(|c| c.eq_ignore_ascii_case("democrats") && c == "democrats"));
        assert!(choices.contains(&"demokRATs".to_string()));
    }

    #[test]
    fn invalid_level_is_error() {
        let d = db();
        let p = Perturber::new(&d);
        let params = PerturbParams {
            k: 9,
            ..PerturbParams::with_ratio(0.5)
        };
        assert!(p.perturb("anything", params).is_err());
    }

    #[test]
    fn empty_text_ok() {
        let d = db();
        let p = Perturber::new(&d);
        let out = p.perturb("", PerturbParams::with_ratio(0.5)).unwrap();
        assert_eq!(out.text, "");
    }
}
