//! The storage abstraction behind every CrypText engine.
//!
//! [`TokenStore`] is the contract the engines ([`crate::lookup`],
//! [`crate::normalize`], [`crate::perturb`], [`crate::listening`],
//! [`crate::ingest`]) are generic over. Two backends implement it:
//!
//! * [`TokenDatabase`] — one in-memory instance (the original backend).
//! * [`crate::shard::ShardedTokenDatabase`] — N independent instances
//!   behind a consistent-hash router on the primary `H_1` Soundex code.
//!
//! Both backends are pinned to produce **byte-identical** Look Up,
//! Normalization, and statistics output (see the proptests in
//! `shard.rs`), so callers choose purely on capacity: a single instance
//! for corpora that fit one machine, shards for corpora that do not.
//!
//! [`AnyTokenStore`] erases the choice at runtime — the
//! `CRYPTEXT_SHARDS` environment variable selects the default backend,
//! which is how CI exercises the sharded path through the entire
//! integration-test suite without a second test tree.
//!
//! Retrieval is **encode-once**: the walk methods take a pre-built
//! [`EncodedQuery`] (Soundex code set + code hashes + case fold), so a
//! query's encoding cost is paid once no matter how many shards the
//! backend walks, and [`TokenStore::fan_out_sound_mates`] lets backends
//! parallelize the per-candidate filter work while preserving the
//! sequential walk's exact visit sequence ([`ControlFlow`] early exit
//! included).

use std::ops::ControlFlow;

use cryptext_common::metrics::MetricsRegistry;
use cryptext_common::Result;
use cryptext_docstore::Database;
use cryptext_phonetics::CustomSoundex;
use cryptext_tokenizer::tokenize_spans;

use crate::database::{EncodedQuery, SoundScratch, TokenDatabase, TokenRecord, TokenStats};
use crate::shard::ShardedTokenDatabase;

/// The storage contract of the token database (§III-A): phonetic-bucket
/// retrieval, ingest, statistics, and document-store persistence.
///
/// # Record ids
///
/// The `u32` ids handed to [`TokenStore::for_each_sound_mate`] callbacks
/// are backend-defined: dense indexes for [`TokenDatabase`], shard-remapped
/// (`local * n_shards + shard`) for the sharded backend. They are unique
/// per store and stable for the store's lifetime, and must not be
/// interpreted beyond that.
///
/// # Queries encode once
///
/// The walk methods take a pre-built [`EncodedQuery`] rather than a raw
/// token: the caller encodes a query's Soundex codes and case fold exactly
/// once, and a sharded backend's per-shard walks all share that encoding.
/// Construction of the query validates the phonetic level, which is why
/// the walks are infallible ([`ControlFlow`], not `Result`).
pub trait TokenStore: Sync {
    /// How many independent shards back this store (1 for a single
    /// instance).
    fn num_shards(&self) -> usize;

    /// Visit every record sharing a sound with the encoded `query` exactly
    /// once. The visitor may return [`ControlFlow::Break`] to stop early;
    /// the return value reports whether it did. See
    /// [`TokenDatabase::for_each_sound_mate`] for the scratch discipline;
    /// the visit order is backend-defined (shards walk in shard order),
    /// and every engine built on this is order-insensitive by
    /// construction.
    fn for_each_sound_mate<'a, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        f: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(u32, &'a TokenRecord) -> ControlFlow<()>;

    /// [`TokenStore::for_each_sound_mate`] split into a pure, `Sync`
    /// per-candidate `map` and a sequential `sink`, so backends may fan
    /// the expensive per-candidate work (the `map` — e.g. the bounded
    /// Levenshtein filter) out across shards in parallel.
    ///
    /// The contract is **byte-identical** to running
    /// `for_each_sound_mate` and feeding every `Some` result of `map` to
    /// `sink` inline, early exit included: `sink` receives results in the
    /// exact order the sequential walk would produce them, and a
    /// [`ControlFlow::Break`] from `sink` discards the rest. (`map` must
    /// be pure — a parallel backend may run it for candidates whose
    /// results a broken-out-of `sink` never sees.)
    ///
    /// The default implementation is the sequential inline form; the
    /// sharded backend overrides it with Bloom-routed parallel fan-out.
    fn fan_out_sound_mates<'a, M, R, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        map: M,
        mut sink: F,
    ) -> ControlFlow<()>
    where
        M: Fn(u32, &'a TokenRecord) -> Option<R> + Sync,
        R: Send,
        F: FnMut(R) -> ControlFlow<()>,
    {
        self.for_each_sound_mate(query, scratch, |id, rec| match map(id, rec) {
            Some(r) => sink(r),
            None => ControlFlow::Continue(()),
        })
    }

    /// Fetch a token's record (case-sensitive).
    fn get(&self, token: &str) -> Option<&TokenRecord>;

    /// Aggregate statistics. Backends must agree: the sharded store
    /// reports the same numbers as a single instance over the same corpus.
    fn stats(&self) -> TokenStats;

    /// Distinct stored tokens — the cheap subset of [`TokenStore::stats`]
    /// (O(shards), no sound-set unions) for callers like the crawler that
    /// only track growth.
    fn unique_tokens(&self) -> usize;

    /// Clean sentences accumulated for LM training.
    fn clean_sentences(&self) -> &[String];

    /// The phonetic encoder for level `k` (identical across backends).
    fn soundex(&self, k: usize) -> Result<&CustomSoundex>;

    /// Materialize the `H_k` map at level `k` as sorted `(code, tokens)`
    /// pairs — the exact shape of the paper's Table I.
    fn hashmap_view(&self, k: usize) -> Result<Vec<(String, Vec<String>)>>;

    /// Ingest one raw token occurrence (gates: ≥ 2 chars, phonetic
    /// content).
    fn ingest_token(&mut self, token: &str);

    /// Tokenize and ingest one text; returns the word-token count. The
    /// default implementation defines the canonical loop — word tokens
    /// through [`TokenStore::ingest_token`], fully-in-dictionary sentences
    /// recorded for LM training — so backends cannot drift from each
    /// other; [`TokenDatabase`] overrides it with its original (identical)
    /// inherent method.
    fn ingest_text(&mut self, text: &str) -> usize {
        let mut n = 0;
        let mut all_english = true;
        let mut any_word = false;
        for tok in tokenize_spans(text) {
            if tok.is_word() {
                let word = tok.text(text);
                any_word = true;
                self.ingest_token(word);
                if !cryptext_corpus::is_english_word(word) {
                    all_english = false;
                }
                n += 1;
            }
        }
        if any_word && all_english {
            self.record_clean_sentence(text);
        }
        n
    }

    /// Batch ingest with the expensive per-token work parallelized;
    /// byte-identical to calling [`TokenStore::ingest_text`] per text in
    /// order.
    fn ingest_texts<T: AsRef<str> + Sync>(&mut self, texts: &[T]) -> usize;

    /// Record a known-clean sentence for LM training.
    fn record_clean_sentence(&mut self, text: &str);

    /// Seed/refresh every dictionary word as an `is_english` record.
    fn seed_lexicon(&mut self);

    /// Persist the whole store into `store` under `collection`,
    /// replacing any previous persist of the same name.
    fn persist_to(&self, store: &Database, collection: &str) -> Result<()>;

    /// Rebuild a store from a previous [`TokenStore::persist_to`]. Clean
    /// sentences are not persisted.
    fn load_from(store: &Database, collection: &str) -> Result<Self>
    where
        Self: Sized;

    /// Register this backend's observability instruments (shard-walk and
    /// Bloom-skip counters, durable-log timings, …) with `registry`.
    /// Backends with nothing to report keep the no-op default; the
    /// service facade calls this once at construction.
    fn register_metrics(&self, registry: &MetricsRegistry) {
        let _ = registry;
    }
}

impl TokenStore for TokenDatabase {
    fn num_shards(&self) -> usize {
        1
    }

    fn for_each_sound_mate<'a, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        f: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(u32, &'a TokenRecord) -> ControlFlow<()>,
    {
        TokenDatabase::for_each_sound_mate(self, query, scratch, f)
    }

    fn get(&self, token: &str) -> Option<&TokenRecord> {
        TokenDatabase::get(self, token)
    }

    fn stats(&self) -> TokenStats {
        TokenDatabase::stats(self)
    }

    fn unique_tokens(&self) -> usize {
        self.records().len()
    }

    fn clean_sentences(&self) -> &[String] {
        TokenDatabase::clean_sentences(self)
    }

    fn soundex(&self, k: usize) -> Result<&CustomSoundex> {
        TokenDatabase::soundex(self, k)
    }

    fn hashmap_view(&self, k: usize) -> Result<Vec<(String, Vec<String>)>> {
        TokenDatabase::hashmap_view(self, k)
    }

    fn ingest_token(&mut self, token: &str) {
        TokenDatabase::ingest_token(self, token)
    }

    fn ingest_text(&mut self, text: &str) -> usize {
        TokenDatabase::ingest_text(self, text)
    }

    fn ingest_texts<T: AsRef<str> + Sync>(&mut self, texts: &[T]) -> usize {
        TokenDatabase::ingest_texts(self, texts)
    }

    fn record_clean_sentence(&mut self, text: &str) {
        TokenDatabase::record_clean_sentence(self, text)
    }

    fn seed_lexicon(&mut self) {
        TokenDatabase::seed_lexicon(self)
    }

    fn persist_to(&self, store: &Database, collection: &str) -> Result<()> {
        TokenDatabase::persist_to(self, store, collection)
    }

    fn load_from(store: &Database, collection: &str) -> Result<Self> {
        TokenDatabase::load_from(store, collection)
    }
}

/// A runtime-selected [`TokenStore`] backend.
///
/// [`AnyTokenStore::from_env`] picks the backend from the
/// `CRYPTEXT_SHARDS` environment variable (absent, empty, or `1` → the
/// single instance; `N > 1` → `N` consistent-hash shards), which lets one
/// binary — and one test suite — exercise either storage layout without
/// recompiling.
// One AnyTokenStore exists per assembled system — never in collections —
// so the variant size gap is irrelevant and boxing would only add an
// indirection to every read.
#[allow(clippy::large_enum_variant)]
pub enum AnyTokenStore {
    /// One in-memory instance.
    Single(TokenDatabase),
    /// Consistent-hash shards.
    Sharded(ShardedTokenDatabase),
}

impl AnyTokenStore {
    /// The shard count selected by `CRYPTEXT_SHARDS` (default 1).
    pub fn env_shards() -> usize {
        std::env::var("CRYPTEXT_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    }

    /// Wrap `db` in the env-selected backend: kept as-is for one shard,
    /// resharded (preserving counts, lexicon seeds, and clean sentences)
    /// for `CRYPTEXT_SHARDS > 1`.
    pub fn from_env(db: TokenDatabase) -> Self {
        let n = Self::env_shards();
        if n <= 1 {
            AnyTokenStore::Single(db)
        } else {
            AnyTokenStore::Sharded(ShardedTokenDatabase::from_database(&db, n))
        }
    }

    /// The single-instance backend, if that is what this is.
    pub fn as_single(&self) -> Option<&TokenDatabase> {
        match self {
            AnyTokenStore::Single(db) => Some(db),
            AnyTokenStore::Sharded(_) => None,
        }
    }

    /// The sharded backend, if that is what this is.
    pub fn as_sharded(&self) -> Option<&ShardedTokenDatabase> {
        match self {
            AnyTokenStore::Sharded(db) => Some(db),
            AnyTokenStore::Single(_) => None,
        }
    }
}

impl TokenStore for AnyTokenStore {
    fn num_shards(&self) -> usize {
        match self {
            AnyTokenStore::Single(db) => db.num_shards(),
            AnyTokenStore::Sharded(db) => db.num_shards(),
        }
    }

    fn for_each_sound_mate<'a, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        f: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(u32, &'a TokenRecord) -> ControlFlow<()>,
    {
        match self {
            AnyTokenStore::Single(db) => db.for_each_sound_mate(query, scratch, f),
            AnyTokenStore::Sharded(db) => TokenStore::for_each_sound_mate(db, query, scratch, f),
        }
    }

    // Forwarded explicitly: without this the enum would fall back to the
    // trait's sequential default and the sharded backend's Bloom-routed
    // parallel fan-out would never run behind `AnyTokenStore`.
    fn fan_out_sound_mates<'a, M, R, F>(
        &'a self,
        query: &EncodedQuery,
        scratch: &mut SoundScratch,
        map: M,
        sink: F,
    ) -> ControlFlow<()>
    where
        M: Fn(u32, &'a TokenRecord) -> Option<R> + Sync,
        R: Send,
        F: FnMut(R) -> ControlFlow<()>,
    {
        match self {
            AnyTokenStore::Single(db) => db.fan_out_sound_mates(query, scratch, map, sink),
            AnyTokenStore::Sharded(db) => db.fan_out_sound_mates(query, scratch, map, sink),
        }
    }

    fn get(&self, token: &str) -> Option<&TokenRecord> {
        match self {
            AnyTokenStore::Single(db) => db.get(token),
            AnyTokenStore::Sharded(db) => db.get(token),
        }
    }

    fn stats(&self) -> TokenStats {
        match self {
            AnyTokenStore::Single(db) => db.stats(),
            AnyTokenStore::Sharded(db) => db.stats(),
        }
    }

    fn unique_tokens(&self) -> usize {
        match self {
            AnyTokenStore::Single(db) => TokenStore::unique_tokens(db),
            AnyTokenStore::Sharded(db) => TokenStore::unique_tokens(db),
        }
    }

    fn clean_sentences(&self) -> &[String] {
        match self {
            AnyTokenStore::Single(db) => db.clean_sentences(),
            AnyTokenStore::Sharded(db) => db.clean_sentences(),
        }
    }

    fn soundex(&self, k: usize) -> Result<&CustomSoundex> {
        match self {
            AnyTokenStore::Single(db) => db.soundex(k),
            AnyTokenStore::Sharded(db) => db.soundex(k),
        }
    }

    fn hashmap_view(&self, k: usize) -> Result<Vec<(String, Vec<String>)>> {
        match self {
            AnyTokenStore::Single(db) => db.hashmap_view(k),
            AnyTokenStore::Sharded(db) => db.hashmap_view(k),
        }
    }

    fn ingest_token(&mut self, token: &str) {
        match self {
            AnyTokenStore::Single(db) => db.ingest_token(token),
            AnyTokenStore::Sharded(db) => TokenStore::ingest_token(db, token),
        }
    }

    fn ingest_text(&mut self, text: &str) -> usize {
        match self {
            AnyTokenStore::Single(db) => db.ingest_text(text),
            AnyTokenStore::Sharded(db) => TokenStore::ingest_text(db, text),
        }
    }

    fn ingest_texts<T: AsRef<str> + Sync>(&mut self, texts: &[T]) -> usize {
        match self {
            AnyTokenStore::Single(db) => db.ingest_texts(texts),
            AnyTokenStore::Sharded(db) => TokenStore::ingest_texts(db, texts),
        }
    }

    fn record_clean_sentence(&mut self, text: &str) {
        match self {
            AnyTokenStore::Single(db) => db.record_clean_sentence(text),
            AnyTokenStore::Sharded(db) => db.record_clean_sentence(text),
        }
    }

    fn seed_lexicon(&mut self) {
        match self {
            AnyTokenStore::Single(db) => db.seed_lexicon(),
            AnyTokenStore::Sharded(db) => TokenStore::seed_lexicon(db),
        }
    }

    fn persist_to(&self, store: &Database, collection: &str) -> Result<()> {
        match self {
            AnyTokenStore::Single(db) => db.persist_to(store, collection),
            AnyTokenStore::Sharded(db) => TokenStore::persist_to(db, store, collection),
        }
    }

    fn register_metrics(&self, registry: &MetricsRegistry) {
        match self {
            AnyTokenStore::Single(db) => TokenStore::register_metrics(db, registry),
            AnyTokenStore::Sharded(db) => TokenStore::register_metrics(db, registry),
        }
    }

    /// Backend auto-detection: a shard-count manifest means a sharded
    /// persist; otherwise the collection is a single-instance persist.
    fn load_from(store: &Database, collection: &str) -> Result<Self> {
        if ShardedTokenDatabase::manifest_shards(store, collection)?.is_some() {
            Ok(AnyTokenStore::Sharded(ShardedTokenDatabase::load_from(
                store, collection,
            )?))
        } else {
            Ok(AnyTokenStore::Single(TokenDatabase::load_from(
                store, collection,
            )?))
        }
    }
}

impl std::fmt::Debug for AnyTokenStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyTokenStore::Single(db) => f.debug_tuple("Single").field(db).finish(),
            AnyTokenStore::Sharded(db) => f.debug_tuple("Sharded").field(db).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shards_parses_and_defaults() {
        // Note: reads the live environment; the suite may legitimately run
        // under CRYPTEXT_SHARDS (that is the CI sharded pass), so only
        // assert the contract, not a specific value.
        let n = AnyTokenStore::env_shards();
        assert!(n >= 1);
    }

    #[test]
    fn from_env_respects_single_default() {
        // Build both variants explicitly — from_env depends on the live
        // environment, so test the wrapping paths directly.
        let mut db = TokenDatabase::in_memory();
        db.ingest_text("the dirrty republicans");
        let stats = db.stats();

        let single = AnyTokenStore::Single(db);
        assert_eq!(single.num_shards(), 1);
        assert!(single.as_single().is_some());
        assert_eq!(single.stats(), stats);

        let mut db2 = TokenDatabase::in_memory();
        db2.ingest_text("the dirrty republicans");
        let sharded = AnyTokenStore::Sharded(ShardedTokenDatabase::from_database(&db2, 3));
        assert_eq!(sharded.num_shards(), 3);
        assert!(sharded.as_sharded().is_some());
        assert_eq!(sharded.stats(), stats, "resharding preserves statistics");
    }

    #[test]
    fn switching_sharded_to_single_persist_drops_shard_collections() {
        // Persist sharded under "tokens", then persist the single backend
        // under the same name: the shard collections (a full corpus copy)
        // must be swept, and load_from must detect the flat layout.
        let mut db = TokenDatabase::in_memory();
        db.ingest_text("the dirrty republicans");
        let store = Database::in_memory();
        TokenStore::persist_to(
            &ShardedTokenDatabase::from_database(&db, 6),
            &store,
            "tokens",
        )
        .unwrap();
        assert_eq!(store.collections_with_prefix("tokens__g").len(), 6);

        db.persist_to(&store, "tokens").unwrap();
        assert!(store.collections_with_prefix("tokens__g").is_empty());
        let restored = AnyTokenStore::load_from(&store, "tokens").unwrap();
        assert!(restored.as_single().is_some());
        assert_eq!(restored.stats(), db.stats());
    }

    #[test]
    fn load_from_detects_backend() {
        let mut db = TokenDatabase::in_memory();
        db.ingest_text("the dirrty republicans");
        let store = Database::in_memory();

        TokenStore::persist_to(&db, &store, "flat").unwrap();
        let sharded = ShardedTokenDatabase::from_database(&db, 4);
        TokenStore::persist_to(&sharded, &store, "wide").unwrap();

        let a = AnyTokenStore::load_from(&store, "flat").unwrap();
        assert!(a.as_single().is_some());
        let b = AnyTokenStore::load_from(&store, "wide").unwrap();
        assert_eq!(b.num_shards(), 4);
        assert_eq!(a.stats(), b.stats());
    }
}
