//! The ingest crawler (§III-F).
//!
//! "We set up a crawler that regularly collects recent tweets to
//! continually enrich CrypText's database with novel perturbed tokens
//! online." [`Crawler`] consumes the simulated platform's stream from a
//! cursor, feeds every post through the tokenizer into the
//! [`TokenDatabase`], and reports what it learned.

use cryptext_common::Timestamp;
use cryptext_stream::SocialPlatform;

use crate::store::TokenStore;

/// Statistics from one crawl batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Posts consumed.
    pub posts: usize,
    /// Word tokens ingested (occurrences).
    pub tokens: usize,
    /// Previously-unseen unique tokens added to the database.
    pub new_tokens: usize,
}

/// A resumable stream crawler.
#[derive(Debug, Default)]
pub struct Crawler {
    cursor: Timestamp,
    lifetime: IngestStats,
}

impl Crawler {
    /// A crawler starting from the beginning of time.
    pub fn new() -> Self {
        Crawler::default()
    }

    /// A crawler resuming from a persisted cursor.
    pub fn from_cursor(cursor: Timestamp) -> Self {
        Crawler {
            cursor,
            lifetime: IngestStats::default(),
        }
    }

    /// The resume cursor (exclusive lower bound of the next batch).
    pub fn cursor(&self) -> Timestamp {
        self.cursor
    }

    /// Lifetime totals across all batches.
    pub fn lifetime_stats(&self) -> IngestStats {
        self.lifetime
    }

    /// Consume every post at or after the cursor, up to `max_posts`
    /// (0 = unlimited). Advances the cursor past the last consumed post.
    /// Works against any [`TokenStore`] backend — the crawler feeds a
    /// sharded deployment the same way it feeds a single instance.
    pub fn run_once<S: TokenStore>(
        &mut self,
        platform: &SocialPlatform,
        db: &mut S,
        max_posts: usize,
    ) -> IngestStats {
        // The cheap counter, not full stats(): the sharded backend's
        // per-level sound unions are O(total codes) and unused here.
        let before_unique = db.unique_tokens();
        let mut stats = IngestStats::default();
        let limit = if max_posts == 0 {
            usize::MAX
        } else {
            max_posts
        };
        let mut last_ts = self.cursor;
        for post in platform.stream_from(self.cursor).take(limit) {
            stats.posts += 1;
            stats.tokens += db.ingest_text(&post.text);
            last_ts = post.created_at + 1;
        }
        self.cursor = last_ts.max(self.cursor);
        stats.new_tokens = db.unique_tokens() - before_unique;
        self.lifetime.posts += stats.posts;
        self.lifetime.tokens += stats.tokens;
        self.lifetime.new_tokens += stats.new_tokens;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TokenDatabase;
    use cryptext_stream::StreamConfig;

    fn platform() -> SocialPlatform {
        SocialPlatform::simulate(StreamConfig {
            n_posts: 400,
            seed: 3,
            ..StreamConfig::default()
        })
    }

    #[test]
    fn full_crawl_ingests_every_post() {
        let p = platform();
        let mut db = TokenDatabase::in_memory();
        let mut crawler = Crawler::new();
        let stats = crawler.run_once(&p, &mut db, 0);
        assert_eq!(stats.posts, 400);
        assert!(stats.tokens > 1_000);
        assert!(stats.new_tokens > 50);
        assert_eq!(db.stats().unique_tokens, stats.new_tokens);
        // Second run: nothing new.
        let stats2 = crawler.run_once(&p, &mut db, 0);
        assert_eq!(stats2.posts, 0);
        assert_eq!(stats2.new_tokens, 0);
    }

    #[test]
    fn batched_crawl_resumes_at_cursor() {
        let p = platform();
        let mut db_batched = TokenDatabase::in_memory();
        let mut crawler = Crawler::new();
        let mut total_posts = 0;
        loop {
            let stats = crawler.run_once(&p, &mut db_batched, 50);
            total_posts += stats.posts;
            if stats.posts == 0 {
                break;
            }
        }
        assert_eq!(total_posts, 400);

        // Batched result equals one-shot result.
        let mut db_oneshot = TokenDatabase::in_memory();
        Crawler::new().run_once(&p, &mut db_oneshot, 0);
        assert_eq!(db_batched.stats(), db_oneshot.stats());
    }

    #[test]
    fn crawler_discovers_novel_perturbations() {
        let p = platform();
        let mut db = TokenDatabase::with_lexicon();
        let before = db.stats().unique_tokens;
        Crawler::new().run_once(&p, &mut db, 0);
        let after = db.stats().unique_tokens;
        assert!(
            after > before,
            "crawler added perturbed tokens beyond the lexicon: {before} → {after}"
        );
        // At least one added token is a known perturbation from the feed's
        // gold labels.
        let gold_perturbed: Vec<&str> = p
            .posts()
            .iter()
            .flat_map(|post| post.perturbations.iter().map(|r| r.perturbed.as_str()))
            .collect();
        assert!(gold_perturbed.iter().any(|t| db.get(t).is_some()));
    }

    #[test]
    fn cursor_round_trips_for_resume() {
        let p = platform();
        let mut db = TokenDatabase::in_memory();
        let mut crawler = Crawler::new();
        crawler.run_once(&p, &mut db, 100);
        let cursor = crawler.cursor();
        assert!(cursor > 0);

        // A new crawler from the persisted cursor sees only the rest.
        let mut resumed = Crawler::from_cursor(cursor);
        let stats = resumed.run_once(&p, &mut db, 0);
        assert_eq!(stats.posts, 300);
        assert_eq!(crawler.lifetime_stats().posts, 100);
    }

    #[test]
    fn empty_platform_is_noop() {
        let p = SocialPlatform::simulate(StreamConfig {
            n_posts: 0,
            ..StreamConfig::default()
        });
        let mut db = TokenDatabase::in_memory();
        let stats = Crawler::new().run_once(&p, &mut db, 0);
        assert_eq!(stats, IngestStats::default());
    }
}
