//! # cryptext-core
//!
//! The CrypText system (§III of the paper): the human-written token
//! database and the four user-facing functions built on top of it.
//!
//! * [`database::TokenDatabase`] — raw case-sensitive tokens encoded with
//!   the customized Soundex at phonetic levels `k ∈ {0, 1, 2}`, bucketed
//!   into the `H_k` hash maps (Table I), persistable to the embedded
//!   document store.
//! * [`lookup`] — **Look Up** (§III-B): retrieve the perturbation set
//!   `P_x` of a token under the SMS property (same Sound at level `k`,
//!   same Meaning via Levenshtein ≤ `d`, different Spelling).
//! * [`normalize`] — **Normalization** (§III-C): detect and de-perturb
//!   tokens, ranking dictionary candidates with an n-gram coherency score
//!   (the BERT substitute).
//! * [`perturb`] — **Perturbation** (§III-D): rewrite a text at
//!   manipulation ratio `r` using only perturbations observed in the
//!   database — i.e. guaranteed human-written.
//! * [`listening`] — **Social Listening** (§III-E): expand a watch-list
//!   into perturbations, search the (simulated) platform, aggregate
//!   frequency/sentiment timelines.
//! * [`ingest`] — the crawler (§III-F) that continually feeds new tokens
//!   from the stream into the database.
//! * [`service`] — the public-API facade (§III-F): token auth, rate
//!   limiting, Redis-style result caching, bulk endpoints.
//! * [`store`] / [`shard`] — the storage abstraction: every engine is
//!   generic over the [`store::TokenStore`] trait, implemented by the
//!   single-instance [`database::TokenDatabase`] and the consistent-hash
//!   [`shard::ShardedTokenDatabase`].

#![warn(missing_docs)]

pub mod database;
pub mod durable;
pub mod ingest;
pub mod listening;
pub mod lookup;
pub mod metrics;
pub mod normalize;
pub mod perturb;
pub mod service;
pub mod shard;
pub mod store;

use cryptext_common::Result;

pub use database::{EncodedQuery, SoundScratch, TokenDatabase, TokenRecord, TokenStats};
pub use lookup::{
    for_each_hit, for_each_hit_until, look_up, look_up_cancellable, look_up_naive, look_up_with,
    LookupHit, LookupParams, LookupScratch,
};
pub use metrics::StageMetrics;
pub use normalize::{
    CandidateCache, CandidatePairs, NormalizeParams, NormalizeScratch, Normalizer,
};
pub use perturb::{PerturbParams, Perturber};
pub use shard::ShardedTokenDatabase;
pub use store::{AnyTokenStore, TokenStore};

/// The assembled CrypText system: a token store plus the language model
/// used by Normalization. Generic over the storage backend; the default
/// type parameter keeps single-instance callers (`CrypText::new(db)`)
/// source-compatible.
pub struct CrypText<S: TokenStore = TokenDatabase> {
    db: S,
    lm: cryptext_lm::NgramLm,
}

impl CrypText<TokenDatabase> {
    /// Assemble from a single-instance database; the normalization
    /// language model is trained on the database's accumulated clean
    /// sentences (see [`TokenDatabase::clean_sentences`]).
    pub fn new(db: TokenDatabase) -> Self {
        Self::with_store(db)
    }
}

impl CrypText<AnyTokenStore> {
    /// Assemble from a database wrapped in the `CRYPTEXT_SHARDS`-selected
    /// backend ([`AnyTokenStore::from_env`]): unchanged for one shard,
    /// resharded by consistent hashing for `CRYPTEXT_SHARDS > 1`. Both
    /// backends serve byte-identical results, so callers need not care
    /// which one they got.
    pub fn from_env(db: TokenDatabase) -> Self {
        Self::with_store(AnyTokenStore::from_env(db))
    }
}

impl<S: TokenStore> CrypText<S> {
    /// Assemble from any storage backend, training the normalization
    /// language model on the store's accumulated clean sentences.
    pub fn with_store(db: S) -> Self {
        let lm = cryptext_lm::NgramLm::train(db.clean_sentences().iter().map(|s| s.as_str()));
        CrypText { db, lm }
    }

    /// Assemble with an explicitly trained language model.
    pub fn with_lm(db: S, lm: cryptext_lm::NgramLm) -> Self {
        CrypText { db, lm }
    }

    /// The underlying token store.
    pub fn database(&self) -> &S {
        &self.db
    }

    /// Mutable access (for incremental ingest).
    pub fn database_mut(&mut self) -> &mut S {
        &mut self.db
    }

    /// The normalization language model.
    pub fn language_model(&self) -> &cryptext_lm::NgramLm {
        &self.lm
    }

    /// Look Up: the perturbation set `P_x` of `token` (§III-B).
    pub fn look_up(&self, token: &str, params: LookupParams) -> Result<Vec<LookupHit>> {
        lookup::look_up(&self.db, token, params)
    }

    /// Normalization: de-perturb `text` (§III-C).
    pub fn normalize(
        &self,
        text: &str,
        params: NormalizeParams,
    ) -> Result<normalize::NormalizationResult> {
        Normalizer::new(&self.lm).normalize(&self.db, text, params)
    }

    /// Perturbation: rewrite `text` at manipulation ratio `r` with
    /// database perturbations (§III-D).
    pub fn perturb(
        &self,
        text: &str,
        params: PerturbParams,
    ) -> Result<perturb::PerturbationOutcome> {
        Perturber::new(&self.db).perturb(text, params)
    }
}

impl<S: TokenStore> std::fmt::Debug for CrypText<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrypText")
            .field("db", &self.db.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example, end to end: Table I corpus → Look Up.
    #[test]
    fn paper_table1_lookup_flow() {
        let mut db = TokenDatabase::in_memory();
        for s in [
            "the dirrty republicans",
            "thee dirty repubLIEcans",
            "the dirty republic@@ns",
        ] {
            db.ingest_text(s);
        }
        let cx = CrypText::new(db);

        // §III-B: query "republicans" with k=1, d=1 →
        // {republicans, repubLIEcans}, excluding republic@@ns (d = 2).
        let hits = cx.look_up("republicans", LookupParams::new(1, 1)).unwrap();
        let tokens: Vec<&str> = hits.iter().map(|h| h.token.as_str()).collect();
        assert!(tokens.contains(&"republicans"));
        assert!(tokens.contains(&"repubLIEcans"));
        assert!(!tokens.contains(&"republic@@ns"));

        // With d=2 the third variant appears.
        let hits = cx.look_up("republicans", LookupParams::new(1, 2)).unwrap();
        let tokens: Vec<&str> = hits.iter().map(|h| h.token.as_str()).collect();
        assert!(tokens.contains(&"republic@@ns"));
    }
}
