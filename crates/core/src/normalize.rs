//! Normalization (§III-C): detecting and de-perturbing text.
//!
//! For each word token `xᵢ`: if it is already a dictionary word it stands.
//! Otherwise CrypText gathers candidate dictionary words that share an
//! `H_k` bucket within Levenshtein `d` (the SMS property again, restricted
//! to English candidates) and ranks them by
//!
//! ```text
//! score(w) = coherency(w | context)            (masked n-gram LM)
//!          − λ · lev(w, xᵢ)                    (edit penalty)
//!          + μ · ln P(w)                       (unigram prior)
//! ```
//!
//! mirroring the paper's BERT coherency ranking with a deterministic
//! substitute. The full candidate list with scores is exposed (the paper's
//! "advanced users can retrieve all candidates w* and their coherency
//! scores via a provided API").

use cryptext_common::Result;
use cryptext_lm::NgramLm;
use cryptext_tokenizer::{splice, tokenize, Token};

use crate::database::TokenDatabase;
use crate::lookup::{look_up, LookupParams};

/// Parameters of a Normalization pass.
#[derive(Debug, Clone, Copy)]
pub struct NormalizeParams {
    /// Phonetic level for candidate retrieval.
    pub k: usize,
    /// Levenshtein bound for candidate retrieval.
    pub d: usize,
    /// Weight of the edit-distance penalty (λ).
    pub edit_penalty: f64,
    /// Weight of the unigram prior (μ).
    pub prior_weight: f64,
    /// Maximum candidates to keep per token.
    pub max_candidates: usize,
}

impl Default for NormalizeParams {
    fn default() -> Self {
        NormalizeParams {
            k: 1,
            d: 3,
            edit_penalty: 1.0,
            prior_weight: 0.3,
            max_candidates: 8,
        }
    }
}

/// A scored correction candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The dictionary word.
    pub word: String,
    /// Combined ranking score (higher = better).
    pub score: f64,
    /// Case-folded edit distance to the original token.
    pub distance: usize,
}

/// One corrected token.
#[derive(Debug, Clone, PartialEq)]
pub struct Correction {
    /// The perturbed surface form found in the input.
    pub original: String,
    /// The chosen dictionary replacement.
    pub replacement: String,
    /// Byte span of the original token in the input text.
    pub span: std::ops::Range<usize>,
    /// Winning score.
    pub score: f64,
    /// The full ranked candidate list (winner first).
    pub candidates: Vec<Candidate>,
}

/// Result of normalizing a text.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizationResult {
    /// The de-perturbed text.
    pub text: String,
    /// Every correction, in span order (Fig. 2 highlights these).
    pub corrections: Vec<Correction>,
}

impl NormalizationResult {
    /// Was anything corrected?
    pub fn changed(&self) -> bool {
        !self.corrections.is_empty()
    }
}

/// The Normalization engine: a language model for coherency scoring.
pub struct Normalizer<'a> {
    lm: &'a NgramLm,
}

impl<'a> Normalizer<'a> {
    /// Build from a trained language model.
    pub fn new(lm: &'a NgramLm) -> Self {
        Normalizer { lm }
    }

    /// Should this token be left alone? Dictionary words (case-folded)
    /// stand as written.
    fn is_clean(token: &str) -> bool {
        cryptext_corpus::is_english_word(token)
    }

    /// Score and rank dictionary candidates for one token.
    fn candidates_for(
        &self,
        db: &TokenDatabase,
        token: &str,
        left: &[&str],
        right: &[&str],
        params: NormalizeParams,
    ) -> Result<Vec<Candidate>> {
        let hits = look_up(db, token, LookupParams::new(params.k, params.d))?;
        let mut cands: Vec<Candidate> = hits
            .into_iter()
            .filter(|h| h.is_english)
            .map(|h| {
                let word = h.token.to_ascii_lowercase();
                let coherency = self.lm.coherency(&word, left, right);
                let prior = self.lm.unigram_log_prob(&word);
                let score = coherency - params.edit_penalty * h.distance as f64
                    + params.prior_weight * prior;
                Candidate {
                    word,
                    score,
                    distance: h.distance,
                }
            })
            .collect();
        // Same dictionary word may appear under several surface forms;
        // keep the best-scoring instance of each.
        cands.sort_by(|a, b| {
            a.word.cmp(&b.word).then(
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        cands.dedup_by(|a, b| a.word == b.word);
        cands.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        cands.truncate(params.max_candidates);
        Ok(cands)
    }

    /// Normalize one token given its context; `None` when the token is
    /// clean or no candidate exists.
    pub fn normalize_token(
        &self,
        db: &TokenDatabase,
        token: &str,
        left: &[&str],
        right: &[&str],
        params: NormalizeParams,
    ) -> Result<Option<(String, f64, Vec<Candidate>)>> {
        if Self::is_clean(token) {
            return Ok(None);
        }
        let cands = self.candidates_for(db, token, left, right, params)?;
        match cands.first() {
            None => Ok(None),
            Some(best) => Ok(Some((best.word.clone(), best.score, cands.clone()))),
        }
    }

    /// Normalize a whole text (§III-C, Fig. 2).
    pub fn normalize(
        &self,
        db: &TokenDatabase,
        text: &str,
        params: NormalizeParams,
    ) -> Result<NormalizationResult> {
        TokenDatabase::check_level(params.k)?;
        let tokens = tokenize(text);
        let word_positions: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_word())
            .map(|(i, _)| i)
            .collect();
        let words_lower: Vec<String> = word_positions
            .iter()
            .map(|&i| tokens[i].text.to_ascii_lowercase())
            .collect();

        let mut corrections: Vec<Correction> = Vec::new();
        let mut replacements: Vec<(std::ops::Range<usize>, String)> = Vec::new();
        for (wi, &ti) in word_positions.iter().enumerate() {
            let tok: &Token = &tokens[ti];
            let left_start = wi.saturating_sub(2);
            let left: Vec<&str> = words_lower[left_start..wi]
                .iter()
                .map(|s| s.as_str())
                .collect();
            let right_end = (wi + 3).min(words_lower.len());
            let right: Vec<&str> = words_lower[wi + 1..right_end]
                .iter()
                .map(|s| s.as_str())
                .collect();
            if let Some((replacement, score, candidates)) =
                self.normalize_token(db, &tok.text, &left, &right, params)?
            {
                replacements.push((tok.span.clone(), replacement.clone()));
                corrections.push(Correction {
                    original: tok.text.clone(),
                    replacement,
                    span: tok.span.clone(),
                    score,
                    candidates,
                });
            }
        }
        Ok(NormalizationResult {
            text: splice(text, &replacements),
            corrections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_lm::NgramLm;

    fn fixture() -> (TokenDatabase, NgramLm) {
        let mut db = TokenDatabase::with_lexicon();
        // Observed perturbations so buckets exist for them too.
        for s in [
            "the demokRATs rallied",
            "vacc1ne mandate pushback",
            "thinking about suic1de",
        ] {
            db.ingest_text(s);
        }
        let lm = NgramLm::train([
            "biden belongs to the democrats",
            "the democrats proposed the bill",
            "the republicans blocked the bill",
            "the vaccine mandate was announced",
            "people discussed the vaccine mandate online",
            "suicide prevention is important",
            "thinking about suicide is a warning sign",
            "the dirty campaign continued",
        ]);
        (db, lm)
    }

    #[test]
    fn paper_figure2_style_normalization() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let out = n
            .normalize(
                &db,
                "Biden belongs to the demokRATs",
                NormalizeParams::default(),
            )
            .unwrap();
        assert_eq!(out.text, "Biden belongs to the democrats");
        assert_eq!(out.corrections.len(), 1);
        let c = &out.corrections[0];
        assert_eq!(c.original, "demokRATs");
        assert_eq!(c.replacement, "democrats");
        assert!(!c.candidates.is_empty());
        assert_eq!(c.candidates[0].word, "democrats");
    }

    #[test]
    fn leet_and_ambiguous_tokens_normalize() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let out = n
            .normalize(
                &db,
                "the vacc1ne mandate was announced",
                NormalizeParams::default(),
            )
            .unwrap();
        assert_eq!(out.text, "the vaccine mandate was announced");

        let out = n
            .normalize(&db, "thinking about suic1de", NormalizeParams::default())
            .unwrap();
        assert_eq!(out.text, "thinking about suicide");
    }

    #[test]
    fn clean_text_untouched() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let text = "the democrats proposed the bill";
        let out = n.normalize(&db, text, NormalizeParams::default()).unwrap();
        assert_eq!(out.text, text);
        assert!(!out.changed());
    }

    #[test]
    fn unknown_gibberish_left_alone() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let out = n
            .normalize(&db, "qzxqzx happened", NormalizeParams::default())
            .unwrap();
        assert!(out.text.contains("qzxqzx"), "no candidates → unchanged");
    }

    #[test]
    fn context_breaks_ties() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        // "vacc1ne" in a mandate context → vaccine (not some other v-word).
        let (replacement, _, cands) = n
            .normalize_token(
                &db,
                "vacc1ne",
                &["the"],
                &["mandate", "was"],
                NormalizeParams::default(),
            )
            .unwrap()
            .unwrap();
        assert_eq!(replacement, "vaccine");
        assert!(!cands.is_empty());
    }

    #[test]
    fn candidate_list_is_ranked_and_deduped() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let (_, _, cands) = n
            .normalize_token(&db, "demokRATs", &["the"], &[], NormalizeParams::default())
            .unwrap()
            .unwrap();
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score, "ranked descending");
        }
        let words: std::collections::HashSet<&str> =
            cands.iter().map(|c| c.word.as_str()).collect();
        assert_eq!(words.len(), cands.len(), "no duplicate words");
    }

    #[test]
    fn spans_point_into_original_text() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let text = "so the demokRATs and the vacc1ne push";
        let out = n.normalize(&db, text, NormalizeParams::default()).unwrap();
        assert_eq!(out.corrections.len(), 2);
        for c in &out.corrections {
            assert_eq!(&text[c.span.clone()], c.original);
        }
    }

    #[test]
    fn invalid_level_is_error() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let params = NormalizeParams {
            k: 7,
            ..NormalizeParams::default()
        };
        assert!(n.normalize(&db, "whatever", params).is_err());
    }

    #[test]
    fn max_candidates_truncates() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let params = NormalizeParams {
            max_candidates: 1,
            ..NormalizeParams::default()
        };
        if let Some((_, _, cands)) = n
            .normalize_token(&db, "demokRATs", &["the"], &[], params)
            .unwrap()
        {
            assert_eq!(cands.len(), 1);
        }
    }
}
