//! Normalization (§III-C): detecting and de-perturbing text.
//!
//! For each word token `xᵢ`: if it is already a dictionary word it stands.
//! Otherwise CrypText gathers candidate dictionary words that share an
//! `H_k` bucket within Levenshtein `d` (the SMS property again, restricted
//! to English candidates) and ranks them by
//!
//! ```text
//! score(w) = coherency(w | context)            (masked n-gram LM)
//!          − λ · lev(w, xᵢ)                    (edit penalty)
//!          + μ · ln P(w)                       (unigram prior)
//! ```
//!
//! mirroring the paper's BERT coherency ranking with a deterministic
//! substitute. The full candidate list with scores is exposed (the paper's
//! "advanced users can retrieve all candidates w* and their coherency
//! scores via a provided API").
//!
//! # Hot-path layout
//!
//! Normalization used to re-run an allocating [`look_up`] per
//! out-of-dictionary token — cloning every hit's token `String`, cloning
//! again into lowercased candidate words, and re-probing the LM hash
//! tables for every candidate of every token. The hot path now mirrors the
//! Look Up engine's zero-copy discipline:
//!
//! * **Candidates stream through [`for_each_hit`]** — no intermediate
//!   owned hit vector; non-English records are skipped before any scoring.
//!   Each out-of-dictionary token is encoded into an
//!   [`crate::database::EncodedQuery`] exactly once, so a sharded backend
//!   walks all of its shards (Bloom-routed, possibly in parallel) on one
//!   encoding — Normalization inherits the sharded Look Up fan-out wholesale.
//! * **Candidate words borrow the database** (`Cow::Borrowed` into each
//!   record's precomputed fold for the ASCII common case); owned `String`s
//!   are materialized only for the final, truncated candidate list.
//! * **One [`NormalizeScratch`] serves a whole text**: the Look Up scratch
//!   (visited marks, Myers/DP buffers, query fold) plus a
//!   generation-marked [`CoherencyCache`] that memoizes LM scores per
//!   resolved `(context, candidate)` window, so candidates repeated across
//!   tokens never re-probe the n-gram tables.
//!
//! [`Normalizer::normalize_naive`] preserves the pre-optimization pipeline
//! verbatim; proptests pin the optimized output (text, corrections,
//! candidate ordering, scores) byte-identical against it.

use std::borrow::Cow;
use std::cell::RefCell;

use cryptext_common::Result;
use cryptext_lm::{CoherencyCache, NgramLm};
use cryptext_tokenizer::{splice, tokenize, tokenize_spans, Token};

use crate::database::TokenDatabase;
use crate::lookup::{for_each_hit, look_up, LookupParams, LookupScratch};
use crate::store::TokenStore;

/// Parameters of a Normalization pass.
#[derive(Debug, Clone, Copy)]
pub struct NormalizeParams {
    /// Phonetic level for candidate retrieval.
    pub k: usize,
    /// Levenshtein bound for candidate retrieval.
    pub d: usize,
    /// Weight of the edit-distance penalty (λ).
    pub edit_penalty: f64,
    /// Weight of the unigram prior (μ).
    pub prior_weight: f64,
    /// Maximum candidates to keep per token.
    pub max_candidates: usize,
}

impl Default for NormalizeParams {
    fn default() -> Self {
        NormalizeParams {
            k: 1,
            d: 3,
            edit_penalty: 1.0,
            prior_weight: 0.3,
            max_candidates: 8,
        }
    }
}

/// A scored correction candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The dictionary word.
    pub word: String,
    /// Combined ranking score (higher = better).
    pub score: f64,
    /// Case-folded edit distance to the original token.
    pub distance: usize,
}

/// One corrected token.
#[derive(Debug, Clone, PartialEq)]
pub struct Correction {
    /// The perturbed surface form found in the input.
    pub original: String,
    /// The chosen dictionary replacement.
    pub replacement: String,
    /// Byte span of the original token in the input text.
    pub span: std::ops::Range<usize>,
    /// Winning score.
    pub score: f64,
    /// The full ranked candidate list (winner first).
    pub candidates: Vec<Candidate>,
}

/// Result of normalizing a text.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizationResult {
    /// The de-perturbed text.
    pub text: String,
    /// Every correction, in span order (Fig. 2 highlights these).
    pub corrections: Vec<Correction>,
}

impl NormalizationResult {
    /// Was anything corrected?
    pub fn changed(&self) -> bool {
        !self.corrections.is_empty()
    }
}

/// Reusable working memory for a Normalization pass: the Look Up retrieval
/// scratch plus the LM coherency memo table. One instance per thread (or
/// per bulk request) makes per-token candidate retrieval allocation-free
/// and de-duplicates LM probes across a text.
#[derive(Debug, Default)]
pub struct NormalizeScratch {
    lookup: LookupScratch,
    lm_cache: CoherencyCache,
}

impl NormalizeScratch {
    /// Fresh scratch space (allocates lazily on first use).
    pub fn new() -> Self {
        NormalizeScratch::default()
    }

    /// Attach (or, with `None`, detach) a stage-metrics bundle on the
    /// embedded Look Up scratch: candidate collection then records
    /// collect/re-score timings and scored-pair volumes. The nested
    /// per-token retrievals run with their own encode/walk timers
    /// detached — the collect histogram spans them, and per-token clock
    /// reads would dominate the instrumentation cost.
    pub fn attach_stages(&mut self, stages: Option<std::sync::Arc<crate::StageMetrics>>) {
        self.lookup.attach_stages(stages);
    }
}

thread_local! {
    static SHARED_NORM_SCRATCH: RefCell<NormalizeScratch> =
        RefCell::new(NormalizeScratch::new());
}

/// The context-independent half of one token's candidate retrieval: the
/// deduped `(word, distance)` pairs in ascending word order, exactly as
/// they stand after [`Normalizer::collect_candidates`]' dedup and before
/// context scoring reorders and truncates them. An **empty** list is a
/// negative entry — the token is out-of-dictionary with no candidates,
/// which is precisely the retrieval that dominates uncached p99.
///
/// Equal words imply equal folds, distances, and (given a context) scores,
/// so replaying these pairs through the scorer reproduces the uncached
/// pipeline byte-identically: scoring is recomputed per call (it depends
/// on the token's context window), and the final rank sort is stable from
/// the same word-ascending start order.
pub type CandidatePairs = std::sync::Arc<Vec<(String, usize)>>;

/// A cross-text memo for candidate retrieval, consulted per
/// out-of-dictionary token by [`Normalizer::normalize_cached`]. Keys are
/// `(token, k, d)` — the caller owns versioning (generation, model
/// identity) inside its own key/namespace scheme.
pub trait CandidateCache {
    /// Fetch the pairs memoized for `(token, k, d)`, or `None` on miss.
    /// `Some` with an empty list is a cached negative result.
    fn get(&self, token: &str, k: usize, d: usize) -> Option<CandidatePairs>;

    /// Memoize freshly retrieved pairs (possibly empty = negative).
    fn put(&self, token: &str, k: usize, d: usize, pairs: CandidatePairs);
}

/// A candidate scored against the database without owning its word: the
/// common (ASCII) case borrows the record's precomputed fold. Owned
/// `Candidate`s are materialized only after dedup + rank + truncate.
struct ScoredCand<'d> {
    word: Cow<'d, str>,
    score: f64,
    distance: usize,
}

/// The Normalization engine: a language model for coherency scoring.
pub struct Normalizer<'a> {
    lm: &'a NgramLm,
}

impl<'a> Normalizer<'a> {
    /// Build from a trained language model.
    pub fn new(lm: &'a NgramLm) -> Self {
        Normalizer { lm }
    }

    /// Should this token be left alone? Dictionary words (case-folded)
    /// stand as written.
    fn is_clean(token: &str) -> bool {
        cryptext_corpus::is_english_word(token)
    }

    /// Stream, score, dedup, and rank dictionary candidates for one token
    /// into `buf`. Equivalent to the naive look-up-then-clone pipeline
    /// (see [`Normalizer::normalize_naive`]) but zero-copy per candidate.
    #[allow(clippy::too_many_arguments)]
    fn collect_candidates<'d, S: TokenStore>(
        &self,
        db: &'d S,
        token: &str,
        left: &[&str],
        right: &[&str],
        params: NormalizeParams,
        scratch: &mut NormalizeScratch,
        buf: &mut Vec<ScoredCand<'d>>,
        cache: Option<&dyn CandidateCache>,
    ) -> Result<()> {
        buf.clear();
        let NormalizeScratch { lookup, lm_cache } = scratch;
        // Take the bundle off the embedded scratch for the duration of
        // the call: the nested retrieval must run with its encode/walk
        // timers detached — the collect histogram below already spans
        // it, and a normalize call fans out to one retrieval per token,
        // so per-token clock reads are exactly what the bench-smoke
        // overhead gate would charge us for.
        let stages_owned = lookup.stages.take();
        let stages = stages_owned.as_deref();
        // Cache hit: replay the memoized word-ascending pairs through the
        // scorer. The stable score sort below starts from the same order
        // the uncached path reaches after its dedup, so ties resolve
        // identically and the truncated list is byte-identical.
        if let Some(cache) = cache {
            if let Some(pairs) = cache.get(token, params.k, params.d) {
                let _t = stages.map(|s| s.normalize_rescore_us.start_timer());
                for (word, distance) in pairs.iter() {
                    let coherency = self.lm.coherency_cached(word, left, right, lm_cache);
                    let prior = self.lm.unigram_log_prob(word);
                    let score = coherency - params.edit_penalty * *distance as f64
                        + params.prior_weight * prior;
                    buf.push(ScoredCand {
                        word: Cow::Owned(word.clone()),
                        score,
                        distance: *distance,
                    });
                }
                buf.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                buf.truncate(params.max_candidates);
                if let Some(s) = stages {
                    s.normalize_scored.add(pairs.len() as u64);
                }
                lookup.stages = stages_owned;
                return Ok(());
            }
        }
        // Cold path: the collect timer spans the whole of retrieval +
        // inline LM scoring + dedup/rank/truncate (the nested retrieval
        // runs detached, so `lookup_encode_us`/`lookup_walk_us` sample
        // direct Look Up calls only).
        let _t = stages.map(|s| s.normalize_collect_us.start_timer());
        let retrieval = LookupParams::new(params.k, params.d);
        let walked = for_each_hit(db, token, retrieval, lookup, |_, rec, distance| {
            if !rec.is_english {
                return;
            }
            // The reference lowercases the raw surface form with
            // `to_ascii_lowercase`; for ASCII tokens that equals the
            // record's precomputed Unicode fold, so borrow it.
            let word: Cow<'d, str> = if rec.token.is_ascii() {
                Cow::Borrowed(rec.folded.as_str())
            } else {
                Cow::Owned(rec.token.to_ascii_lowercase())
            };
            let coherency = self.lm.coherency_cached(&word, left, right, lm_cache);
            let prior = self.lm.unigram_log_prob(&word);
            let score =
                coherency - params.edit_penalty * distance as f64 + params.prior_weight * prior;
            buf.push(ScoredCand {
                word,
                score,
                distance,
            });
        });
        // Reattach before the `?` so an error cannot leave the caller's
        // scratch permanently detached.
        lookup.stages = stages_owned;
        walked?;
        if let Some(s) = lookup.stages.as_deref() {
            // Every surviving hit above was scored exactly once.
            s.normalize_scored.add(buf.len() as u64);
        }
        // Same dictionary word may appear under several surface forms;
        // keep the best-scoring instance of each. Candidates tied on
        // (word, score) are interchangeable — equal word implies equal
        // fold, distance, and score — so visiting in bucket order rather
        // than hit-sorted order cannot change the surviving values.
        buf.sort_by(|a, b| {
            a.word.cmp(&b.word).then(
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        buf.dedup_by(|a, b| a.word == b.word);
        // Memoize the deduped pre-truncation pairs: truncation depends on
        // the context-sensitive score order, so it must not be cached.
        if let Some(cache) = cache {
            let pairs: Vec<(String, usize)> = buf
                .iter()
                .map(|c| (c.word.clone().into_owned(), c.distance))
                .collect();
            cache.put(token, params.k, params.d, std::sync::Arc::new(pairs));
        }
        buf.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        buf.truncate(params.max_candidates);
        Ok(())
    }

    /// The scratch-threading core of [`Normalizer::normalize_token`].
    #[allow(clippy::too_many_arguments)]
    fn normalize_token_with<'d, S: TokenStore>(
        &self,
        db: &'d S,
        token: &str,
        left: &[&str],
        right: &[&str],
        params: NormalizeParams,
        scratch: &mut NormalizeScratch,
        buf: &mut Vec<ScoredCand<'d>>,
        cache: Option<&dyn CandidateCache>,
    ) -> Result<Option<(String, f64, Vec<Candidate>)>> {
        if Self::is_clean(token) {
            return Ok(None);
        }
        self.collect_candidates(db, token, left, right, params, scratch, buf, cache)?;
        if buf.is_empty() {
            return Ok(None);
        }
        let cands: Vec<Candidate> = buf
            .iter()
            .map(|c| Candidate {
                word: c.word.clone().into_owned(),
                score: c.score,
                distance: c.distance,
            })
            .collect();
        let replacement = cands[0].word.clone();
        let score = cands[0].score;
        // Move the list out — the winner is duplicated once (the returned
        // replacement string), not the whole candidate vector.
        Ok(Some((replacement, score, cands)))
    }

    /// Normalize one token given its context; `None` when the token is
    /// clean or no candidate exists.
    pub fn normalize_token<S: TokenStore>(
        &self,
        db: &S,
        token: &str,
        left: &[&str],
        right: &[&str],
        params: NormalizeParams,
    ) -> Result<Option<(String, f64, Vec<Candidate>)>> {
        // No up-front level validation: like the seed, clean tokens stand
        // (`Ok(None)`) before the retrieval path ever inspects `params.k`.
        SHARED_NORM_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.lm_cache.begin();
            let mut buf: Vec<ScoredCand> = Vec::new();
            self.normalize_token_with(db, token, left, right, params, scratch, &mut buf, None)
        })
    }

    /// Normalize a whole text (§III-C, Fig. 2).
    ///
    /// Uses a thread-local [`NormalizeScratch`]; callers managing their
    /// own scratch (bulk endpoints, benches) should call
    /// [`Normalizer::normalize_with`].
    pub fn normalize<S: TokenStore>(
        &self,
        db: &S,
        text: &str,
        params: NormalizeParams,
    ) -> Result<NormalizationResult> {
        SHARED_NORM_SCRATCH
            .with(|scratch| self.normalize_with(db, text, params, &mut scratch.borrow_mut()))
    }

    /// [`Normalizer::normalize`] with caller-provided scratch buffers. One
    /// scratch serves the whole text: candidate retrieval reuses the
    /// Look Up buffers per token and LM coherency probes are memoized
    /// across tokens (fresh memo generation per text).
    pub fn normalize_with<S: TokenStore>(
        &self,
        db: &S,
        text: &str,
        params: NormalizeParams,
        scratch: &mut NormalizeScratch,
    ) -> Result<NormalizationResult> {
        self.normalize_inner(db, text, params, scratch, None)
    }

    /// [`Normalizer::normalize_with`] consulting a cross-text
    /// [`CandidateCache`] for per-token retrieval. Byte-identical to the
    /// uncached path: only the context-independent `(word, distance)`
    /// pairs are memoized; coherency scoring, ranking, and truncation run
    /// fresh against each token's context.
    pub fn normalize_cached<S: TokenStore>(
        &self,
        db: &S,
        text: &str,
        params: NormalizeParams,
        scratch: &mut NormalizeScratch,
        cache: &dyn CandidateCache,
    ) -> Result<NormalizationResult> {
        self.normalize_inner(db, text, params, scratch, Some(cache))
    }

    fn normalize_inner<S: TokenStore>(
        &self,
        db: &S,
        text: &str,
        params: NormalizeParams,
        scratch: &mut NormalizeScratch,
        cache: Option<&dyn CandidateCache>,
    ) -> Result<NormalizationResult> {
        TokenDatabase::check_level(params.k)?;
        scratch.lm_cache.begin();
        // Zero-copy tokenization: word texts are slices of `text`, and the
        // lowercased context words borrow them unless a fold is needed.
        let word_spans: Vec<std::ops::Range<usize>> = tokenize_spans(text)
            .into_iter()
            .filter(|t| t.is_word())
            .map(|t| t.span)
            .collect();
        let words_lower: Vec<Cow<str>> = word_spans
            .iter()
            .map(|span| {
                let w = &text[span.clone()];
                if w.bytes().any(|b| b.is_ascii_uppercase()) {
                    Cow::Owned(w.to_ascii_lowercase())
                } else {
                    Cow::Borrowed(w)
                }
            })
            .collect();
        let word_refs: Vec<&str> = words_lower.iter().map(|s| s.as_ref()).collect();

        let mut buf: Vec<ScoredCand> = Vec::new();
        let mut corrections: Vec<Correction> = Vec::new();
        let mut replacements: Vec<(std::ops::Range<usize>, String)> = Vec::new();
        for (wi, span) in word_spans.iter().enumerate() {
            let token = &text[span.clone()];
            let left_start = wi.saturating_sub(2);
            let left = &word_refs[left_start..wi];
            let right_end = (wi + 3).min(word_refs.len());
            let right = &word_refs[wi + 1..right_end];
            if let Some((replacement, score, candidates)) =
                self.normalize_token_with(db, token, left, right, params, scratch, &mut buf, cache)?
            {
                replacements.push((span.clone(), replacement.clone()));
                corrections.push(Correction {
                    original: token.to_string(),
                    replacement,
                    span: span.clone(),
                    score,
                    candidates,
                });
            }
        }
        Ok(NormalizationResult {
            text: splice(text, &replacements),
            corrections,
        })
    }

    /// The pre-optimization Normalization, kept as the differential-testing
    /// and benchmarking reference. It reproduces the seed pipeline
    /// faithfully: every out-of-dictionary token re-runs an allocating
    /// [`look_up`] (cloning each hit), lowercases every candidate into a
    /// fresh `String`, re-probes the LM for every candidate of every
    /// token, and clones the winning candidate list on return. Must return
    /// byte-identical results to [`Normalizer::normalize`].
    pub fn normalize_naive(
        &self,
        db: &TokenDatabase,
        text: &str,
        params: NormalizeParams,
    ) -> Result<NormalizationResult> {
        TokenDatabase::check_level(params.k)?;
        let tokens = tokenize(text);
        let word_positions: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_word())
            .map(|(i, _)| i)
            .collect();
        let words_lower: Vec<String> = word_positions
            .iter()
            .map(|&i| tokens[i].text.to_ascii_lowercase())
            .collect();

        let mut corrections: Vec<Correction> = Vec::new();
        let mut replacements: Vec<(std::ops::Range<usize>, String)> = Vec::new();
        for (wi, &ti) in word_positions.iter().enumerate() {
            let tok: &Token = &tokens[ti];
            let left_start = wi.saturating_sub(2);
            let left: Vec<&str> = words_lower[left_start..wi]
                .iter()
                .map(|s| s.as_str())
                .collect();
            let right_end = (wi + 3).min(words_lower.len());
            let right: Vec<&str> = words_lower[wi + 1..right_end]
                .iter()
                .map(|s| s.as_str())
                .collect();
            if let Some((replacement, score, candidates)) =
                self.normalize_token_naive(db, &tok.text, &left, &right, params)?
            {
                replacements.push((tok.span.clone(), replacement.clone()));
                corrections.push(Correction {
                    original: tok.text.clone(),
                    replacement,
                    span: tok.span.clone(),
                    score,
                    candidates,
                });
            }
        }
        Ok(NormalizationResult {
            text: splice(text, &replacements),
            corrections,
        })
    }

    /// The seed's per-token path: allocating candidate retrieval and the
    /// double-clone return (`best.word.clone()` + `cands.clone()`).
    fn normalize_token_naive(
        &self,
        db: &TokenDatabase,
        token: &str,
        left: &[&str],
        right: &[&str],
        params: NormalizeParams,
    ) -> Result<Option<(String, f64, Vec<Candidate>)>> {
        if Self::is_clean(token) {
            return Ok(None);
        }
        let hits = look_up(db, token, LookupParams::new(params.k, params.d))?;
        let mut cands: Vec<Candidate> = hits
            .into_iter()
            .filter(|h| h.is_english)
            .map(|h| {
                let word = h.token.to_ascii_lowercase();
                let coherency = self.lm.coherency(&word, left, right);
                let prior = self.lm.unigram_log_prob(&word);
                let score = coherency - params.edit_penalty * h.distance as f64
                    + params.prior_weight * prior;
                Candidate {
                    word,
                    score,
                    distance: h.distance,
                }
            })
            .collect();
        cands.sort_by(|a, b| {
            a.word.cmp(&b.word).then(
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        cands.dedup_by(|a, b| a.word == b.word);
        cands.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        cands.truncate(params.max_candidates);
        match cands.first() {
            None => Ok(None),
            Some(best) => Ok(Some((best.word.clone(), best.score, cands.clone()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_lm::NgramLm;

    fn fixture() -> (TokenDatabase, NgramLm) {
        let mut db = TokenDatabase::with_lexicon();
        // Observed perturbations so buckets exist for them too.
        for s in [
            "the demokRATs rallied",
            "vacc1ne mandate pushback",
            "thinking about suic1de",
        ] {
            db.ingest_text(s);
        }
        let lm = NgramLm::train([
            "biden belongs to the democrats",
            "the democrats proposed the bill",
            "the republicans blocked the bill",
            "the vaccine mandate was announced",
            "people discussed the vaccine mandate online",
            "suicide prevention is important",
            "thinking about suicide is a warning sign",
            "the dirty campaign continued",
        ]);
        (db, lm)
    }

    #[test]
    fn paper_figure2_style_normalization() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let out = n
            .normalize(
                &db,
                "Biden belongs to the demokRATs",
                NormalizeParams::default(),
            )
            .unwrap();
        assert_eq!(out.text, "Biden belongs to the democrats");
        assert_eq!(out.corrections.len(), 1);
        let c = &out.corrections[0];
        assert_eq!(c.original, "demokRATs");
        assert_eq!(c.replacement, "democrats");
        assert!(!c.candidates.is_empty());
        assert_eq!(c.candidates[0].word, "democrats");
    }

    #[test]
    fn leet_and_ambiguous_tokens_normalize() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let out = n
            .normalize(
                &db,
                "the vacc1ne mandate was announced",
                NormalizeParams::default(),
            )
            .unwrap();
        assert_eq!(out.text, "the vaccine mandate was announced");

        let out = n
            .normalize(&db, "thinking about suic1de", NormalizeParams::default())
            .unwrap();
        assert_eq!(out.text, "thinking about suicide");
    }

    #[test]
    fn clean_text_untouched() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let text = "the democrats proposed the bill";
        let out = n.normalize(&db, text, NormalizeParams::default()).unwrap();
        assert_eq!(out.text, text);
        assert!(!out.changed());
    }

    #[test]
    fn unknown_gibberish_left_alone() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let out = n
            .normalize(&db, "qzxqzx happened", NormalizeParams::default())
            .unwrap();
        assert!(out.text.contains("qzxqzx"), "no candidates → unchanged");
    }

    #[test]
    fn context_breaks_ties() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        // "vacc1ne" in a mandate context → vaccine (not some other v-word).
        let (replacement, _, cands) = n
            .normalize_token(
                &db,
                "vacc1ne",
                &["the"],
                &["mandate", "was"],
                NormalizeParams::default(),
            )
            .unwrap()
            .unwrap();
        assert_eq!(replacement, "vaccine");
        assert!(!cands.is_empty());
    }

    #[test]
    fn candidate_list_is_ranked_and_deduped() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let (_, _, cands) = n
            .normalize_token(&db, "demokRATs", &["the"], &[], NormalizeParams::default())
            .unwrap()
            .unwrap();
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score, "ranked descending");
        }
        let words: std::collections::HashSet<&str> =
            cands.iter().map(|c| c.word.as_str()).collect();
        assert_eq!(words.len(), cands.len(), "no duplicate words");
    }

    #[test]
    fn spans_point_into_original_text() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let text = "so the demokRATs and the vacc1ne push";
        let out = n.normalize(&db, text, NormalizeParams::default()).unwrap();
        assert_eq!(out.corrections.len(), 2);
        for c in &out.corrections {
            assert_eq!(&text[c.span.clone()], c.original);
        }
    }

    #[test]
    fn invalid_level_is_error() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let params = NormalizeParams {
            k: 7,
            ..NormalizeParams::default()
        };
        assert!(n.normalize(&db, "whatever", params).is_err());
        assert!(n.normalize_naive(&db, "whatever", params).is_err());
        assert!(n
            .normalize_token(&db, "whatever", &[], &[], params)
            .is_err());
        // Seed behavior: a clean token stands before the retrieval path
        // ever validates the level.
        assert!(n
            .normalize_token(&db, "the", &[], &[], params)
            .unwrap()
            .is_none());
    }

    #[test]
    fn max_candidates_truncates() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let params = NormalizeParams {
            max_candidates: 1,
            ..NormalizeParams::default()
        };
        if let Some((_, _, cands)) = n
            .normalize_token(&db, "demokRATs", &["the"], &[], params)
            .unwrap()
        {
            assert_eq!(cands.len(), 1);
        }
    }

    #[test]
    fn optimized_matches_naive_on_fixture_texts() {
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let mut scratch = NormalizeScratch::new();
        for text in [
            "Biden belongs to the demokRATs",
            "the vacc1ne mandate was announced and the vacc1ne again",
            "so the demokRATs and the vacc1ne push",
            "clean text stays clean",
            "qzxqzx happened 🙂 ok",
            "",
            "suic1de suic1de suic1de",
        ] {
            for params in [
                NormalizeParams::default(),
                NormalizeParams {
                    max_candidates: 1,
                    ..NormalizeParams::default()
                },
                NormalizeParams {
                    k: 0,
                    d: 2,
                    ..NormalizeParams::default()
                },
            ] {
                let fast = n.normalize_with(&db, text, params, &mut scratch).unwrap();
                let slow = n.normalize_naive(&db, text, params).unwrap();
                assert_eq!(fast, slow, "text {text:?} params {params:?}");
            }
        }
    }

    #[test]
    fn cached_normalization_is_byte_identical_and_memoizes_negatives() {
        use std::collections::HashMap;
        #[derive(Default)]
        struct MapCache {
            map: RefCell<HashMap<(String, usize, usize), CandidatePairs>>,
            gets: std::cell::Cell<u64>,
            hits: std::cell::Cell<u64>,
        }
        impl CandidateCache for MapCache {
            fn get(&self, token: &str, k: usize, d: usize) -> Option<CandidatePairs> {
                self.gets.set(self.gets.get() + 1);
                let got = self.map.borrow().get(&(token.to_string(), k, d)).cloned();
                if got.is_some() {
                    self.hits.set(self.hits.get() + 1);
                }
                got
            }
            fn put(&self, token: &str, k: usize, d: usize, pairs: CandidatePairs) {
                self.map
                    .borrow_mut()
                    .insert((token.to_string(), k, d), pairs);
            }
        }

        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let cache = MapCache::default();
        let mut scratch = NormalizeScratch::new();
        let texts = [
            "Biden belongs to the demokRATs",
            "so the demokRATs and the vacc1ne push",
            "qzxqzx happened",
            "qzxqzx happened again with the demokRATs",
        ];
        for text in texts {
            let uncached = n
                .normalize_with(&db, text, NormalizeParams::default(), &mut scratch)
                .unwrap();
            let cold = n
                .normalize_cached(&db, text, NormalizeParams::default(), &mut scratch, &cache)
                .unwrap();
            let warm = n
                .normalize_cached(&db, text, NormalizeParams::default(), &mut scratch, &cache)
                .unwrap();
            assert_eq!(cold, uncached, "cold pass byte-identical: {text:?}");
            assert_eq!(warm, uncached, "warm pass byte-identical: {text:?}");
        }
        assert!(cache.hits.get() > 0, "repeat tokens served from the memo");
        // The no-candidate gibberish token is negatively cached: an empty
        // entry exists and its repeat retrieval was a hit, not a re-walk.
        let neg = cache
            .map
            .borrow()
            .get(&("qzxqzx".to_string(), 1, 3))
            .cloned()
            .expect("negative entry present");
        assert!(neg.is_empty());
    }

    #[test]
    fn scratch_reuse_across_texts_is_clean() {
        // The same scratch (lookup buffers + LM memo generations) across
        // many different texts must never leak state between texts.
        let (db, lm) = fixture();
        let n = Normalizer::new(&lm);
        let mut scratch = NormalizeScratch::new();
        let texts = [
            "the demokRATs won",
            "the vacc1ne mandate",
            "thinking about suic1de",
            "the demokRATs won",
        ];
        let isolated: Vec<NormalizationResult> = texts
            .iter()
            .map(|t| {
                let mut fresh = NormalizeScratch::new();
                n.normalize_with(&db, t, NormalizeParams::default(), &mut fresh)
                    .unwrap()
            })
            .collect();
        let reused: Vec<NormalizationResult> = texts
            .iter()
            .map(|t| {
                n.normalize_with(&db, t, NormalizeParams::default(), &mut scratch)
                    .unwrap()
            })
            .collect();
        assert_eq!(isolated, reused);
        assert_eq!(isolated[0], isolated[3], "same text → same result");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cryptext_lm::NgramLm;
    use proptest::prelude::*;

    /// A corpus alphabet that exercises leet fan-out (1 ↔ i/l, @ ↔ a) and
    /// real dictionary collisions against the seeded lexicon.
    fn word() -> impl Strategy<Value = String> {
        "[a-e1@]{2,8}"
    }

    fn text_strategy() -> impl Strategy<Value = String> {
        proptest::collection::vec(word(), 0..10).prop_map(|ws| ws.join(" "))
    }

    proptest! {
        /// Differential pin: the zero-copy scratch-reusing Normalization
        /// returns byte-identical results — de-perturbed text, corrections
        /// (spans, scores), and full candidate ordering — to the kept
        /// naive reference, across random corpora, texts, and parameters.
        #[test]
        fn optimized_equals_naive_reference(
            corpus in proptest::collection::vec(text_strategy(), 1..8),
            lm_texts in proptest::collection::vec(text_strategy(), 1..6),
            texts in proptest::collection::vec(text_strategy(), 1..6),
            k in 0usize..=2,
            d in 1usize..=3,
            max_candidates in 1usize..=8,
        ) {
            let mut db = TokenDatabase::with_lexicon();
            for t in &corpus {
                db.ingest_text(t);
            }
            let lm = NgramLm::train(lm_texts.iter().map(|s| s.as_str()));
            let n = Normalizer::new(&lm);
            let params = NormalizeParams {
                k,
                d,
                max_candidates,
                ..NormalizeParams::default()
            };
            let mut scratch = NormalizeScratch::new();
            // One cross-text candidate memo shared by every cached pass:
            // later texts hit entries populated by earlier ones, and the
            // result must stay pinned to the naive reference regardless.
            #[derive(Default)]
            struct MapCache(
                std::cell::RefCell<
                    std::collections::HashMap<(String, usize, usize), CandidatePairs>,
                >,
            );
            impl CandidateCache for MapCache {
                fn get(&self, token: &str, k: usize, d: usize) -> Option<CandidatePairs> {
                    self.0.borrow().get(&(token.to_string(), k, d)).cloned()
                }
                fn put(&self, token: &str, k: usize, d: usize, pairs: CandidatePairs) {
                    self.0.borrow_mut().insert((token.to_string(), k, d), pairs);
                }
            }
            let cache = MapCache::default();
            for text in &texts {
                let fast = n.normalize_with(&db, text, params, &mut scratch).unwrap();
                let slow = n.normalize_naive(&db, text, params).unwrap();
                prop_assert_eq!(&fast, &slow, "text {:?} params {:?}", text, params);
                // The thread-local convenience wrapper agrees too.
                let wrapped = n.normalize(&db, text, params).unwrap();
                prop_assert_eq!(&wrapped, &slow);
                // Candidate-cached passes (cold fill, then warm replay)
                // agree byte-for-byte with the reference.
                let cold = n
                    .normalize_cached(&db, text, params, &mut scratch, &cache)
                    .unwrap();
                prop_assert_eq!(&cold, &slow);
                let warm = n
                    .normalize_cached(&db, text, params, &mut scratch, &cache)
                    .unwrap();
                prop_assert_eq!(&warm, &slow);
            }
        }

        /// Corrections always carry their winner as the first candidate,
        /// and every candidate respects the retrieval bound `d`.
        #[test]
        fn corrections_are_internally_consistent(
            corpus in proptest::collection::vec(text_strategy(), 1..6),
            text in text_strategy(),
        ) {
            let mut db = TokenDatabase::with_lexicon();
            for t in &corpus {
                db.ingest_text(t);
            }
            let lm = NgramLm::train(corpus.iter().map(|s| s.as_str()));
            let n = Normalizer::new(&lm);
            let params = NormalizeParams::default();
            let out = n.normalize(&db, &text, params).unwrap();
            for c in &out.corrections {
                prop_assert!(!c.candidates.is_empty());
                prop_assert_eq!(&c.replacement, &c.candidates[0].word);
                prop_assert_eq!(c.score.to_bits(), c.candidates[0].score.to_bits());
                for cand in &c.candidates {
                    prop_assert!(cand.distance <= params.d);
                }
                prop_assert_eq!(&text[c.span.clone()], c.original.as_str());
            }
        }
    }
}
