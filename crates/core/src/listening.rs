//! Social Listening (§III-E): monitoring perturbation usage online.
//!
//! Given a watch-word, CrypText expands it into its known perturbations
//! (Look Up), searches the platform for each spelling, and aggregates
//! per-term frequency and sentiment into timeline buckets — the data
//! behind the paper's interactive timeline charts.

use cryptext_common::{Result, TimeRange};
use cryptext_corpus::Sentiment;
use cryptext_stream::{Post, SearchQuery, SocialPlatform};

use crate::database::TokenDatabase;
use crate::lookup::{look_up, LookupParams};
use crate::store::TokenStore;

/// Configuration of a listening pass.
#[derive(Debug, Clone, Copy)]
pub struct ListeningConfig {
    /// Look Up parameters for watch-word expansion.
    pub lookup: LookupParams,
    /// Number of timeline buckets.
    pub buckets: usize,
    /// Include the watch-word itself as a tracked term.
    pub include_base: bool,
}

impl Default for ListeningConfig {
    fn default() -> Self {
        ListeningConfig {
            lookup: LookupParams::paper_default().observed(),
            buckets: 10,
            include_base: true,
        }
    }
}

/// Timeline of one tracked spelling.
#[derive(Debug, Clone, PartialEq)]
pub struct TermTimeline {
    /// The tracked spelling.
    pub term: String,
    /// Is it a perturbation (differs case-folded from the watch-word)?
    pub is_perturbation: bool,
    /// Total matching posts.
    pub total: usize,
    /// Posts per time bucket.
    pub counts: Vec<usize>,
    /// Fraction of negative posts per bucket (0 for empty buckets).
    pub negative_fraction: Vec<f64>,
}

impl TermTimeline {
    /// Overall negative fraction across all buckets.
    pub fn overall_negative_fraction(&self) -> f64 {
        let total_posts: usize = self.counts.iter().sum();
        if total_posts == 0 {
            return 0.0;
        }
        let negatives: f64 = self
            .counts
            .iter()
            .zip(&self.negative_fraction)
            .map(|(&c, &f)| c as f64 * f)
            .sum();
        negatives / total_posts as f64
    }
}

impl TermTimeline {
    /// Activity growth: posts in the second half of the window divided by
    /// posts in the first half (`+1` smoothing so fresh terms with an
    /// empty first half still compare). Values above 1 mean accelerating
    /// usage.
    pub fn growth_ratio(&self) -> f64 {
        let mid = self.counts.len() / 2;
        let first: usize = self.counts[..mid].iter().sum();
        let second: usize = self.counts[mid..].iter().sum();
        (second as f64 + 1.0) / (first as f64 + 1.0)
    }
}

/// The full report for one watch-word.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchReport {
    /// The watched base word.
    pub watchword: String,
    /// Per-spelling timelines, base word first, then perturbations by
    /// descending total.
    pub terms: Vec<TermTimeline>,
    /// The time range the buckets partition.
    pub range: TimeRange,
}

impl WatchReport {
    /// Sum of posts matched across all tracked spellings.
    pub fn total_posts(&self) -> usize {
        self.terms.iter().map(|t| t.total).sum()
    }

    /// Timelines of perturbed spellings only.
    pub fn perturbation_terms(&self) -> impl Iterator<Item = &TermTimeline> {
        self.terms.iter().filter(|t| t.is_perturbation)
    }

    /// The §III-E gatekeeper signal: perturbed spellings whose usage is
    /// accelerating — at least `min_total` posts overall and a
    /// [`growth_ratio`](TermTimeline::growth_ratio) of at least `factor`.
    /// Sorted by growth, fastest first. These are the evasive spellings a
    /// moderation team should add to its filters *now*.
    pub fn emerging_perturbations(&self, factor: f64, min_total: usize) -> Vec<&TermTimeline> {
        let mut out: Vec<&TermTimeline> = self
            .perturbation_terms()
            .filter(|t| t.total >= min_total && t.growth_ratio() >= factor)
            .collect();
        out.sort_by(|a, b| {
            b.growth_ratio()
                .partial_cmp(&a.growth_ratio())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.term.cmp(&b.term))
        });
        out
    }
}

/// The Social Listening engine, generic over the storage backend.
pub struct SocialListener<'a, S: TokenStore = TokenDatabase> {
    db: &'a S,
}

impl<'a, S: TokenStore> SocialListener<'a, S> {
    /// Build over a token store.
    pub fn new(db: &'a S) -> Self {
        SocialListener { db }
    }

    /// Expand a watch-word into the query set of spellings: the word
    /// itself (if configured) plus every known perturbation.
    ///
    /// Spellings that differ only by case are collapsed to one term:
    /// platform search is case-insensitive, so `demoCRATs` and `democrats`
    /// retrieve identical result sets.
    pub fn expand(&self, word: &str, config: &ListeningConfig) -> Result<Vec<String>> {
        let hits = look_up(self.db, word, config.lookup)?;
        let mut terms: Vec<String> = Vec::with_capacity(hits.len() + 1);
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        if config.include_base {
            terms.push(word.to_string());
            seen.insert(word.to_lowercase());
        }
        for h in hits {
            if seen.insert(h.token.to_lowercase()) {
                terms.push(h.token);
            }
        }
        Ok(terms)
    }

    /// Watch `word` over `platform` using gold sentiment labels.
    pub fn watch(
        &self,
        platform: &SocialPlatform,
        word: &str,
        config: &ListeningConfig,
    ) -> Result<WatchReport> {
        self.watch_with_scorer(platform, word, config, |p| p.sentiment)
    }

    /// Watch with a custom sentiment scorer (e.g. the trained classifier —
    /// production would not have gold labels).
    pub fn watch_with_scorer(
        &self,
        platform: &SocialPlatform,
        word: &str,
        config: &ListeningConfig,
        scorer: impl Fn(&Post) -> Sentiment,
    ) -> Result<WatchReport> {
        let range = platform.time_range().unwrap_or(TimeRange::new(0, 1));
        let n_buckets = config.buckets.max(1);
        let terms = self.expand(word, config)?;

        let mut timelines: Vec<TermTimeline> = Vec::with_capacity(terms.len());
        for term in terms {
            let results = platform.search(&SearchQuery::keyword(term.clone()));
            let mut counts = vec![0usize; n_buckets];
            let mut negatives = vec![0usize; n_buckets];
            for post in &results.posts {
                if let Some(b) = range.bucket_of(post.created_at, n_buckets) {
                    counts[b] += 1;
                    if scorer(post) == Sentiment::Negative {
                        negatives[b] += 1;
                    }
                }
            }
            let negative_fraction: Vec<f64> = counts
                .iter()
                .zip(&negatives)
                .map(|(&c, &n)| if c == 0 { 0.0 } else { n as f64 / c as f64 })
                .collect();
            timelines.push(TermTimeline {
                is_perturbation: !term.eq_ignore_ascii_case(word),
                term,
                total: results.total,
                counts,
                negative_fraction,
            });
        }
        // Base first, then perturbations by descending volume.
        timelines.sort_by(|a, b| {
            a.is_perturbation
                .cmp(&b.is_perturbation)
                .then(b.total.cmp(&a.total))
                .then(a.term.cmp(&b.term))
        });
        Ok(WatchReport {
            watchword: word.to_string(),
            terms: timelines,
            range,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_stream::StreamConfig;

    fn fixture() -> (TokenDatabase, SocialPlatform) {
        let platform = SocialPlatform::simulate(StreamConfig {
            n_posts: 1_500,
            seed: 11,
            ..StreamConfig::default()
        });
        // Build the database from the same feed (as the crawler would).
        let mut db = TokenDatabase::in_memory();
        for post in platform.posts() {
            db.ingest_text(&post.text);
        }
        (db, platform)
    }

    #[test]
    fn expand_includes_base_and_perturbations() {
        let (db, _) = fixture();
        let listener = SocialListener::new(&db);
        let terms = listener
            .expand("vaccine", &ListeningConfig::default())
            .unwrap();
        assert_eq!(terms[0], "vaccine");
        assert!(terms.len() > 1, "perturbations found: {terms:?}");
        let set: std::collections::HashSet<&String> = terms.iter().collect();
        assert_eq!(set.len(), terms.len(), "no duplicates");
    }

    #[test]
    fn watch_produces_consistent_buckets() {
        let (db, platform) = fixture();
        let listener = SocialListener::new(&db);
        let report = listener
            .watch(&platform, "vaccine", &ListeningConfig::default())
            .unwrap();
        assert_eq!(report.watchword, "vaccine");
        assert!(!report.terms.is_empty());
        for t in &report.terms {
            assert_eq!(t.counts.len(), 10);
            assert_eq!(t.negative_fraction.len(), 10);
            assert_eq!(t.counts.iter().sum::<usize>(), t.total);
            for &f in &t.negative_fraction {
                assert!((0.0..=1.0).contains(&f));
            }
        }
        // Base term is listed first and is not a perturbation.
        assert!(!report.terms[0].is_perturbation);
        assert!(report.total_posts() > 0);
    }

    #[test]
    fn perturbation_terms_skew_negative() {
        // The §III-B/§III-E regularity: perturbed spellings carry more
        // negative sentiment than the clean spelling.
        let (db, platform) = fixture();
        let listener = SocialListener::new(&db);
        let mut base_neg = Vec::new();
        let mut pert_neg = Vec::new();
        for word in ["vaccine", "democrats", "republicans"] {
            let report = listener
                .watch(&platform, word, &ListeningConfig::default())
                .unwrap();
            let base = &report.terms[0];
            if base.total > 10 {
                base_neg.push(base.overall_negative_fraction());
            }
            for t in report.perturbation_terms() {
                if t.total > 0 {
                    pert_neg.push((t.overall_negative_fraction(), t.total));
                }
            }
        }
        let base_avg = base_neg.iter().sum::<f64>() / base_neg.len() as f64;
        let pert_total: usize = pert_neg.iter().map(|(_, n)| n).sum();
        let pert_avg = pert_neg.iter().map(|(f, n)| f * *n as f64).sum::<f64>() / pert_total as f64;
        assert!(
            pert_avg > base_avg,
            "perturbed spellings more negative: {pert_avg:.2} vs {base_avg:.2}"
        );
    }

    #[test]
    fn custom_scorer_is_used() {
        let (db, platform) = fixture();
        let listener = SocialListener::new(&db);
        // A scorer that calls everything negative.
        let report = listener
            .watch_with_scorer(&platform, "vaccine", &ListeningConfig::default(), |_| {
                Sentiment::Negative
            })
            .unwrap();
        for t in &report.terms {
            for (i, &c) in t.counts.iter().enumerate() {
                if c > 0 {
                    assert_eq!(t.negative_fraction[i], 1.0);
                }
            }
        }
    }

    #[test]
    fn unknown_watchword_yields_base_only() {
        let (db, platform) = fixture();
        let listener = SocialListener::new(&db);
        let report = listener
            .watch(&platform, "qqqqq", &ListeningConfig::default())
            .unwrap();
        assert_eq!(report.terms.len(), 1);
        assert_eq!(report.terms[0].total, 0);
    }

    #[test]
    fn growth_ratio_shapes() {
        let grow = TermTimeline {
            term: "vacc1ne".into(),
            is_perturbation: true,
            total: 12,
            counts: vec![1, 1, 4, 6],
            negative_fraction: vec![1.0; 4],
        };
        assert!(grow.growth_ratio() > 3.0, "{}", grow.growth_ratio());
        let fade = TermTimeline {
            term: "old".into(),
            is_perturbation: true,
            total: 12,
            counts: vec![6, 4, 1, 1],
            negative_fraction: vec![1.0; 4],
        };
        assert!(fade.growth_ratio() < 0.5);
        let flat = TermTimeline {
            term: "flat".into(),
            is_perturbation: true,
            total: 8,
            counts: vec![2, 2, 2, 2],
            negative_fraction: vec![0.0; 4],
        };
        assert!((flat.growth_ratio() - 1.0).abs() < 0.01);
    }

    #[test]
    fn emerging_filters_and_sorts() {
        let mk = |term: &str, counts: Vec<usize>, is_perturbation: bool| TermTimeline {
            term: term.into(),
            is_perturbation,
            total: counts.iter().sum(),
            negative_fraction: vec![0.5; counts.len()],
            counts,
        };
        let report = WatchReport {
            watchword: "vaccine".into(),
            terms: vec![
                mk("vaccine", vec![50, 50, 50, 50], false),
                mk("vacc1ne", vec![0, 1, 5, 10], true),
                mk("va-ccine", vec![0, 0, 2, 3], true),
                mk("fading", vec![9, 8, 0, 0], true),
                mk("tiny", vec![0, 0, 1, 0], true),
            ],
            range: TimeRange::new(0, 100),
        };
        let emerging = report.emerging_perturbations(2.0, 3);
        let names: Vec<&str> = emerging.iter().map(|t| t.term.as_str()).collect();
        // vacc1ne (ratio 8) before va-ccine (ratio 6); base word, fading
        // and below-floor terms excluded.
        assert_eq!(names, vec!["vacc1ne", "va-ccine"]);
    }

    #[test]
    fn emerging_over_simulated_feed_does_not_flag_base() {
        let (db, platform) = fixture();
        let listener = SocialListener::new(&db);
        let report = listener
            .watch(&platform, "vaccine", &ListeningConfig::default())
            .unwrap();
        for t in report.emerging_perturbations(1.5, 2) {
            assert!(t.is_perturbation);
            assert!(t.total >= 2);
        }
    }

    #[test]
    fn bucket_count_configurable() {
        let (db, platform) = fixture();
        let listener = SocialListener::new(&db);
        let config = ListeningConfig {
            buckets: 4,
            ..ListeningConfig::default()
        };
        let report = listener.watch(&platform, "vaccine", &config).unwrap();
        assert!(report.terms.iter().all(|t| t.counts.len() == 4));
    }
}
