//! # cryptext-ml
//!
//! Lexical text classifiers — CrypText's stand-ins for the black-box NLP
//! APIs evaluated in Fig. 4 of the paper (Perspective toxicity, Google
//! Cloud sentiment and text categorization).
//!
//! The paper's experiment measures how classifiers *trained on clean text*
//! degrade when inputs carry human-written perturbations: perturbed tokens
//! fall out of the model's lexical vocabulary, evidence mass vanishes, and
//! accuracy slides toward the majority baseline. Locally-trained
//! bag-of-words models reproduce exactly that mechanism, so the *shape* of
//! Fig. 4 (monotone degradation, ~10-point drop for toxicity at r = 25%)
//! is recoverable without network APIs.
//!
//! Two model families:
//!
//! * [`NaiveBayes`] — multinomial NB with add-α smoothing over raw token
//!   counts; the primary "API" models.
//! * [`LogisticRegression`] — hashed-feature one-vs-rest SGD; the ablation
//!   comparator.

#![warn(missing_docs)]

pub mod features;
pub mod logreg;
pub mod metrics;
pub mod nb;
pub mod split;

pub use logreg::LogisticRegression;
pub use metrics::{accuracy, confusion_matrix, f1_macro, precision_recall_f1};
pub use nb::NaiveBayes;
pub use split::train_test_split;

/// A trained text classifier mapping a document to a class index.
pub trait Classifier {
    /// Predict the class of one document.
    fn predict(&self, text: &str) -> usize;

    /// Predict a batch (default: map over [`Classifier::predict`]).
    fn predict_batch(&self, texts: &[String]) -> Vec<usize> {
        texts.iter().map(|t| self.predict(t)).collect()
    }

    /// Number of classes.
    fn num_classes(&self) -> usize;
}

/// A labelled training/evaluation example.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Raw document text.
    pub text: String,
    /// Class index (dense, `0..num_classes`).
    pub label: usize,
}

impl Example {
    /// Convenience constructor.
    pub fn new(text: impl Into<String>, label: usize) -> Self {
        Example {
            text: text.into(),
            label,
        }
    }
}

/// Tokenize a document for feature extraction: lowercased word tokens from
/// the social-media tokenizer. Centralized so NB, logreg and callers agree.
pub fn feature_tokens(text: &str) -> Vec<String> {
    cryptext_tokenizer::words(text)
        .into_iter()
        .map(|w| w.to_ascii_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_tokens_lowercase_words_only() {
        let toks = feature_tokens("The demoCRATs won! :) #midterms");
        assert_eq!(toks, vec!["the", "democrats", "won"]);
    }

    #[test]
    fn example_constructor() {
        let e = Example::new("hi", 1);
        assert_eq!(e.text, "hi");
        assert_eq!(e.label, 1);
    }
}
