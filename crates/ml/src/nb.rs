//! Multinomial Naive Bayes.

use cryptext_common::hash::FxHashMap;

use crate::{feature_tokens, Classifier, Example};

/// Multinomial Naive Bayes with add-α smoothing.
///
/// Stores per-class token counts; prediction scores
/// `log P(c) + Σ_t log P(t | c)` with unseen-token mass
/// `α / (N_c + α·|V|)`. Ties break toward the lower class index for
/// determinism.
#[derive(Debug)]
pub struct NaiveBayes {
    classes: usize,
    alpha: f64,
    log_priors: Vec<f64>,
    token_counts: Vec<FxHashMap<String, u64>>,
    class_totals: Vec<u64>,
    vocab_size: usize,
}

impl NaiveBayes {
    /// Train on `examples` with `classes` classes and smoothing `alpha`.
    ///
    /// # Panics
    /// Panics if an example's label is `>= classes` or `examples` is empty.
    pub fn train(examples: &[Example], classes: usize, alpha: f64) -> Self {
        assert!(!examples.is_empty(), "cannot train on an empty set");
        assert!(classes >= 2, "need at least two classes");
        let mut class_docs = vec![0u64; classes];
        let mut token_counts: Vec<FxHashMap<String, u64>> =
            (0..classes).map(|_| FxHashMap::default()).collect();
        let mut class_totals = vec![0u64; classes];
        let mut vocab: std::collections::HashSet<String> = std::collections::HashSet::new();

        for ex in examples {
            assert!(ex.label < classes, "label {} out of range", ex.label);
            class_docs[ex.label] += 1;
            for tok in feature_tokens(&ex.text) {
                *token_counts[ex.label].entry(tok.clone()).or_insert(0) += 1;
                class_totals[ex.label] += 1;
                vocab.insert(tok);
            }
        }

        let n_docs = examples.len() as f64;
        let log_priors = class_docs
            .iter()
            .map(|&d| (((d as f64) + alpha) / (n_docs + alpha * classes as f64)).ln())
            .collect();

        NaiveBayes {
            classes,
            alpha,
            log_priors,
            token_counts,
            class_totals,
            vocab_size: vocab.len().max(1),
        }
    }

    /// Per-class log joint scores for a document (unnormalized posteriors).
    pub fn scores(&self, text: &str) -> Vec<f64> {
        let tokens = feature_tokens(text);
        (0..self.classes)
            .map(|c| {
                let denom = self.class_totals[c] as f64 + self.alpha * self.vocab_size as f64;
                let mut score = self.log_priors[c];
                for tok in &tokens {
                    let count = self.token_counts[c].get(tok).copied().unwrap_or(0);
                    score += ((count as f64 + self.alpha) / denom).ln();
                }
                score
            })
            .collect()
    }

    /// Posterior probabilities via soft-max of the joint scores.
    pub fn predict_proba(&self, text: &str) -> Vec<f64> {
        let scores = self.scores(text);
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / total).collect()
    }

    /// Does the model's vocabulary contain `token` in any class?
    pub fn knows_token(&self, token: &str) -> bool {
        let t = token.to_ascii_lowercase();
        self.token_counts.iter().any(|m| m.contains_key(&t))
    }

    /// Distinct vocabulary size observed at training time.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }
}

impl Classifier for NaiveBayes {
    fn predict(&self, text: &str) -> usize {
        let scores = self.scores(text);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = i;
            }
        }
        best
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toxic_training() -> Vec<Example> {
        let toxic = [
            "you are a stupid idiot loser",
            "shut up you pathetic trash",
            "everyone hates you idiot",
            "you disgusting stupid clown",
            "what a worthless loser take",
        ];
        let clean = [
            "what a lovely day for a walk",
            "the game last night was great fun",
            "thanks for sharing this helpful guide",
            "i really enjoyed the concert yesterday",
            "the new library opened downtown today",
        ];
        toxic
            .iter()
            .map(|t| Example::new(*t, 1))
            .chain(clean.iter().map(|t| Example::new(*t, 0)))
            .collect()
    }

    #[test]
    fn separates_toxic_from_clean() {
        let nb = NaiveBayes::train(&toxic_training(), 2, 1.0);
        assert_eq!(nb.predict("you stupid idiot"), 1);
        assert_eq!(nb.predict("lovely concert last night"), 0);
    }

    #[test]
    fn perturbed_tokens_lose_evidence() {
        let nb = NaiveBayes::train(&toxic_training(), 2, 1.0);
        let clean_conf = nb.predict_proba("you are a stupid idiot")[1];
        let perturbed_conf = nb.predict_proba("you are a stup1d 1d1ot")[1];
        assert!(
            perturbed_conf < clean_conf,
            "OOV perturbations weaken toxicity evidence: {perturbed_conf} vs {clean_conf}"
        );
        assert!(!nb.knows_token("stup1d"));
        assert!(nb.knows_token("STUPID"), "vocabulary probe is case-folded");
    }

    #[test]
    fn proba_sums_to_one() {
        let nb = NaiveBayes::train(&toxic_training(), 2, 1.0);
        for text in ["anything at all", "", "stupid great"] {
            let p = nb.predict_proba(text);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{p:?}");
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn empty_text_falls_back_to_prior() {
        let mut examples = toxic_training();
        // Skew priors: 3 extra clean docs.
        examples.push(Example::new("more clean text here", 0));
        examples.push(Example::new("additional harmless words", 0));
        examples.push(Example::new("yet another benign document", 0));
        let nb = NaiveBayes::train(&examples, 2, 1.0);
        assert_eq!(nb.predict(""), 0, "majority prior wins on empty input");
    }

    #[test]
    fn multiclass_topics() {
        let examples = vec![
            Example::new("election vote senate policy", 0),
            Example::new("ballot president congress law", 0),
            Example::new("vaccine doses hospital nurse", 1),
            Example::new("clinic doctor vaccine health", 1),
            Example::new("match goal striker league", 2),
            Example::new("season playoff coach team", 2),
        ];
        let nb = NaiveBayes::train(&examples, 3, 1.0);
        assert_eq!(nb.predict("the senate passed the law"), 0);
        assert_eq!(nb.predict("the doctor gave a vaccine"), 1);
        assert_eq!(nb.predict("the coach praised the striker"), 2);
        assert_eq!(nb.num_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        NaiveBayes::train(&[Example::new("x", 5)], 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        NaiveBayes::train(&[], 2, 1.0);
    }
}
