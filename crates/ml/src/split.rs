//! Deterministic train/test splitting.

use cryptext_common::SplitMix64;

use crate::Example;

/// Shuffle `examples` with `seed` and split so that roughly
/// `test_fraction` of them land in the test set (at least one in each side
/// when `examples.len() >= 2`). Returns `(train, test)`.
pub fn train_test_split(
    examples: &[Example],
    test_fraction: f64,
    seed: u64,
) -> (Vec<Example>, Vec<Example>) {
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut rng = SplitMix64::new(seed);
    rng.shuffle(&mut order);

    let mut n_test = ((examples.len() as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
    if examples.len() >= 2 {
        n_test = n_test.clamp(1, examples.len() - 1);
    } else {
        n_test = n_test.min(examples.len());
    }

    let test: Vec<Example> = order[..n_test]
        .iter()
        .map(|&i| examples[i].clone())
        .collect();
    let train: Vec<Example> = order[n_test..]
        .iter()
        .map(|&i| examples[i].clone())
        .collect();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(n: usize) -> Vec<Example> {
        (0..n)
            .map(|i| Example::new(format!("doc {i}"), i % 2))
            .collect()
    }

    #[test]
    fn partitions_without_loss_or_overlap() {
        let data = make(20);
        let (train, test) = train_test_split(&data, 0.25, 7);
        assert_eq!(train.len() + test.len(), 20);
        assert_eq!(test.len(), 5);
        let mut all: Vec<&str> = train.iter().chain(&test).map(|e| e.text.as_str()).collect();
        all.sort_unstable();
        let mut expected: Vec<String> = (0..20).map(|i| format!("doc {i}")).collect();
        expected.sort();
        assert_eq!(all, expected.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let data = make(30);
        let (a_train, a_test) = train_test_split(&data, 0.3, 1);
        let (b_train, b_test) = train_test_split(&data, 0.3, 1);
        assert_eq!(a_train, b_train);
        assert_eq!(a_test, b_test);
        let (c_train, _) = train_test_split(&data, 0.3, 2);
        assert_ne!(a_train, c_train, "different seed, different shuffle");
    }

    #[test]
    fn both_sides_nonempty_for_extreme_fractions() {
        let data = make(10);
        let (train, test) = train_test_split(&data, 0.0, 3);
        assert_eq!(test.len(), 1, "clamped up");
        assert_eq!(train.len(), 9);
        let (train, test) = train_test_split(&data, 1.0, 3);
        assert_eq!(train.len(), 1, "clamped down");
        assert_eq!(test.len(), 9);
    }

    #[test]
    fn degenerate_inputs() {
        let (train, test) = train_test_split(&[], 0.5, 1);
        assert!(train.is_empty() && test.is_empty());
        let one = make(1);
        let (train, test) = train_test_split(&one, 0.5, 1);
        assert_eq!(train.len() + test.len(), 1);
    }
}
