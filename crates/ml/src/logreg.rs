//! One-vs-rest logistic regression on hashed features.

use cryptext_common::SplitMix64;

use crate::features::{HashingVectorizer, SparseVec};
use crate::{Classifier, Example};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LogRegConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization strength (applied per update, scaled by lr).
    pub l2: f32,
    /// Shuffle seed for determinism.
    pub seed: u64,
    /// Feature extraction.
    pub vectorizer: HashingVectorizer,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            epochs: 12,
            lr: 0.5,
            l2: 1e-5,
            seed: 42,
            vectorizer: HashingVectorizer::default(),
        }
    }
}

/// One-vs-rest logistic regression. For `C` classes, trains `C` binary
/// sigmoid classifiers; prediction takes the arg-max margin.
#[derive(Debug)]
pub struct LogisticRegression {
    weights: Vec<Vec<f32>>, // [class][bucket]
    bias: Vec<f32>,
    classes: usize,
    vectorizer: HashingVectorizer,
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Train on `examples` with `classes` classes.
    ///
    /// # Panics
    /// Panics on empty input or out-of-range labels.
    pub fn train(examples: &[Example], classes: usize, config: LogRegConfig) -> Self {
        assert!(!examples.is_empty(), "cannot train on an empty set");
        assert!(classes >= 2, "need at least two classes");
        for ex in examples {
            assert!(ex.label < classes, "label {} out of range", ex.label);
        }
        let dim = config.vectorizer.dim as usize;
        let mut weights = vec![vec![0.0f32; dim]; classes];
        let mut bias = vec![0.0f32; classes];

        // Pre-vectorize once.
        let vectors: Vec<(SparseVec, usize)> = examples
            .iter()
            .map(|e| (config.vectorizer.transform(&e.text), e.label))
            .collect();

        let mut order: Vec<usize> = (0..vectors.len()).collect();
        let mut rng = SplitMix64::new(config.seed);
        let decay_base = config.lr;
        for epoch in 0..config.epochs {
            rng.shuffle(&mut order);
            let lr = decay_base / (1.0 + epoch as f32 * 0.5);
            for &i in &order {
                let (x, label) = &vectors[i];
                for c in 0..classes {
                    let y = if *label == c { 1.0f32 } else { 0.0 };
                    let mut z = bias[c];
                    for &(bucket, v) in x {
                        z += weights[c][bucket as usize] * v;
                    }
                    let err = sigmoid(z) - y;
                    let w = &mut weights[c];
                    for &(bucket, v) in x {
                        let b = bucket as usize;
                        w[b] -= lr * (err * v + config.l2 * w[b]);
                    }
                    bias[c] -= lr * err;
                }
            }
        }
        LogisticRegression {
            weights,
            bias,
            classes,
            vectorizer: config.vectorizer,
        }
    }

    /// Per-class margins (pre-sigmoid scores).
    pub fn margins(&self, text: &str) -> Vec<f32> {
        let x = self.vectorizer.transform(text);
        (0..self.classes)
            .map(|c| {
                let mut z = self.bias[c];
                for &(bucket, v) in &x {
                    z += self.weights[c][bucket as usize] * v;
                }
                z
            })
            .collect()
    }

    /// Sigmoid probability for each one-vs-rest head (not normalized across
    /// classes).
    pub fn predict_proba(&self, text: &str) -> Vec<f32> {
        self.margins(text).into_iter().map(sigmoid).collect()
    }
}

impl Classifier for LogisticRegression {
    fn predict(&self, text: &str) -> usize {
        let margins = self.margins(text);
        let mut best = 0usize;
        for (i, &m) in margins.iter().enumerate() {
            if m > margins[best] {
                best = i;
            }
        }
        best
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentiment_training() -> Vec<Example> {
        let pos = [
            "i love this wonderful amazing product",
            "great fantastic experience highly recommend",
            "beautiful excellent quality very happy",
            "best purchase ever absolutely delighted",
            "superb friendly service loved everything",
        ];
        let neg = [
            "terrible awful experience never again",
            "horrible waste of money very disappointed",
            "worst broken useless garbage product",
            "bad rude service i hate this",
            "dreadful poor quality totally regret",
        ];
        pos.iter()
            .map(|t| Example::new(*t, 1))
            .chain(neg.iter().map(|t| Example::new(*t, 0)))
            .collect()
    }

    #[test]
    fn separates_sentiment() {
        let lr = LogisticRegression::train(&sentiment_training(), 2, LogRegConfig::default());
        assert_eq!(lr.predict("wonderful amazing quality"), 1);
        assert_eq!(lr.predict("awful broken garbage"), 0);
    }

    #[test]
    fn training_data_fits() {
        let data = sentiment_training();
        let lr = LogisticRegression::train(&data, 2, LogRegConfig::default());
        let correct = data
            .iter()
            .filter(|e| lr.predict(&e.text) == e.label)
            .count();
        assert_eq!(correct, data.len(), "linearly separable set fits exactly");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = sentiment_training();
        let a = LogisticRegression::train(&data, 2, LogRegConfig::default());
        let b = LogisticRegression::train(&data, 2, LogRegConfig::default());
        for text in ["great product", "terrible thing", "neutral words here"] {
            assert_eq!(a.margins(text), b.margins(text));
        }
    }

    #[test]
    fn proba_in_unit_interval() {
        let lr = LogisticRegression::train(&sentiment_training(), 2, LogRegConfig::default());
        for p in lr.predict_proba("some mixed great terrible text") {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let examples = vec![
            Example::new("election vote senate policy congress", 0),
            Example::new("ballot president congress law senate", 0),
            Example::new("vaccine doses hospital nurse clinic", 1),
            Example::new("clinic doctor vaccine health doses", 1),
            Example::new("match goal striker league playoff", 2),
            Example::new("season playoff coach team striker", 2),
        ];
        let lr = LogisticRegression::train(&examples, 3, LogRegConfig::default());
        assert_eq!(lr.predict("senate vote on the law"), 0);
        assert_eq!(lr.predict("nurse at the clinic vaccine"), 1);
        assert_eq!(lr.predict("the team won the playoff"), 2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        LogisticRegression::train(&[], 2, LogRegConfig::default());
    }
}
