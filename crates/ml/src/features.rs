//! Feature hashing for the linear models.
//!
//! The hashing trick maps token strings to a fixed-dimension sparse vector
//! without storing a vocabulary: `dim` buckets, each token contributing
//! weight 1 to `fx_hash(token) % dim`, plus optional word bigrams for a
//! little context sensitivity.

use cryptext_common::hash::fx_hash_str;

use crate::feature_tokens;

/// A sparse feature vector: sorted `(bucket, value)` pairs.
pub type SparseVec = Vec<(u32, f32)>;

/// Hashing vectorizer with unigram (and optionally bigram) features,
/// L2-normalized so documents of different lengths are comparable.
#[derive(Debug, Clone, Copy)]
pub struct HashingVectorizer {
    /// Number of hash buckets (power of two recommended).
    pub dim: u32,
    /// Also hash adjacent word pairs.
    pub bigrams: bool,
}

impl Default for HashingVectorizer {
    fn default() -> Self {
        HashingVectorizer {
            dim: 1 << 16,
            bigrams: true,
        }
    }
}

impl HashingVectorizer {
    /// Vectorize one document.
    pub fn transform(&self, text: &str) -> SparseVec {
        let tokens = feature_tokens(text);
        let mut counts: std::collections::BTreeMap<u32, f32> = std::collections::BTreeMap::new();
        for t in &tokens {
            let bucket = (fx_hash_str(t) % self.dim as u64) as u32;
            *counts.entry(bucket).or_insert(0.0) += 1.0;
        }
        if self.bigrams {
            for pair in tokens.windows(2) {
                let joined = format!("{}\u{1}{}", pair[0], pair[1]);
                let bucket = (fx_hash_str(&joined) % self.dim as u64) as u32;
                *counts.entry(bucket).or_insert(0.0) += 1.0;
            }
        }
        // L2 normalize.
        let norm: f32 = counts.values().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in counts.values_mut() {
                *v /= norm;
            }
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let v = HashingVectorizer::default();
        let a = v.transform("the cat sat on the mat");
        let b = v.transform("the cat sat on the mat");
        assert_eq!(a, b);
        assert!(a.iter().all(|(bucket, _)| *bucket < v.dim));
    }

    #[test]
    fn l2_normalized() {
        let v = HashingVectorizer::default();
        let a = v.transform("a b c d");
        let norm: f32 = a.iter().map(|(_, x)| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5, "{norm}");
    }

    #[test]
    fn empty_text_is_empty_vector() {
        let v = HashingVectorizer::default();
        assert!(v.transform("").is_empty());
        assert!(v.transform("!!! ...").is_empty());
    }

    #[test]
    fn bigrams_add_features() {
        let uni = HashingVectorizer {
            dim: 1 << 16,
            bigrams: false,
        };
        let bi = HashingVectorizer {
            dim: 1 << 16,
            bigrams: true,
        };
        let a = uni.transform("red green blue");
        let b = bi.transform("red green blue");
        assert!(b.len() > a.len(), "{} vs {}", b.len(), a.len());
    }

    #[test]
    fn buckets_sorted_for_dot_products() {
        let v = HashingVectorizer::default();
        let a = v.transform("z y x w v u t s r q p");
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
