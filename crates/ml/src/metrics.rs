//! Evaluation metrics for the robustness experiments.

/// Fraction of positions where `y_true[i] == y_pred[i]`.
///
/// # Panics
/// Panics when lengths differ.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    correct as f64 / y_true.len() as f64
}

/// `matrix[t][p]` = number of examples with true class `t` predicted `p`.
pub fn confusion_matrix(n_classes: usize, y_true: &[usize], y_pred: &[usize]) -> Vec<Vec<usize>> {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        m[t][p] += 1;
    }
    m
}

/// Per-class precision, recall and F1 from a confusion matrix.
/// Classes with no predictions (or no support) score 0 on the undefined
/// component, following the common "zero-division = 0" convention.
pub fn precision_recall_f1(matrix: &[Vec<usize>]) -> Vec<(f64, f64, f64)> {
    let n = matrix.len();
    (0..n)
        .map(|c| {
            let tp = matrix[c][c] as f64;
            let fp: f64 = (0..n)
                .filter(|&t| t != c)
                .map(|t| matrix[t][c] as f64)
                .sum();
            let fn_: f64 = (0..n)
                .filter(|&p| p != c)
                .map(|p| matrix[c][p] as f64)
                .sum();
            let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
            let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            (precision, recall, f1)
        })
        .collect()
}

/// Macro-averaged F1 across classes.
pub fn f1_macro(n_classes: usize, y_true: &[usize], y_pred: &[usize]) -> f64 {
    let m = confusion_matrix(n_classes, y_true, y_pred);
    let prf = precision_recall_f1(&m);
    prf.iter().map(|(_, _, f1)| f1).sum::<f64>() / n_classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_counts_everything() {
        let m = confusion_matrix(2, &[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0]);
        assert_eq!(m, vec![vec![1, 1], vec![1, 2]]);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn prf_perfect_predictions() {
        let m = confusion_matrix(2, &[0, 1, 0, 1], &[0, 1, 0, 1]);
        for (p, r, f1) in precision_recall_f1(&m) {
            assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
        }
    }

    #[test]
    fn prf_known_values() {
        // Class 0: tp=1 fp=1 fn=1 → p=0.5 r=0.5 f1=0.5
        let m = confusion_matrix(2, &[0, 0, 1, 1], &[0, 1, 0, 1]);
        let prf = precision_recall_f1(&m);
        assert_eq!(prf[0], (0.5, 0.5, 0.5));
        assert_eq!(prf[1], (0.5, 0.5, 0.5));
    }

    #[test]
    fn prf_degenerate_class_is_zero() {
        // Class 1 never predicted and never true.
        let m = confusion_matrix(2, &[0, 0], &[0, 0]);
        let prf = precision_recall_f1(&m);
        assert_eq!(prf[1], (0.0, 0.0, 0.0));
    }

    #[test]
    fn f1_macro_mixes_classes() {
        let f = f1_macro(2, &[0, 0, 1, 1], &[0, 0, 1, 0]);
        // class0: p=2/3 r=1 f1=0.8; class1: p=1 r=0.5 f1=2/3.
        assert!((f - (0.8 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Accuracy is always in [0, 1] and equals the trace ratio of the
        /// confusion matrix.
        #[test]
        fn accuracy_matches_confusion_trace(
            labels in proptest::collection::vec((0usize..4, 0usize..4), 1..80)
        ) {
            let (y_true, y_pred): (Vec<usize>, Vec<usize>) = labels.into_iter().unzip();
            let acc = accuracy(&y_true, &y_pred);
            prop_assert!((0.0..=1.0).contains(&acc));
            let m = confusion_matrix(4, &y_true, &y_pred);
            let trace: usize = (0..4).map(|i| m[i][i]).sum();
            prop_assert!((acc - trace as f64 / y_true.len() as f64).abs() < 1e-12);
            // Row sums reproduce class supports.
            for (c, row_counts) in m.iter().enumerate() {
                let support = y_true.iter().filter(|&&t| t == c).count();
                let row: usize = row_counts.iter().sum();
                prop_assert_eq!(row, support);
            }
        }

        /// All P/R/F1 components live in [0, 1].
        #[test]
        fn prf_bounded(
            labels in proptest::collection::vec((0usize..3, 0usize..3), 1..60)
        ) {
            let (y_true, y_pred): (Vec<usize>, Vec<usize>) = labels.into_iter().unzip();
            let m = confusion_matrix(3, &y_true, &y_pred);
            for (p, r, f1) in precision_recall_f1(&m) {
                prop_assert!((0.0..=1.0).contains(&p));
                prop_assert!((0.0..=1.0).contains(&r));
                prop_assert!((0.0..=1.0).contains(&f1));
            }
        }
    }
}
