//! Western emoticon recognition.
//!
//! The paper (§II-C) observes that humans perturb words *with* emoticons;
//! the tokenizer must keep them intact (and out of word tokens) so the
//! database is not polluted with `:)`-suffixed pseudo-tokens.

/// Known emoticons, longest-first so greedy matching prefers `:-)` over
/// `:-` + `)`. Kept small and high-precision: false emoticon positives
/// would eat word characters.
pub const EMOTICONS: &[&str] = &[
    ":'-(", ":'-)", ":-))", ">:-(", ":'(", ":')", ":-)", ":-(", ":-D", ":-P", ":-/", ":-|", ":-O",
    ":-*", ";-)", ">:(", "=))", ":)", ":(", ":D", ":P", ":/", ":|", ":O", ":*", ";)", ";(", "=)",
    "=(", "<3", "</3", "^_^", "-_-", "o_O", "O_o", "T_T", "xD", "XD",
];

/// Is `s` exactly an emoticon?
pub fn is_emoticon(s: &str) -> bool {
    EMOTICONS.contains(&s)
}

/// If `rest` *starts with* an emoticon followed by a boundary (whitespace,
/// end, or punctuation that cannot extend the emoticon), return its byte
/// length.
pub fn match_emoticon_at(rest: &str) -> Option<usize> {
    for e in EMOTICONS {
        if let Some(after) = rest.strip_prefix(e) {
            let boundary = match after.chars().next() {
                None => true,
                Some(c) => {
                    c.is_whitespace()
                        || c.is_alphanumeric() && !e.ends_with(|x: char| x.is_alphanumeric())
                }
            };
            // Also accept further punctuation like "." after the emoticon.
            let boundary = boundary
                || after
                    .chars()
                    .next()
                    .is_some_and(|c| matches!(c, '.' | ',' | '!' | '?'));
            if boundary {
                return Some(e.len());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_membership() {
        assert!(is_emoticon(":)"));
        assert!(is_emoticon("<3"));
        assert!(is_emoticon("^_^"));
        assert!(!is_emoticon(":"));
        assert!(!is_emoticon("hello"));
    }

    #[test]
    fn longest_match_wins() {
        // ":-)" must match as a whole, not ":-" noise.
        assert_eq!(match_emoticon_at(":-) ok"), Some(3));
        assert_eq!(match_emoticon_at(":) ok"), Some(2));
        assert_eq!(match_emoticon_at("</3"), Some(3));
    }

    #[test]
    fn match_at_end_of_input() {
        assert_eq!(match_emoticon_at(":("), Some(2));
        assert_eq!(match_emoticon_at("<3"), Some(2));
    }

    #[test]
    fn match_followed_by_punctuation() {
        assert_eq!(match_emoticon_at(":)."), Some(2));
        assert_eq!(match_emoticon_at(":(!"), Some(2));
    }

    #[test]
    fn no_match_inside_words() {
        assert_eq!(match_emoticon_at("no emoticon"), None);
        assert_eq!(match_emoticon_at("x"), None);
    }

    #[test]
    fn list_has_no_duplicates() {
        let set: std::collections::HashSet<_> = EMOTICONS.iter().collect();
        assert_eq!(set.len(), EMOTICONS.len());
    }

    #[test]
    fn longer_emoticons_listed_before_their_prefixes() {
        // Greedy scan correctness depends on order: any emoticon that is a
        // strict prefix of another must come later in the list.
        for (i, a) in EMOTICONS.iter().enumerate() {
            for b in &EMOTICONS[..i] {
                assert!(
                    !a.starts_with(b) || a == b,
                    "earlier {b} is a prefix of {a} (index {i}); greedy scan would stop short"
                );
            }
        }
    }
}
