//! # cryptext-tokenizer
//!
//! A social-media-aware tokenizer for CrypText.
//!
//! The paper's database is curated by tokenizing raw Reddit/Twitter text
//! (§III-A), which is full of constructs a whitespace tokenizer mangles:
//! mentions (`@user`), hashtags (`#vaxx`), URLs, emoticons (`:)`), and —
//! crucially — perturbed words whose *interior* contains symbols that look
//! like punctuation (`suic1de`, `republic@@ns`, `mus-lim`, `$lut`).
//!
//! Every token carries its byte span in the original text, so the
//! Perturbation and Normalization functions can splice replacements back
//! without disturbing anything else (Figs. 2 and 3 highlight changed
//! tokens in place).

#![warn(missing_docs)]

pub mod emoticons;

use std::ops::Range;

pub use emoticons::{is_emoticon, match_emoticon_at};

/// What kind of surface form a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A word, possibly perturbed (may contain digits/symbols inside).
    Word,
    /// A pure number (no letter interpretation attempted).
    Number,
    /// `@handle` — platform mention; never perturbed or normalized.
    Mention,
    /// `#topic` — hashtag; the tag body may still be analyzed.
    Hashtag,
    /// URL (`http://…`, `https://…`, `www.…`).
    Url,
    /// Western emoticon like `:)` or `<3`.
    Emoticon,
    /// Anything else: punctuation and stray symbols, one char each.
    Punct,
}

/// A token plus its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The exact source slice (owned copy).
    pub text: String,
    /// Classification.
    pub kind: TokenKind,
    /// Byte range in the original input; `input[span.clone()] == text`.
    pub span: Range<usize>,
}

impl Token {
    /// Is this a word-like token eligible for perturbation/normalization?
    #[inline]
    pub fn is_word(&self) -> bool {
        self.kind == TokenKind::Word
    }
}

/// A token's classification and byte span without an owned text copy — the
/// zero-copy sibling of [`Token`] produced by [`tokenize_spans`]. The text
/// is always `&input[span.clone()]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenSpan {
    /// Classification.
    pub kind: TokenKind,
    /// Byte range in the original input.
    pub span: Range<usize>,
}

impl TokenSpan {
    /// Is this a word-like token eligible for perturbation/normalization?
    #[inline]
    pub fn is_word(&self) -> bool {
        self.kind == TokenKind::Word
    }

    /// The token's text, borrowed from the input it was scanned from.
    #[inline]
    pub fn text<'a>(&self, input: &'a str) -> &'a str {
        &input[self.span.clone()]
    }
}

/// Characters that may start or continue the *interior* of a word because
/// humans use them as letter stand-ins (`suic!de`, `cla$$`, `dem0cr@ts`)
/// or joiners (`mus-lim`, `don't`).
#[inline]
fn is_word_interior(c: char) -> bool {
    c.is_alphanumeric()
        || matches!(
            c,
            '\'' | '-' | '_' | '@' | '$' | '!' | '*' | '+' | '€' | '£' | '¢'
        )
        || cryptext_confusables::fold_char(c).is_some()
}

/// Characters a word may *begin* with: alphanumerics and the symbol
/// stand-ins, but not joiners (a leading `-` is punctuation).
#[inline]
fn is_word_start(c: char) -> bool {
    c.is_alphanumeric()
        || matches!(c, '$' | '!' | '*' | '+' | '€' | '£' | '¢')
        || cryptext_confusables::fold_char(c).is_some()
}

/// Trailing characters trimmed from word tokens: sentence punctuation that
/// also happens to be a word-interior symbol. `hello!!!` keeps only
/// `hello`; `suic!de` keeps its interior `!`.
#[inline]
fn is_trim_trailing(c: char) -> bool {
    matches!(c, '!' | '-' | '\'' | '_' | '+' | '*' | '.' | ',')
}

/// Tokenize `input` into classified, span-carrying tokens. Whitespace is
/// skipped; all other bytes belong to exactly one token, and spans are
/// strictly increasing.
pub fn tokenize(input: &str) -> Vec<Token> {
    tokenize_spans(input)
        .into_iter()
        .map(|t| Token {
            text: input[t.span.clone()].to_string(),
            kind: t.kind,
            span: t.span,
        })
        .collect()
}

/// [`tokenize`] without the per-token text copies: one `Vec` of spans, no
/// `String` allocations. The Normalization hot path reads token text
/// straight out of the input through [`TokenSpan::text`].
pub fn tokenize_spans(input: &str) -> Vec<TokenSpan> {
    let mut tokens = Vec::new();
    let bytes_len = input.len();
    let mut iter = input.char_indices().peekable();

    while let Some(&(start, c)) = iter.peek() {
        // Whitespace: skip.
        if c.is_whitespace() {
            iter.next();
            continue;
        }

        // URLs.
        if let Some(end) = match_url(input, start) {
            push_span(&mut tokens, start..end, TokenKind::Url);
            advance_to(&mut iter, end);
            continue;
        }

        // Emoticons (only at a non-word boundary position).
        let prev_is_word = input[..start]
            .chars()
            .next_back()
            .is_some_and(is_word_interior);
        if !prev_is_word {
            if let Some(len) = match_emoticon_at(&input[start..]) {
                push_span(&mut tokens, start..start + len, TokenKind::Emoticon);
                advance_to(&mut iter, start + len);
                continue;
            }
        }

        // Mentions and hashtags.
        if (c == '@' || c == '#') && !prev_is_word {
            let body_start = start + c.len_utf8();
            let body_end = scan_while(input, body_start, |c| c.is_alphanumeric() || c == '_');
            if body_end > body_start {
                let kind = if c == '@' {
                    TokenKind::Mention
                } else {
                    TokenKind::Hashtag
                };
                push_span(&mut tokens, start..body_end, kind);
                advance_to(&mut iter, body_end);
                continue;
            }
        }

        // Words (including perturbed forms) and numbers.
        if is_word_start(c) {
            let mut end = scan_while(input, start, is_word_interior);
            // Trim trailing sentence punctuation, but never below one char.
            while end > start {
                let last = input[start..end].chars().next_back().expect("non-empty");
                if is_trim_trailing(last) && end - last.len_utf8() > start {
                    end -= last.len_utf8();
                } else {
                    break;
                }
            }
            let text = &input[start..end];
            let kind = if text
                .chars()
                .all(|c| c.is_ascii_digit() || matches!(c, '.' | ','))
            {
                TokenKind::Number
            } else if text.chars().any(char::is_alphanumeric) {
                TokenKind::Word
            } else {
                // Symbol-only runs ("!!!", "$$") are punctuation, not words,
                // even though those symbols can stand in for letters inside
                // real words.
                TokenKind::Punct
            };
            push_span(&mut tokens, start..end, kind);
            advance_to(&mut iter, end);
            continue;
        }

        // Single punctuation char.
        let end = (start + c.len_utf8()).min(bytes_len);
        push_span(&mut tokens, start..end, TokenKind::Punct);
        iter.next();
    }
    tokens
}

/// Convenience: just the word tokens' texts, in order.
///
/// Runs on the zero-copy [`tokenize_spans`] path — the only allocations
/// are the returned `String`s; non-word tokens never materialize at all.
/// Callers that can consume borrowed text should prefer
/// [`word_spans`]/[`tokenize_spans`] directly.
pub fn words(input: &str) -> Vec<String> {
    word_spans(input).map(|w| w.to_string()).collect()
}

/// The word tokens' texts as borrowed slices of `input`, in order — the
/// allocation-free sibling of [`words`]. LM training interns straight from
/// these without ever owning a token.
pub fn word_spans(input: &str) -> impl Iterator<Item = &str> {
    tokenize_spans(input)
        .into_iter()
        .filter(|t| t.is_word())
        .map(move |t| &input[t.span])
}

/// Replace spans of `input` with new strings. `replacements` must be
/// non-overlapping; they are applied in span order regardless of input
/// order. Used by Perturbation/Normalization to splice corrected or
/// perturbed tokens back into the original text.
pub fn splice(input: &str, replacements: &[(Range<usize>, String)]) -> String {
    let mut sorted: Vec<&(Range<usize>, String)> = replacements.iter().collect();
    sorted.sort_by_key(|(r, _)| r.start);
    let mut out = String::with_capacity(input.len() + 16);
    let mut cursor = 0usize;
    for (range, replacement) in sorted {
        debug_assert!(range.start >= cursor, "overlapping replacement spans");
        out.push_str(&input[cursor..range.start]);
        out.push_str(replacement);
        cursor = range.end;
    }
    out.push_str(&input[cursor..]);
    out
}

fn push_span(tokens: &mut Vec<TokenSpan>, span: Range<usize>, kind: TokenKind) {
    tokens.push(TokenSpan { kind, span });
}

fn advance_to(iter: &mut std::iter::Peekable<std::str::CharIndices>, end: usize) {
    while let Some(&(i, _)) = iter.peek() {
        if i >= end {
            break;
        }
        iter.next();
    }
}

fn scan_while(input: &str, from: usize, pred: impl Fn(char) -> bool) -> usize {
    let mut end = from;
    for (i, c) in input[from..].char_indices() {
        if pred(c) {
            end = from + i + c.len_utf8();
        } else {
            break;
        }
    }
    end
}

fn match_url(input: &str, start: usize) -> Option<usize> {
    let rest = &input[start..];
    let prefix_len = if rest.starts_with("https://") || rest.starts_with("http://") {
        rest.find("://").expect("checked") + 3
    } else if rest.starts_with("www.") {
        4
    } else {
        return None;
    };
    let end = scan_while(input, start + prefix_len, |c| {
        !c.is_whitespace() && c != '"' && c != '<' && c != '>'
    });
    (end > start + prefix_len).then_some(end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<(String, TokenKind)> {
        tokenize(input)
            .into_iter()
            .map(|t| (t.text, t.kind))
            .collect()
    }

    #[test]
    fn spans_api_matches_owned_api() {
        for input in [
            "the dirty republicans",
            "@potus pushed #VaccineMandate again :) https://x.com",
            "stop it!!! suic!de really, now.",
            "dem0cr@ts and cla$$ 🙂 vacc1ne",
            "",
        ] {
            let owned = tokenize(input);
            let spans = tokenize_spans(input);
            assert_eq!(owned.len(), spans.len(), "{input:?}");
            for (o, s) in owned.iter().zip(&spans) {
                assert_eq!(o.kind, s.kind, "{input:?}");
                assert_eq!(o.span, s.span, "{input:?}");
                assert_eq!(o.text, s.text(input), "{input:?}");
                assert_eq!(o.is_word(), s.is_word());
            }
        }
    }

    #[test]
    fn plain_sentence() {
        let ts = kinds("the dirty republicans");
        assert_eq!(
            ts,
            vec![
                ("the".into(), TokenKind::Word),
                ("dirty".into(), TokenKind::Word),
                ("republicans".into(), TokenKind::Word),
            ]
        );
    }

    #[test]
    fn word_spans_borrow_and_match_words() {
        for input in [
            "@user check https://x.com the vaccine!! 123",
            "thinking about suic1de 🙂 ok",
            "dem0cr@ts and cla$$",
            "",
            "CASE MiXeD",
        ] {
            let borrowed: Vec<&str> = word_spans(input).collect();
            // Differential against the owned-Token tokenizer (not against
            // words(), which now delegates to word_spans itself).
            let reference: Vec<String> = tokenize(input)
                .into_iter()
                .filter(|t| t.is_word())
                .map(|t| t.text)
                .collect();
            assert_eq!(
                borrowed,
                reference.iter().map(String::as_str).collect::<Vec<_>>(),
                "word_spans ≡ owned-Token word texts on {input:?}"
            );
            // Genuinely zero-copy: every yielded slice points into `input`.
            for w in borrowed {
                let input_range = input.as_ptr() as usize..input.as_ptr() as usize + input.len();
                assert!(input_range.contains(&(w.as_ptr() as usize)));
            }
        }
    }

    #[test]
    fn perturbed_words_stay_whole() {
        assert_eq!(
            words("thinking about suic1de"),
            vec!["thinking", "about", "suic1de"]
        );
        assert_eq!(
            words("the republic@@ns lie"),
            vec!["the", "republic@@ns", "lie"]
        );
        assert_eq!(
            words("dem0cr@ts and cla$$"),
            vec!["dem0cr@ts", "and", "cla$$"]
        );
        assert_eq!(words("mus-lim ban"), vec!["mus-lim", "ban"]);
        assert_eq!(words("that is porrrrn"), vec!["that", "is", "porrrrn"]);
    }

    #[test]
    fn sentence_punctuation_trims_but_interior_stays() {
        assert_eq!(words("stop it!!!"), vec!["stop", "it"]);
        assert_eq!(words("suic!de"), vec!["suic!de"]);
        assert_eq!(words("really, now."), vec!["really", "now"]);
        // Trimmed punctuation becomes Punct tokens, preserving coverage.
        let ts = kinds("it!");
        assert_eq!(ts[0], ("it".into(), TokenKind::Word));
        assert_eq!(ts[1], ("!".into(), TokenKind::Punct));
    }

    #[test]
    fn mentions_and_hashtags() {
        let ts = kinds("@potus pushed #VaccineMandate again");
        assert_eq!(ts[0], ("@potus".into(), TokenKind::Mention));
        assert_eq!(ts[1], ("pushed".into(), TokenKind::Word));
        assert_eq!(ts[2], ("#VaccineMandate".into(), TokenKind::Hashtag));
    }

    #[test]
    fn at_inside_word_is_not_a_mention() {
        let ts = kinds("republic@@ns");
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].1, TokenKind::Word);
    }

    #[test]
    fn urls_are_single_tokens() {
        let ts = kinds("see https://example.com/a?b=1 now");
        assert_eq!(ts[1], ("https://example.com/a?b=1".into(), TokenKind::Url));
        let ts = kinds("visit www.example.org today");
        assert_eq!(ts[1], ("www.example.org".into(), TokenKind::Url));
    }

    #[test]
    fn bare_www_dot_is_not_url() {
        let ts = kinds("www. hello");
        assert_ne!(ts[0].1, TokenKind::Url);
    }

    #[test]
    fn emoticons_detected_at_boundaries() {
        let ts = kinds("sad :( but ok <3");
        assert!(ts
            .iter()
            .any(|(t, k)| t == ":(" && *k == TokenKind::Emoticon));
        assert!(ts
            .iter()
            .any(|(t, k)| t == "<3" && *k == TokenKind::Emoticon));
    }

    #[test]
    fn numbers_are_numbers() {
        let ts = kinds("in 2021, 67% were negative");
        assert!(ts
            .iter()
            .any(|(t, k)| t == "2021" && *k == TokenKind::Number));
        assert!(ts.iter().any(|(t, k)| t == "67" && *k == TokenKind::Number));
    }

    #[test]
    fn leet_number_words_are_words() {
        // Mixed letters+digits is a Word (perturbation candidate).
        let ts = kinds("suic1de h8 sp33ch");
        assert!(ts.iter().all(|(_, k)| *k == TokenKind::Word));
    }

    #[test]
    fn spans_match_source() {
        let input = "The democRATs… and RepubLIEcans!";
        for t in tokenize(input) {
            assert_eq!(
                &input[t.span.clone()],
                t.text,
                "span integrity for {:?}",
                t.text
            );
        }
    }

    #[test]
    fn spans_are_increasing_and_disjoint() {
        let input = "a b!! c@d.com #x :) www.e.f";
        let ts = tokenize(input);
        for w in ts.windows(2) {
            assert!(w[0].span.end <= w[1].span.start, "{:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n  ").is_empty());
    }

    #[test]
    fn unicode_text_tokenizes() {
        let ts = kinds("vãccine 😀 mandate");
        assert_eq!(ts[0], ("vãccine".into(), TokenKind::Word));
        assert!(ts.iter().any(|(t, _)| t == "mandate"));
    }

    #[test]
    fn apostrophe_words() {
        assert_eq!(words("don't can't y'all"), vec!["don't", "can't", "y'all"]);
    }

    #[test]
    fn splice_replaces_spans() {
        let input = "Biden belongs to the democrats";
        let ts = tokenize(input);
        let demo = ts.iter().find(|t| t.text == "democrats").unwrap();
        let out = splice(input, &[(demo.span.clone(), "demokRATs".to_string())]);
        assert_eq!(out, "Biden belongs to the demokRATs");
    }

    #[test]
    fn splice_multiple_out_of_order() {
        let input = "a b c";
        let ts = tokenize(input);
        let out = splice(
            input,
            &[
                (ts[2].span.clone(), "C".to_string()),
                (ts[0].span.clone(), "A".to_string()),
            ],
        );
        assert_eq!(out, "A b C");
    }

    #[test]
    fn splice_empty_replacements_is_identity() {
        assert_eq!(splice("unchanged", &[]), "unchanged");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every token's text is exactly the source slice at its span.
        #[test]
        fn span_integrity(input in "\\PC{0,60}") {
            for t in tokenize(&input) {
                prop_assert_eq!(&input[t.span.clone()], t.text.as_str());
            }
        }

        /// Spans never overlap and are sorted.
        #[test]
        fn spans_sorted_disjoint(input in "\\PC{0,60}") {
            let ts = tokenize(&input);
            for w in ts.windows(2) {
                prop_assert!(w[0].span.end <= w[1].span.start);
            }
        }

        /// Inter-token gaps contain only whitespace: tokenization covers
        /// every non-whitespace byte.
        #[test]
        fn full_coverage(input in "[a-z0-9 @#!.,$]{0,60}") {
            let ts = tokenize(&input);
            let mut cursor = 0usize;
            for t in &ts {
                prop_assert!(input[cursor..t.span.start].chars().all(char::is_whitespace),
                    "gap {:?} before {:?}", &input[cursor..t.span.start], t.text);
                cursor = t.span.end;
            }
            prop_assert!(input[cursor..].chars().all(char::is_whitespace));
        }

        /// Identity splice: replacing every token with itself reconstructs
        /// the input.
        #[test]
        fn identity_splice(input in "\\PC{0,60}") {
            let ts = tokenize(&input);
            let reps: Vec<_> = ts.iter().map(|t| (t.span.clone(), t.text.clone())).collect();
            prop_assert_eq!(splice(&input, &reps), input);
        }
    }
}
