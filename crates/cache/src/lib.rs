//! # cryptext-cache
//!
//! Sharded in-memory TTL + LRU cache — CrypText's Redis substitute.
//!
//! The paper (§III-F): *"Since some queries might take a longer time to
//! process, a Redis cache is adapted to temporarily store and re-use recent
//! queried results."* This crate provides that role in-process: the service
//! facade memoizes Look Up and Normalization results keyed by
//! `(function, token, k, d)`.
//!
//! Design notes:
//!
//! * **Sharding** — keys hash to one of `N` shards, each behind its own
//!   `parking_lot::Mutex`, so concurrent lookups on different tokens do not
//!   contend.
//! * **LRU** — every shard maintains a recency index (`BTreeMap<tick, key>`),
//!   giving `O(log n)` touch/evict without unsafe linked-list code.
//! * **TTL** — entries may carry a deadline from the injected
//!   [`Clock`](cryptext_common::Clock); expired entries are never returned
//!   and are reaped lazily on access plus explicitly via
//!   [`Cache::sweep_expired`]. A [`SimClock`](cryptext_common::SimClock)
//!   makes expiry fully deterministic in tests.
//! * **Statistics** — hits/misses/evictions/expirations are atomic counters;
//!   the architecture experiment (Fig. 5) reports the hit rate.

#![warn(missing_docs)]

pub mod store;

pub use store::{CacheStore, LruCacheStore, SharedCacheStore, StoreStats, SHARED_PUT_FAILPOINT};

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cryptext_common::hash::FxHashMap;
use cryptext_common::metrics::{Counter, MetricsRegistry};
use cryptext_common::{Clock, FxHasher, Timestamp};
use parking_lot::Mutex;

/// Configuration for a [`Cache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum number of live entries across all shards.
    pub capacity: usize,
    /// Default time-to-live applied by [`Cache::insert`]; `None` = no expiry.
    pub default_ttl_ms: Option<u64>,
    /// Number of shards (rounded up to a power of two, at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 10_000,
            default_ttl_ms: None,
            shards: 8,
        }
    }
}

/// Snapshot of cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Successful `get`s.
    pub hits: u64,
    /// Failed `get`s (absent or expired).
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed.
    pub expirations: u64,
    /// Total inserts (including overwrites).
    pub inserts: u64,
}

impl CacheStats {
    /// Hits / (hits + misses); 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    expires_at: Option<Timestamp>,
    tick: u64,
}

struct Shard<K, V> {
    map: FxHashMap<K, Entry<V>>,
    recency: BTreeMap<u64, K>,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new() -> Self {
        Shard {
            map: FxHashMap::default(),
            recency: BTreeMap::new(),
        }
    }
}

/// A thread-safe sharded LRU cache with optional per-entry TTL.
pub struct Cache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    shard_mask: usize,
    per_shard_capacity: usize,
    default_ttl_ms: Option<u64>,
    clock: Arc<dyn Clock>,
    tick: AtomicU64,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    expirations: Counter,
    inserts: Counter,
}

impl<K: Hash + Eq + Clone, V: Clone> Cache<K, V> {
    /// Build a cache from `config`, reading time from `clock`.
    pub fn new(config: CacheConfig, clock: Arc<dyn Clock>) -> Self {
        let shard_count = config.shards.max(1).next_power_of_two();
        let per_shard_capacity = config.capacity.div_ceil(shard_count).max(1);
        Cache {
            shards: (0..shard_count).map(|_| Mutex::new(Shard::new())).collect(),
            shard_mask: shard_count - 1,
            per_shard_capacity,
            default_ttl_ms: config.default_ttl_ms,
            clock,
            tick: AtomicU64::new(0),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            expirations: Counter::new(),
            inserts: Counter::new(),
        }
    }

    /// Convenience constructor with the system clock.
    pub fn with_system_clock(config: CacheConfig) -> Self {
        Cache::new(config, cryptext_common::system_clock())
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.shard_mask]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Insert with the configured default TTL.
    pub fn insert(&self, key: K, value: V) {
        self.insert_opt_ttl(key, value, self.default_ttl_ms);
    }

    /// Insert with an explicit TTL in milliseconds.
    pub fn insert_with_ttl(&self, key: K, value: V, ttl_ms: u64) {
        self.insert_opt_ttl(key, value, Some(ttl_ms));
    }

    /// Insert with an explicit optional TTL (`None` = immortal, bypassing
    /// the configured default).
    pub fn insert_opt_ttl(&self, key: K, value: V, ttl_ms: Option<u64>) {
        let now = self.clock.now();
        let expires_at = ttl_ms.map(|t| now.saturating_add(t));
        let tick = self.next_tick();
        let mut shard = self.shard_for(&key).lock();
        if let Some(old) = shard.map.remove(&key) {
            shard.recency.remove(&old.tick);
        }
        // At capacity: reap this shard's expired entries first so a dead
        // entry never forces a live one out. Only then fall back to LRU.
        if shard.map.len() >= self.per_shard_capacity {
            let dead: Vec<(u64, K)> = shard
                .map
                .iter()
                .filter(|(_, e)| e.expires_at.is_some_and(|t| t <= now))
                .map(|(k, e)| (e.tick, k.clone()))
                .collect();
            for (dead_tick, k) in dead {
                shard.map.remove(&k);
                shard.recency.remove(&dead_tick);
                self.expirations.inc();
            }
        }
        // Evict least-recently-used while still at capacity.
        while shard.map.len() >= self.per_shard_capacity {
            if let Some((&oldest_tick, _)) = shard.recency.iter().next() {
                if let Some(victim) = shard.recency.remove(&oldest_tick) {
                    shard.map.remove(&victim);
                    self.evictions.inc();
                }
            } else {
                break;
            }
        }
        shard.recency.insert(tick, key.clone());
        shard.map.insert(
            key,
            Entry {
                value,
                expires_at,
                tick,
            },
        );
        self.inserts.inc();
    }

    /// Fetch a live entry, refreshing its recency. Expired entries are
    /// removed and counted, then reported as misses.
    pub fn get(&self, key: &K) -> Option<V> {
        let now = self.clock.now();
        let new_tick = self.next_tick();
        let mut shard = self.shard_for(key).lock();
        let expired = match shard.map.get(key) {
            None => {
                self.misses.inc();
                return None;
            }
            Some(e) => e.expires_at.is_some_and(|t| t <= now),
        };
        if expired {
            if let Some(old) = shard.map.remove(key) {
                shard.recency.remove(&old.tick);
            }
            self.expirations.inc();
            self.misses.inc();
            return None;
        }
        let entry = shard.map.get_mut(key).expect("checked above");
        let old_tick = entry.tick;
        entry.tick = new_tick;
        let value = entry.value.clone();
        let key_clone = key.clone();
        shard.recency.remove(&old_tick);
        shard.recency.insert(new_tick, key_clone);
        self.hits.inc();
        Some(value)
    }

    /// Fetch, or compute-and-insert on miss. The computation runs *outside*
    /// the shard lock, so concurrent misses may compute twice (last write
    /// wins) — the same semantics as a Redis look-aside cache.
    pub fn get_or_insert_with(&self, key: K, f: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = f();
        self.insert(key, v.clone());
        v
    }

    /// Remove a key, returning its value if it was live.
    pub fn remove(&self, key: &K) -> Option<V> {
        let mut shard = self.shard_for(key).lock();
        let entry = shard.map.remove(key)?;
        shard.recency.remove(&entry.tick);
        let now = self.clock.now();
        if entry.expires_at.is_some_and(|t| t <= now) {
            self.expirations.inc();
            None
        } else {
            Some(entry.value)
        }
    }

    /// Drop every entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.recency.clear();
        }
    }

    /// Number of stored entries, including not-yet-reaped expired ones.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Eagerly remove all expired entries; returns how many were reaped.
    pub fn sweep_expired(&self) -> usize {
        let now = self.clock.now();
        let mut reaped = 0usize;
        for shard in &self.shards {
            let mut s = shard.lock();
            let dead: Vec<K> = s
                .map
                .iter()
                .filter(|(_, e)| e.expires_at.is_some_and(|t| t <= now))
                .map(|(k, _)| k.clone())
                .collect();
            for k in dead {
                if let Some(e) = s.map.remove(&k) {
                    s.recency.remove(&e.tick);
                    reaped += 1;
                }
            }
        }
        self.expirations.add(reaped as u64);
        reaped
    }

    /// Remove every entry whose key fails `keep`; returns how many were
    /// removed. The tier-2 stores use this for namespace invalidation
    /// (a generation bump flushes every key of the old namespace).
    pub fn retain_keys(&self, keep: impl Fn(&K) -> bool) -> usize {
        let mut removed = 0usize;
        for shard in &self.shards {
            let mut s = shard.lock();
            let dead: Vec<(u64, K)> = s
                .map
                .iter()
                .filter(|(k, _)| !keep(k))
                .map(|(k, e)| (e.tick, k.clone()))
                .collect();
            for (dead_tick, k) in dead {
                s.map.remove(&k);
                s.recency.remove(&dead_tick);
                removed += 1;
            }
        }
        removed
    }

    /// Counter snapshot — a projection of the same
    /// [`Counter`](cryptext_common::metrics::Counter) cells
    /// [`Cache::register_metrics`] exposes to a registry.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            expirations: self.expirations.get(),
            inserts: self.inserts.get(),
        }
    }

    /// Register this cache's counters under the workspace naming scheme
    /// (`cryptext_cache_<event>_total{tier="<tier>"}`). The registry
    /// shares the live cells, so exports always match [`Cache::stats`];
    /// an unregistered cache records at identical cost and is simply
    /// absent from exports.
    pub fn register_metrics(&self, registry: &MetricsRegistry, tier: &'static str) {
        let labels = [("tier", tier)];
        registry.register_counter(
            "cryptext_cache_hits_total",
            "tier-1 cache hits",
            &labels,
            &self.hits,
        );
        registry.register_counter(
            "cryptext_cache_misses_total",
            "tier-1 cache misses",
            &labels,
            &self.misses,
        );
        registry.register_counter(
            "cryptext_cache_evictions_total",
            "tier-1 LRU evictions",
            &labels,
            &self.evictions,
        );
        registry.register_counter(
            "cryptext_cache_expirations_total",
            "tier-1 TTL expirations",
            &labels,
            &self.expirations,
        );
        registry.register_counter(
            "cryptext_cache_inserts_total",
            "tier-1 cache inserts (including overwrites)",
            &labels,
            &self.inserts,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_common::SimClock;

    fn sim_cache(capacity: usize, ttl: Option<u64>) -> (Cache<String, u32>, SimClock) {
        let clock = SimClock::new(0);
        let cache = Cache::new(
            CacheConfig {
                capacity,
                default_ttl_ms: ttl,
                shards: 1, // single shard → deterministic LRU order
            },
            Arc::new(clock.clone()),
        );
        (cache, clock)
    }

    #[test]
    fn insert_get_roundtrip() {
        let (c, _) = sim_cache(10, None);
        c.insert("a".into(), 1);
        assert_eq!(c.get(&"a".into()), Some(1));
        assert_eq!(c.get(&"b".into()), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn overwrite_replaces_value() {
        let (c, _) = sim_cache(10, None);
        c.insert("a".into(), 1);
        c.insert("a".into(), 2);
        assert_eq!(c.get(&"a".into()), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_untouched() {
        let (c, _) = sim_cache(3, None);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        c.insert("c".into(), 3);
        // Touch "a" so "b" becomes LRU.
        assert_eq!(c.get(&"a".into()), Some(1));
        c.insert("d".into(), 4);
        assert_eq!(c.get(&"b".into()), None, "b evicted");
        assert_eq!(c.get(&"a".into()), Some(1));
        assert_eq!(c.get(&"c".into()), Some(3));
        assert_eq!(c.get(&"d".into()), Some(4));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let (c, _) = sim_cache(5, None);
        for i in 0..100 {
            c.insert(format!("k{i}"), i);
            assert!(c.len() <= 5, "len {} after insert {i}", c.len());
        }
    }

    #[test]
    fn ttl_expiry_with_sim_clock() {
        let (c, clock) = sim_cache(10, Some(1_000));
        c.insert("a".into(), 1);
        assert_eq!(c.get(&"a".into()), Some(1));
        clock.advance(999);
        assert_eq!(c.get(&"a".into()), Some(1), "just before deadline");
        clock.advance(1);
        assert_eq!(c.get(&"a".into()), None, "expired exactly at deadline");
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn explicit_ttl_overrides_default() {
        let (c, clock) = sim_cache(10, Some(10));
        c.insert_with_ttl("long".into(), 1, 1_000_000);
        clock.advance(500);
        assert_eq!(c.get(&"long".into()), Some(1));
    }

    #[test]
    fn no_ttl_means_immortal() {
        let (c, clock) = sim_cache(10, None);
        c.insert("a".into(), 1);
        clock.advance(u64::MAX / 2);
        assert_eq!(c.get(&"a".into()), Some(1));
    }

    #[test]
    fn sweep_reaps_only_expired() {
        let (c, clock) = sim_cache(10, None);
        c.insert_with_ttl("dead".into(), 1, 100);
        c.insert("alive".into(), 2);
        clock.advance(200);
        assert_eq!(c.sweep_expired(), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"alive".into()), Some(2));
    }

    #[test]
    fn capacity_put_reaps_expired_before_evicting_live() {
        let (c, clock) = sim_cache(2, None);
        c.insert_with_ttl("dead".into(), 1, 10);
        c.insert("live".into(), 2);
        clock.advance(20);
        // At capacity with one expired entry: the put must reap "dead"
        // rather than evict "live", which is older than nothing else alive.
        c.insert("new".into(), 3);
        assert_eq!(c.get(&"live".into()), Some(2), "live entry survived");
        assert_eq!(c.get(&"new".into()), Some(3));
        let s = c.stats();
        assert_eq!(s.evictions, 0, "no live entry was LRU-evicted");
        assert_eq!(s.expirations, 1, "the expired entry was reaped");
    }

    #[test]
    fn capacity_put_still_evicts_lru_when_nothing_expired() {
        let (c, _) = sim_cache(2, None);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        c.insert("c".into(), 3);
        assert_eq!(c.get(&"a".into()), None, "LRU evicted");
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn retain_keys_removes_only_failing_keys() {
        let (c, _) = sim_cache(10, None);
        for i in 0..6 {
            c.insert(format!("k{i}"), i);
        }
        let removed = c.retain_keys(|k| !k.ends_with(['1', '3']));
        assert_eq!(removed, 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(&"k1".into()), None);
        assert_eq!(c.get(&"k2".into()), Some(2));
    }

    #[test]
    fn get_or_insert_with_computes_once_on_hit() {
        let (c, _) = sim_cache(10, None);
        let mut calls = 0;
        let v = c.get_or_insert_with("k".into(), || {
            calls += 1;
            7
        });
        assert_eq!(v, 7);
        let v = c.get_or_insert_with("k".into(), || {
            calls += 1;
            9
        });
        assert_eq!(v, 7, "cached value served");
        assert_eq!(calls, 1);
    }

    #[test]
    fn remove_returns_live_value() {
        let (c, clock) = sim_cache(10, None);
        c.insert("a".into(), 1);
        assert_eq!(c.remove(&"a".into()), Some(1));
        assert_eq!(c.remove(&"a".into()), None);
        c.insert_with_ttl("b".into(), 2, 10);
        clock.advance(20);
        assert_eq!(c.remove(&"b".into()), None, "expired value not returned");
    }

    #[test]
    fn clear_empties_everything() {
        let (c, _) = sim_cache(10, None);
        for i in 0..5 {
            c.insert(format!("k{i}"), i);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&"k0".into()), None);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let (c, _) = sim_cache(10, None);
        c.insert("a".into(), 1);
        c.get(&"a".into());
        c.get(&"a".into());
        c.get(&"nope".into());
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.inserts, 1);
    }

    #[test]
    fn hit_rate_zero_without_traffic() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn multi_shard_concurrent_smoke() {
        let clock = SimClock::new(0);
        let c = Arc::new(Cache::<u64, u64>::new(
            CacheConfig {
                capacity: 1_000,
                default_ttl_ms: None,
                shards: 8,
            },
            Arc::new(clock),
        ));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let k = t * 1_000 + (i % 100);
                    c.insert(k, i);
                    let _ = c.get(&k);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 1_000);
        let s = c.stats();
        assert!(s.hits > 0);
        assert_eq!(s.inserts, 8 * 500);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use cryptext_common::SimClock;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u8, u32, Option<u16>),
        Get(u8),
        Remove(u8),
        Advance(u16),
        Sweep,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (
                any::<u8>(),
                any::<u32>(),
                proptest::option::of(any::<u16>())
            )
                .prop_map(|(k, v, t)| Op::Insert(k, v, t)),
            any::<u8>().prop_map(Op::Get),
            any::<u8>().prop_map(Op::Remove),
            any::<u16>().prop_map(Op::Advance),
            Just(Op::Sweep),
        ]
    }

    proptest! {
        /// Model check against a simple reference map: the cache never
        /// returns a value that the reference says is absent or expired,
        /// never exceeds capacity, and hits always return the last insert.
        #[test]
        fn model_equivalence(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let clock = SimClock::new(0);
            let capacity = 16usize;
            let cache = Cache::<u8, u32>::new(
                CacheConfig { capacity, default_ttl_ms: None, shards: 1 },
                Arc::new(clock.clone()),
            );
            // Reference: key → (value, expires_at). LRU evictions make the
            // cache a subset of the reference.
            let mut reference: std::collections::HashMap<u8, (u32, Option<u64>)> =
                std::collections::HashMap::new();

            for op in ops {
                match op {
                    Op::Insert(k, v, ttl) => {
                        match ttl {
                            Some(t) => cache.insert_with_ttl(k, v, t as u64),
                            None => cache.insert(k, v),
                        }
                        let expires = ttl.map(|t| clock.now() + t as u64);
                        reference.insert(k, (v, expires));
                    }
                    Op::Get(k) => {
                        if let Some(got) = cache.get(&k) {
                            let (v, expires) = reference
                                .get(&k)
                                .unwrap_or_else(|| panic!("cache returned unknown key {k}"));
                            prop_assert_eq!(got, *v, "stale value for {}", k);
                            prop_assert!(
                                expires.is_none_or(|t| t > clock.now()),
                                "expired value returned for {}", k
                            );
                        }
                    }
                    Op::Remove(k) => {
                        cache.remove(&k);
                        reference.remove(&k);
                    }
                    Op::Advance(ms) => {
                        clock.advance(ms as u64);
                    }
                    Op::Sweep => {
                        cache.sweep_expired();
                    }
                }
                prop_assert!(cache.len() <= capacity);
            }
        }
    }
}
