//! Tier-2 byte-valued cache stores behind one [`CacheStore`] trait.
//!
//! The paper (§III-F) fronts the query engines with a Redis cache. Tier-1 of
//! our hierarchy is the typed in-process [`Cache`](crate::Cache) inside each
//! `CryptextService`; this module defines the pluggable second tier the
//! service reads through to and writes behind. Values are opaque bytes and
//! every key lives in a *namespace* — a 64-bit digest of (LM fingerprint,
//! store identity, generation) — so a generation bump on ingest invalidates
//! by flushing the old namespace, never by guessing individual keys.
//!
//! Two backends:
//!
//! * [`LruCacheStore`] — the sharded LRU adapted to the trait; one per
//!   process, same lifetime as the service that owns it.
//! * [`SharedCacheStore`] — the Redis stand-in under the vendored-shim
//!   constraint: a single in-process server object a fleet of replica
//!   services point at through `Arc`s (or via the process-global
//!   [`SharedCacheStore::global`], selected by `CRYPTEXT_CACHE_TIER2=shared`).
//!   Its write path is a [`failpoint`](cryptext_common::failpoint)
//!   (`cache.shared.put`), so `CRYPTEXT_FAILPOINTS` sweeps can kill or delay
//!   tier-2 writes; callers must absorb the error as a miss — a broken
//!   second tier degrades performance, never correctness.

use std::sync::{Arc, OnceLock};

use cryptext_common::metrics::{Counter, MetricsRegistry};
use cryptext_common::{failpoint, Clock, Result};

use crate::{Cache, CacheConfig};

/// Counter snapshot for a tier-2 store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Successful `get`s.
    pub hits: u64,
    /// Failed `get`s (absent or expired).
    pub misses: u64,
    /// Successful `put`s.
    pub inserts: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped because their TTL elapsed.
    pub expirations: u64,
    /// Entries flushed by [`CacheStore::invalidate_namespace`].
    pub invalidated: u64,
    /// `put`s that failed (injected faults included); the entry was dropped.
    pub put_errors: u64,
}

/// A byte-valued, namespaced, TTL-capable cache store — the tier-2 contract.
///
/// Implementations are shared-nothing from the caller's perspective: every
/// method takes `&self` and must be safe under concurrent use. `get` must
/// never return a value written under a different `(ns, key)` pair, and
/// `invalidate_namespace(ns)` must drop every entry written under `ns`.
pub trait CacheStore: Send + Sync {
    /// Fetch the bytes stored under `(ns, key)`, if live.
    fn get(&self, ns: u64, key: u128) -> Option<Vec<u8>>;

    /// Store `value` under `(ns, key)` with an optional TTL. Errors mean the
    /// entry was *not* stored (e.g. an injected fault on the write path);
    /// callers absorb them as future misses.
    fn put(&self, ns: u64, key: u128, value: Vec<u8>, ttl_ms: Option<u64>) -> Result<()>;

    /// Drop every entry in `ns`; returns how many were flushed.
    fn invalidate_namespace(&self, ns: u64) -> usize;

    /// Eagerly reap expired entries; returns how many were reaped.
    fn sweep_expired(&self) -> usize;

    /// Counter snapshot.
    fn stats(&self) -> StoreStats;

    /// Register this store's counters with a workspace
    /// [`MetricsRegistry`] under `tier` (e.g. `"tier2"`). Default:
    /// no-op, for backends with nothing to export. Implementations
    /// share live cells, so exports always match [`CacheStore::stats`].
    fn register_metrics(&self, registry: &MetricsRegistry, tier: &'static str) {
        let _ = (registry, tier);
    }
}

/// The sharded LRU [`Cache`] adapted to the [`CacheStore`] trait.
pub struct LruCacheStore {
    inner: Cache<(u64, u128), Vec<u8>>,
    invalidated: Counter,
}

impl LruCacheStore {
    /// Build from a cache config, reading time from `clock`.
    pub fn new(config: CacheConfig, clock: Arc<dyn Clock>) -> Self {
        LruCacheStore {
            inner: Cache::new(config, clock),
            invalidated: Counter::new(),
        }
    }

    /// Convenience constructor with the system clock.
    pub fn with_system_clock(config: CacheConfig) -> Self {
        LruCacheStore::new(config, cryptext_common::system_clock())
    }
}

impl CacheStore for LruCacheStore {
    fn get(&self, ns: u64, key: u128) -> Option<Vec<u8>> {
        self.inner.get(&(ns, key))
    }

    fn put(&self, ns: u64, key: u128, value: Vec<u8>, ttl_ms: Option<u64>) -> Result<()> {
        self.inner.insert_opt_ttl((ns, key), value, ttl_ms);
        Ok(())
    }

    fn invalidate_namespace(&self, ns: u64) -> usize {
        let n = self.inner.retain_keys(|&(k_ns, _)| k_ns != ns);
        self.invalidated.add(n as u64);
        n
    }

    fn sweep_expired(&self) -> usize {
        self.inner.sweep_expired()
    }

    fn stats(&self) -> StoreStats {
        let s = self.inner.stats();
        StoreStats {
            hits: s.hits,
            misses: s.misses,
            inserts: s.inserts,
            evictions: s.evictions,
            expirations: s.expirations,
            invalidated: self.invalidated.get(),
            put_errors: 0,
        }
    }

    fn register_metrics(&self, registry: &MetricsRegistry, tier: &'static str) {
        self.inner.register_metrics(registry, tier);
        registry.register_counter(
            "cryptext_cache_invalidated_total",
            "entries flushed by namespace invalidation",
            &[("tier", tier)],
            &self.invalidated,
        );
    }
}

/// Failpoint name armed on [`SharedCacheStore`]'s write path.
pub const SHARED_PUT_FAILPOINT: &str = "cache.shared.put";

/// The shared-role tier-2 backend: an in-process server object standing in
/// for Redis. A fleet of replica services holds `Arc`s to one instance;
/// distinct logical databases never collide because namespaces are
/// content-derived. Writes pass through the [`SHARED_PUT_FAILPOINT`]
/// failpoint so fault sweeps can break the second tier without breaking
/// results.
pub struct SharedCacheStore {
    inner: Cache<(u64, u128), Vec<u8>>,
    invalidated: Counter,
    put_errors: Counter,
}

impl SharedCacheStore {
    /// Build from a cache config, reading time from `clock`.
    pub fn new(config: CacheConfig, clock: Arc<dyn Clock>) -> Self {
        SharedCacheStore {
            inner: Cache::new(config, clock),
            invalidated: Counter::new(),
            put_errors: Counter::new(),
        }
    }

    /// The process-global shared store (system clock, default capacity) —
    /// what `CRYPTEXT_CACHE_TIER2=shared` attaches every service to.
    pub fn global() -> Arc<SharedCacheStore> {
        static GLOBAL: OnceLock<Arc<SharedCacheStore>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| {
            Arc::new(SharedCacheStore::new(
                CacheConfig::default(),
                cryptext_common::system_clock(),
            ))
        }))
    }
}

impl CacheStore for SharedCacheStore {
    fn get(&self, ns: u64, key: u128) -> Option<Vec<u8>> {
        self.inner.get(&(ns, key))
    }

    fn put(&self, ns: u64, key: u128, value: Vec<u8>, ttl_ms: Option<u64>) -> Result<()> {
        if let Err(e) = failpoint::check(SHARED_PUT_FAILPOINT) {
            self.put_errors.inc();
            return Err(e);
        }
        self.inner.insert_opt_ttl((ns, key), value, ttl_ms);
        Ok(())
    }

    fn invalidate_namespace(&self, ns: u64) -> usize {
        let n = self.inner.retain_keys(|&(k_ns, _)| k_ns != ns);
        self.invalidated.add(n as u64);
        n
    }

    fn sweep_expired(&self) -> usize {
        self.inner.sweep_expired()
    }

    fn stats(&self) -> StoreStats {
        let s = self.inner.stats();
        StoreStats {
            hits: s.hits,
            misses: s.misses,
            inserts: s.inserts,
            evictions: s.evictions,
            expirations: s.expirations,
            invalidated: self.invalidated.get(),
            put_errors: self.put_errors.get(),
        }
    }

    fn register_metrics(&self, registry: &MetricsRegistry, tier: &'static str) {
        self.inner.register_metrics(registry, tier);
        registry.register_counter(
            "cryptext_cache_invalidated_total",
            "entries flushed by namespace invalidation",
            &[("tier", tier)],
            &self.invalidated,
        );
        registry.register_counter(
            "cryptext_cache_put_errors_total",
            "tier-2 puts that failed (entry dropped)",
            &[("tier", tier)],
            &self.put_errors,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_common::SimClock;

    fn sim_store<F: FnOnce(CacheConfig, Arc<dyn Clock>) -> S, S>(make: F) -> (S, SimClock) {
        let clock = SimClock::new(0);
        let store = make(
            CacheConfig {
                capacity: 64,
                default_ttl_ms: None,
                shards: 1,
            },
            Arc::new(clock.clone()),
        );
        (store, clock)
    }

    fn roundtrip(store: &dyn CacheStore) {
        assert_eq!(store.get(1, 7), None);
        store.put(1, 7, vec![1, 2, 3], None).unwrap();
        assert_eq!(store.get(1, 7), Some(vec![1, 2, 3]));
        assert_eq!(store.get(2, 7), None, "namespaces are disjoint");
        assert_eq!(store.get(1, 8), None);
    }

    #[test]
    fn lru_store_roundtrip_and_namespacing() {
        let (s, _) = sim_store(LruCacheStore::new);
        roundtrip(&s);
        let st = s.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 3);
        assert_eq!(st.inserts, 1);
    }

    #[test]
    fn shared_store_roundtrip_and_namespacing() {
        let (s, _) = sim_store(SharedCacheStore::new);
        roundtrip(&s);
    }

    #[test]
    fn namespace_invalidation_flushes_only_that_namespace() {
        let (s, _) = sim_store(SharedCacheStore::new);
        s.put(1, 10, vec![1], None).unwrap();
        s.put(1, 11, vec![2], None).unwrap();
        s.put(2, 10, vec![3], None).unwrap();
        assert_eq!(s.invalidate_namespace(1), 2);
        assert_eq!(s.get(1, 10), None);
        assert_eq!(s.get(1, 11), None);
        assert_eq!(s.get(2, 10), Some(vec![3]));
        assert_eq!(s.stats().invalidated, 2);
    }

    #[test]
    fn ttl_expiry_and_sweep() {
        let (s, clock) = sim_store(LruCacheStore::new);
        s.put(1, 1, vec![9], Some(100)).unwrap();
        s.put(1, 2, vec![8], None).unwrap();
        clock.advance(200);
        assert_eq!(s.get(1, 1), None);
        assert_eq!(s.sweep_expired(), 0, "expired entry already reaped by get");
        s.put(1, 3, vec![7], Some(50)).unwrap();
        clock.advance(60);
        assert_eq!(s.sweep_expired(), 1);
        assert_eq!(s.get(1, 2), Some(vec![8]));
    }

    #[test]
    fn shared_put_failpoint_breaks_writes_not_reads() {
        let (s, _) = sim_store(SharedCacheStore::new);
        s.put(1, 1, vec![1], None).unwrap();
        {
            let _fp = failpoint::arm(SHARED_PUT_FAILPOINT, "kill@1");
            let err = s.put(1, 2, vec![2], None).unwrap_err();
            assert!(failpoint::is_injected(&err));
            // Monotonic: a dead store stays dead while armed.
            assert!(s.put(1, 3, vec![3], None).is_err());
        }
        assert_eq!(s.get(1, 1), Some(vec![1]), "pre-fault entry still served");
        assert_eq!(s.get(1, 2), None, "failed put stored nothing");
        assert_eq!(s.stats().put_errors, 2);
        // Disarmed: writes flow again.
        s.put(1, 2, vec![2], None).unwrap();
        assert_eq!(s.get(1, 2), Some(vec![2]));
    }

    #[test]
    fn global_shared_store_is_one_instance() {
        let a = SharedCacheStore::global();
        let b = SharedCacheStore::global();
        assert!(Arc::ptr_eq(&a, &b));
        // Use a namespace no other test shares: derived from this test name.
        let ns = cryptext_common::hash::fx_hash_str("global_shared_store_is_one_instance");
        a.put(ns, 42, vec![4], None).unwrap();
        assert_eq!(b.get(ns, 42), Some(vec![4]));
    }
}
