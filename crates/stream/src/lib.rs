//! # cryptext-stream
//!
//! A simulated social platform — CrypText's substitute for the Reddit
//! (PushShift) and Twitter APIs.
//!
//! §III-E and §III-F of the paper depend on two external interfaces:
//! a *search* API over historical posts (PushShift) and a *live stream*
//! (Twitter's public stream) that continually feeds the crawler. This
//! crate simulates both over a reproducible synthetic timeline:
//!
//! * [`SocialPlatform::simulate`] — generate a time-ordered feed of posts
//!   (content from [`cryptext_corpus`], so posts carry gold topic,
//!   sentiment, toxicity and perturbation labels);
//! * [`SocialPlatform::search`] — keyword search with time-range filters
//!   and pagination, matching whole tokens case-insensitively exactly like
//!   the real search endpoints (which is precisely why leetspeak
//!   perturbations are *unreachable* with clean keywords — the paper's
//!   §III-B motivation);
//! * [`SocialPlatform::stream_from`] — a chronological iterator used by
//!   the ingest crawler.

#![warn(missing_docs)]

use cryptext_common::{SplitMix64, TimeRange, Timestamp};
use cryptext_corpus::{CorpusConfig, LabeledDoc, PerturbationRecord, Sentiment, Topic};

/// Which simulated platform a post belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Platform {
    /// Reddit-like: channels are subreddits.
    Reddit,
    /// Twitter-like: channels are hashtag communities.
    Twitter,
}

/// One post in the simulated feed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Post {
    /// Dense feed-unique id.
    pub id: u64,
    /// Originating platform.
    pub platform: Platform,
    /// Subreddit / community name.
    pub channel: String,
    /// Author handle.
    pub author: String,
    /// Post text (may contain perturbations).
    pub text: String,
    /// Creation time (epoch ms).
    pub created_at: Timestamp,
    /// Upvotes/likes.
    pub score: i64,
    /// Gold topic label.
    pub topic: Topic,
    /// Gold sentiment label.
    pub sentiment: Sentiment,
    /// Gold toxicity label.
    pub toxic: bool,
    /// Gold perturbation map.
    pub perturbations: Vec<PerturbationRecord>,
}

/// Configuration of the simulated feed.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of posts across the window.
    pub n_posts: usize,
    /// Seed for full determinism.
    pub seed: u64,
    /// Window start (epoch ms).
    pub start_ms: Timestamp,
    /// Window length in ms.
    pub duration_ms: u64,
    /// Content characteristics (topic mix, sentiment skew, perturbation
    /// rates).
    pub corpus: CorpusConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            n_posts: 2_000,
            seed: 42,
            // Nov 2021, matching the paper's keyword-enrichment window.
            start_ms: 1_635_724_800_000,
            duration_ms: 30 * cryptext_common::clock::MILLIS_PER_DAY,
            corpus: CorpusConfig::default(),
        }
    }
}

/// PushShift-style search query.
#[derive(Debug, Clone, Default)]
pub struct SearchQuery {
    /// Keywords, OR semantics; each must match a whole token
    /// case-insensitively.
    pub keywords: Vec<String>,
    /// Optional time window.
    pub range: Option<TimeRange>,
    /// Restrict to one platform.
    pub platform: Option<Platform>,
    /// Page size (0 = unlimited).
    pub limit: usize,
    /// Offset into the chronological result list.
    pub offset: usize,
}

impl SearchQuery {
    /// Query for a single keyword.
    pub fn keyword(word: impl Into<String>) -> Self {
        SearchQuery {
            keywords: vec![word.into()],
            ..Default::default()
        }
    }

    /// Query for any of several keywords (the "enriched" query of §III-B).
    pub fn any_of<I: IntoIterator<Item = S>, S: Into<String>>(words: I) -> Self {
        SearchQuery {
            keywords: words.into_iter().map(Into::into).collect(),
            ..Default::default()
        }
    }

    /// Restrict to a time range (builder style).
    pub fn in_range(mut self, range: TimeRange) -> Self {
        self.range = Some(range);
        self
    }

    /// Paginate (builder style).
    pub fn page(mut self, offset: usize, limit: usize) -> Self {
        self.offset = offset;
        self.limit = limit;
        self
    }
}

/// Search response: one page plus the total match count.
#[derive(Debug, Clone)]
pub struct SearchResults {
    /// The requested page, chronological order.
    pub posts: Vec<Post>,
    /// Total matches before pagination.
    pub total: usize,
}

/// The simulated platform: an immutable, time-sorted feed.
#[derive(Debug)]
pub struct SocialPlatform {
    posts: Vec<Post>,
}

fn channel_for(platform: Platform, topic: Topic) -> String {
    match platform {
        Platform::Reddit => format!("r/{}", topic.name()),
        Platform::Twitter => format!("#{}", topic.name()),
    }
}

impl SocialPlatform {
    /// Generate the feed. Equal configs produce identical feeds.
    pub fn simulate(config: StreamConfig) -> Self {
        let mut corpus_cfg = config.corpus.clone();
        corpus_cfg.n_docs = config.n_posts;
        corpus_cfg.seed = config.seed;
        let corpus = cryptext_corpus::generator::generate(corpus_cfg);

        let mut rng = SplitMix64::new(config.seed ^ 0x5EED_57EA);
        let mut posts: Vec<Post> = corpus
            .docs
            .into_iter()
            .map(|doc: LabeledDoc| {
                let platform = if rng.chance(0.5) {
                    Platform::Reddit
                } else {
                    Platform::Twitter
                };
                let created_at = config.start_ms + rng.next_below(config.duration_ms.max(1));
                // Long-tailed score distribution.
                let score = (rng.next_f64().powi(3) * 500.0) as i64 + if doc.toxic { 0 } else { 5 };
                Post {
                    id: 0, // assigned after sorting
                    platform,
                    channel: channel_for(platform, doc.topic),
                    author: format!("user{}", rng.next_below(500)),
                    text: doc.text,
                    created_at,
                    score,
                    topic: doc.topic,
                    sentiment: doc.sentiment,
                    toxic: doc.toxic,
                    perturbations: doc.perturbations,
                }
            })
            .collect();
        posts.sort_by_key(|p| p.created_at);
        for (i, p) in posts.iter_mut().enumerate() {
            p.id = i as u64;
        }
        SocialPlatform { posts }
    }

    /// Total number of posts.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// Is the feed empty?
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// The covered time range (`None` when empty).
    pub fn time_range(&self) -> Option<TimeRange> {
        match (self.posts.first(), self.posts.last()) {
            (Some(a), Some(b)) => Some(TimeRange::new(a.created_at, b.created_at + 1)),
            _ => None,
        }
    }

    /// All posts, chronological.
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// Does `post` match `query`'s keyword set? Whole-token,
    /// case-insensitive — the behaviour of real search endpoints, and the
    /// reason perturbed spellings evade clean-keyword search.
    fn matches(post: &Post, query: &SearchQuery) -> bool {
        if let Some(p) = query.platform {
            if post.platform != p {
                return false;
            }
        }
        if let Some(r) = query.range {
            if !r.contains(post.created_at) {
                return false;
            }
        }
        if query.keywords.is_empty() {
            return true;
        }
        let tokens = cryptext_tokenizer::words(&post.text);
        query
            .keywords
            .iter()
            .any(|kw| tokens.iter().any(|t| t.eq_ignore_ascii_case(kw)))
    }

    /// PushShift-style search: filter, order chronologically, paginate.
    pub fn search(&self, query: &SearchQuery) -> SearchResults {
        let matched: Vec<&Post> = self
            .posts
            .iter()
            .filter(|p| Self::matches(p, query))
            .collect();
        let total = matched.len();
        let page: Vec<Post> = matched
            .into_iter()
            .skip(query.offset)
            .take(if query.limit == 0 {
                usize::MAX
            } else {
                query.limit
            })
            .cloned()
            .collect();
        SearchResults { posts: page, total }
    }

    /// Chronological iterator over posts created at or after `from` — the
    /// crawler's stream interface.
    pub fn stream_from(&self, from: Timestamp) -> impl Iterator<Item = &Post> {
        let start = self.posts.partition_point(|p| p.created_at < from);
        self.posts[start..].iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> SocialPlatform {
        SocialPlatform::simulate(StreamConfig {
            n_posts: 800,
            ..StreamConfig::default()
        })
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = SocialPlatform::simulate(StreamConfig::default());
        let b = SocialPlatform::simulate(StreamConfig::default());
        assert_eq!(a.posts(), b.posts());
    }

    #[test]
    fn posts_are_chronological_with_dense_ids() {
        let p = platform();
        assert_eq!(p.len(), 800);
        for w in p.posts().windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
        for (i, post) in p.posts().iter().enumerate() {
            assert_eq!(post.id, i as u64);
        }
    }

    #[test]
    fn timestamps_inside_configured_window() {
        let cfg = StreamConfig::default();
        let p = SocialPlatform::simulate(cfg.clone());
        let range = p.time_range().unwrap();
        assert!(range.start >= cfg.start_ms);
        assert!(range.end <= cfg.start_ms + cfg.duration_ms + 1);
    }

    #[test]
    fn channels_follow_platform_and_topic() {
        for post in platform().posts() {
            match post.platform {
                Platform::Reddit => assert!(post.channel.starts_with("r/"), "{}", post.channel),
                Platform::Twitter => assert!(post.channel.starts_with('#'), "{}", post.channel),
            }
            assert!(post.channel.contains(post.topic.name()));
        }
    }

    #[test]
    fn search_matches_whole_tokens_case_insensitively() {
        let p = platform();
        let results = p.search(&SearchQuery::keyword("democrats"));
        assert!(results.total > 0);
        for post in &results.posts {
            let words = cryptext_tokenizer::words(&post.text);
            assert!(
                words.iter().any(|w| w.eq_ignore_ascii_case("democrats")),
                "{:?}",
                post.text
            );
        }
    }

    #[test]
    fn leet_perturbations_evade_clean_keyword_search() {
        let p = platform();
        // Find a post whose target was leet-perturbed (not a pure case
        // change); the clean keyword must not retrieve it.
        let mut checked = 0;
        for post in p.posts() {
            for rec in &post.perturbations {
                // Skip pure case changes (still token-matchable) and posts
                // where the clean form survives in another token.
                let clean_form_remains = cryptext_tokenizer::words(&post.text)
                    .iter()
                    .any(|w| w.eq_ignore_ascii_case(&rec.original));
                if !rec.perturbed.eq_ignore_ascii_case(&rec.original) && !clean_form_remains {
                    let res = p.search(&SearchQuery::keyword(rec.original.clone()));
                    assert!(
                        !res.posts.iter().any(|m| m.id == post.id),
                        "post {} with {:?} reachable via {:?}",
                        post.id,
                        rec.perturbed,
                        rec.original
                    );
                    // ...but the perturbed spelling as a query finds it.
                    let res = p.search(&SearchQuery::keyword(rec.perturbed.clone()));
                    assert!(res.posts.iter().any(|m| m.id == post.id));
                    checked += 1;
                }
            }
            if checked > 20 {
                break;
            }
        }
        assert!(checked > 5, "enough perturbed posts to test ({checked})");
    }

    #[test]
    fn enriched_query_is_superset_of_plain() {
        let p = platform();
        let plain = p.search(&SearchQuery::keyword("vaccine"));
        let enriched = p.search(&SearchQuery::any_of(["vaccine", "vac-cine", "vacc1ne"]));
        assert!(enriched.total >= plain.total);
    }

    #[test]
    fn time_range_filter() {
        let p = platform();
        let full = p.time_range().unwrap();
        let mid = full.start + full.len_ms() / 2;
        let early = SearchQuery::default().in_range(TimeRange::new(full.start, mid));
        let res = p.search(&early);
        assert!(res.total > 0);
        assert!(res.posts.iter().all(|post| post.created_at < mid));
        assert!(res.total < p.len());
    }

    #[test]
    fn platform_filter() {
        let p = platform();
        let reddit_only = SearchQuery {
            platform: Some(Platform::Reddit),
            ..Default::default()
        };
        let res = p.search(&reddit_only);
        assert!(res.total > 0);
        assert!(res
            .posts
            .iter()
            .all(|post| post.platform == Platform::Reddit));
        assert!(res.total < p.len(), "both platforms present");
    }

    #[test]
    fn pagination_covers_without_overlap() {
        let p = platform();
        let q = SearchQuery::keyword("the");
        let all = p.search(&q);
        let page1 = p.search(&q.clone().page(0, 10));
        let page2 = p.search(&q.clone().page(10, 10));
        assert_eq!(page1.total, all.total);
        assert_eq!(page1.posts.len(), 10.min(all.total));
        if all.total > 10 {
            assert_ne!(
                page1.posts.last().unwrap().id,
                page2.posts.first().unwrap().id
            );
        }
        // Concatenation of pages == full prefix.
        let ids: Vec<u64> = page1
            .posts
            .iter()
            .chain(&page2.posts)
            .map(|p| p.id)
            .collect();
        let expected: Vec<u64> = all.posts.iter().take(20).map(|p| p.id).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn empty_keyword_query_matches_everything() {
        let p = platform();
        let res = p.search(&SearchQuery::default());
        assert_eq!(res.total, p.len());
    }

    #[test]
    fn stream_from_starts_at_timestamp() {
        let p = platform();
        let range = p.time_range().unwrap();
        let mid = range.start + range.len_ms() / 2;
        let streamed: Vec<&Post> = p.stream_from(mid).collect();
        assert!(!streamed.is_empty());
        assert!(streamed.iter().all(|post| post.created_at >= mid));
        // Streaming from the very start yields everything.
        assert_eq!(p.stream_from(0).count(), p.len());
        // Streaming from beyond the end yields nothing.
        assert_eq!(p.stream_from(range.end).count(), 0);
    }

    #[test]
    fn empty_feed_is_sane() {
        let p = SocialPlatform::simulate(StreamConfig {
            n_posts: 0,
            ..StreamConfig::default()
        });
        assert!(p.is_empty());
        assert_eq!(p.time_range(), None);
        assert_eq!(p.search(&SearchQuery::keyword("x")).total, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn fixed_platform() -> &'static SocialPlatform {
        use std::sync::OnceLock;
        static P: OnceLock<SocialPlatform> = OnceLock::new();
        P.get_or_init(|| {
            SocialPlatform::simulate(StreamConfig {
                n_posts: 300,
                seed: 999,
                ..StreamConfig::default()
            })
        })
    }

    proptest! {
        /// Pagination never fabricates or reorders posts: every page is
        /// the corresponding slice of the unpaginated result.
        #[test]
        fn pagination_is_a_slice(offset in 0usize..350, limit in 1usize..60) {
            let p = fixed_platform();
            let q = SearchQuery::keyword("the");
            let all = p.search(&q);
            let page = p.search(&q.clone().page(offset, limit));
            prop_assert_eq!(page.total, all.total, "total independent of paging");
            let expected: Vec<u64> = all
                .posts
                .iter()
                .skip(offset)
                .take(limit)
                .map(|post| post.id)
                .collect();
            let got: Vec<u64> = page.posts.iter().map(|post| post.id).collect();
            prop_assert_eq!(got, expected);
        }

        /// Narrowing the time range never adds results, and every result
        /// respects the range.
        #[test]
        fn time_range_monotone(a in 0u64..100, b in 0u64..100) {
            let p = fixed_platform();
            let full = p.time_range().unwrap();
            let lo = full.start + full.len_ms() * a.min(b) / 100;
            let hi = full.start + full.len_ms() * a.max(b) / 100;
            let sub = TimeRange::new(lo, hi);
            let all = p.search(&SearchQuery::default());
            let ranged = p.search(&SearchQuery::default().in_range(sub));
            prop_assert!(ranged.total <= all.total);
            for post in &ranged.posts {
                prop_assert!(sub.contains(post.created_at));
            }
        }

        /// OR-keyword queries are unions: the enriched total is at least
        /// the max of the individual totals and at most their sum.
        #[test]
        fn keyword_or_is_union(pick in proptest::sample::subsequence(
            vec!["the", "vaccine", "democrats", "about", "zzz-not-present"], 1..4))
        {
            let p = fixed_platform();
            let combined = p.search(&SearchQuery::any_of(pick.clone())).total;
            let singles: Vec<usize> = pick
                .iter()
                .map(|k| p.search(&SearchQuery::keyword(*k)).total)
                .collect();
            let max = singles.iter().copied().max().unwrap_or(0);
            let sum: usize = singles.iter().sum();
            prop_assert!(combined >= max, "{combined} >= {max}");
            prop_assert!(combined <= sum, "{combined} <= {sum}");
        }
    }
}
