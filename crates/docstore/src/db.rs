//! The database: named collections + durability.
//!
//! All mutations follow write-ahead discipline: append to the WAL, then
//! apply to the in-memory collection under its lock. Reads take the shared
//! lock only. [`Database::checkpoint`] snapshots everything atomically and
//! truncates the WAL; [`Database::open`] recovers snapshot + WAL replay.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use cryptext_common::failpoint;
use cryptext_common::{Error, Result};
use parking_lot::{Mutex, RwLock};

use crate::collection::{Collection, DocId};
use crate::filter::Filter;
use crate::snapshot;
use crate::value::Document;
use crate::wal::{read_wal, WalOp, WalWriter};

/// Whether WAL appends fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// `fsync` on every append — maximum durability, slowest.
    EveryAppend,
    /// Flush to the OS on every append, fsync only at checkpoints. A process
    /// crash loses nothing; an OS crash may lose the tail. The default, and
    /// what the experiments use.
    #[default]
    OsBuffered,
}

/// Options for opening a persistent database.
#[derive(Debug, Clone, Default)]
pub struct DbOptions {
    /// WAL sync mode.
    pub wal_sync: WalSync,
}

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "db.snapshot";

struct Persistence {
    dir: PathBuf,
    wal: Mutex<WalWriter>,
    sync_mode: WalSync,
}

/// An embedded multi-collection document database.
pub struct Database {
    collections: RwLock<BTreeMap<String, RwLock<Collection>>>,
    persistence: Option<Persistence>,
}

impl Database {
    /// A purely in-memory database (no WAL, no snapshots).
    pub fn in_memory() -> Self {
        Database {
            collections: RwLock::new(BTreeMap::new()),
            persistence: None,
        }
    }

    /// Open (or create) a persistent database in `dir`, recovering state
    /// from the latest snapshot plus WAL replay. A torn WAL tail is
    /// tolerated silently (crash recovery); the reclaimed log keeps
    /// appending after the intact prefix.
    pub fn open(dir: &Path, opts: DbOptions) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let mut map = BTreeMap::new();
        for coll in snapshot::read_snapshot(&snapshot_path)? {
            map.insert(coll.name().to_string(), RwLock::new(coll));
        }
        let wal_read = read_wal(&wal_path)?;
        for op in wal_read.ops {
            Self::apply_to_map(&mut map, op)?;
        }
        // If the tail was torn, rewrite the log to only the intact prefix
        // is unnecessary: appends after the torn frame would be unreadable.
        // Instead, checkpoint-on-open when a torn tail was detected.
        let db = Database {
            collections: RwLock::new(map),
            persistence: Some(Persistence {
                dir: dir.to_path_buf(),
                wal: Mutex::new(WalWriter::open(
                    &wal_path,
                    opts.wal_sync == WalSync::EveryAppend,
                )?),
                sync_mode: opts.wal_sync,
            }),
        };
        if wal_read.truncated_tail {
            db.checkpoint()?;
        }
        Ok(db)
    }

    fn apply_to_map(map: &mut BTreeMap<String, RwLock<Collection>>, op: WalOp) -> Result<()> {
        match op {
            WalOp::CreateCollection { name } => {
                map.entry(name.clone())
                    .or_insert_with(|| RwLock::new(Collection::new(name)));
            }
            WalOp::DropCollection { name } => {
                map.remove(&name);
            }
            WalOp::CreateIndex { collection, field } => {
                if let Some(c) = map.get_mut(&collection) {
                    c.get_mut().create_index(field);
                }
            }
            WalOp::Insert {
                collection,
                id,
                doc,
            } => {
                if let Some(c) = map.get_mut(&collection) {
                    c.get_mut().insert_with_id(id, doc);
                }
            }
            WalOp::Update {
                collection,
                id,
                doc,
            } => {
                if let Some(c) = map.get_mut(&collection) {
                    // Replay tolerates updates to ids missing after a
                    // partial history — treated as inserts.
                    c.get_mut().insert_with_id(id, doc);
                }
            }
            WalOp::Delete { collection, id } => {
                if let Some(c) = map.get_mut(&collection) {
                    c.get_mut().delete(DocId(id));
                }
            }
            WalOp::RenameCollection { from, to } => {
                if let Some(mut coll) = map.remove(&from) {
                    coll.get_mut().set_name(&to);
                    map.insert(to, coll);
                }
            }
        }
        Ok(())
    }

    fn log(&self, op: &WalOp) -> Result<()> {
        if let Some(p) = &self.persistence {
            p.wal.lock().append(op)?;
        }
        Ok(())
    }

    /// Create a collection (idempotent).
    pub fn create_collection(&self, name: &str) -> Result<()> {
        {
            let read = self.collections.read();
            if read.contains_key(name) {
                return Ok(());
            }
        }
        self.log(&WalOp::CreateCollection { name: name.into() })?;
        let mut write = self.collections.write();
        write
            .entry(name.to_string())
            .or_insert_with(|| RwLock::new(Collection::new(name)));
        Ok(())
    }

    /// Drop a collection and all its documents.
    pub fn drop_collection(&self, name: &str) -> Result<()> {
        self.log(&WalOp::DropCollection { name: name.into() })?;
        self.collections.write().remove(name);
        Ok(())
    }

    /// Rename collection `from` to `to`, replacing any collection already
    /// at `to`. A single WAL record makes the swap atomic under crash
    /// recovery, which is what crash-safe persists pivot on: build the new
    /// state under a staging name, then rename over the live name — a
    /// reopen sees either the complete old state or the complete new one.
    pub fn rename_collection(&self, from: &str, to: &str) -> Result<()> {
        {
            let read = self.collections.read();
            if !read.contains_key(from) {
                return Err(Error::not_found(format!("collection {from}")));
            }
        }
        if from == to {
            return Ok(());
        }
        self.log(&WalOp::RenameCollection {
            from: from.into(),
            to: to.into(),
        })?;
        let mut write = self.collections.write();
        if let Some(mut coll) = write.remove(from) {
            coll.get_mut().set_name(to);
            write.insert(to.to_string(), coll);
        }
        Ok(())
    }

    /// Names of all collections, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Does `name` exist?
    pub fn has_collection(&self, name: &str) -> bool {
        self.collections.read().contains_key(name)
    }

    /// Names of all collections starting with `prefix`, sorted. Sharded
    /// persists name their per-shard collections `{base}__shard{i}`; this
    /// lets a re-persist find and replace every collection of the previous
    /// layout, including stale shards from a larger prior shard count.
    pub fn collections_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.collections
            .read()
            .keys()
            .filter(|name| name.starts_with(prefix))
            .cloned()
            .collect()
    }

    fn with_collection<R>(
        &self,
        name: &str,
        f: impl FnOnce(&RwLock<Collection>) -> R,
    ) -> Result<R> {
        let read = self.collections.read();
        let coll = read
            .get(name)
            .ok_or_else(|| Error::not_found(format!("collection {name}")))?;
        Ok(f(coll))
    }

    /// Create a secondary index on `collection.field` (idempotent).
    pub fn create_index(&self, collection: &str, field: &str) -> Result<()> {
        self.log(&WalOp::CreateIndex {
            collection: collection.into(),
            field: field.into(),
        })?;
        self.with_collection(collection, |c| c.write().create_index(field))
    }

    /// Insert a document, returning its id.
    pub fn insert(&self, collection: &str, doc: Document) -> Result<DocId> {
        // Reserve the id under the write lock, logging first.
        let read = self.collections.read();
        let coll = read
            .get(collection)
            .ok_or_else(|| Error::not_found(format!("collection {collection}")))?;
        let mut guard = coll.write();
        let id = guard.next_id();
        self.log(&WalOp::Insert {
            collection: collection.into(),
            id,
            doc: doc.clone(),
        })?;
        guard.insert_with_id(id, doc);
        Ok(DocId(id))
    }

    /// Replace the document at `id`.
    pub fn update(&self, collection: &str, id: DocId, doc: Document) -> Result<()> {
        self.log(&WalOp::Update {
            collection: collection.into(),
            id: id.0,
            doc: doc.clone(),
        })?;
        self.with_collection(collection, |c| c.write().update(id, doc))?
    }

    /// Delete the document at `id`; `Ok(true)` when something was removed.
    pub fn delete(&self, collection: &str, id: DocId) -> Result<bool> {
        self.log(&WalOp::Delete {
            collection: collection.into(),
            id: id.0,
        })?;
        self.with_collection(collection, |c| c.write().delete(id))
    }

    /// Fetch by id (cloned).
    pub fn get(&self, collection: &str, id: DocId) -> Result<Option<Document>> {
        self.with_collection(collection, |c| c.read().get(id).cloned())
    }

    /// Query matching documents.
    pub fn find(&self, collection: &str, filter: &Filter) -> Result<Vec<(DocId, Document)>> {
        self.with_collection(collection, |c| c.read().find(filter))
    }

    /// First matching document.
    pub fn find_one(&self, collection: &str, filter: &Filter) -> Result<Option<(DocId, Document)>> {
        self.with_collection(collection, |c| c.read().find_one(filter))
    }

    /// Count matching documents.
    pub fn count(&self, collection: &str, filter: &Filter) -> Result<usize> {
        self.with_collection(collection, |c| c.read().count(filter))
    }

    /// Number of documents in a collection.
    pub fn len(&self, collection: &str) -> Result<usize> {
        self.with_collection(collection, |c| c.read().len())
    }

    /// Run a closure over the raw collection (shared lock). For bulk reads
    /// that would otherwise clone large result sets.
    pub fn read_collection<R>(&self, name: &str, f: impl FnOnce(&Collection) -> R) -> Result<R> {
        self.with_collection(name, |c| f(&c.read()))
    }

    /// Write a snapshot of every collection and truncate the WAL. On
    /// return, the snapshot alone reconstructs current state.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(p) = &self.persistence else {
            return Ok(()); // nothing to do in memory mode
        };
        let snapshot_path = p.dir.join(SNAPSHOT_FILE);
        let wal_path = p.dir.join(WAL_FILE);

        // Hold the WAL lock across snapshot + truncate so no append lands
        // between the snapshot and the log reset.
        let mut wal_guard = p.wal.lock();
        {
            let read = self.collections.read();
            let guards: Vec<_> = read.values().map(|c| c.read()).collect();
            let refs: Vec<&Collection> = guards.iter().map(|g| &**g).collect();
            snapshot::write_snapshot(&snapshot_path, &refs)?;
        }
        // Crash window between snapshot install and WAL truncation: safe,
        // because replay on top of the new snapshot is idempotent (explicit
        // ids; inserts replace). Pinned by fault-injection tests.
        failpoint::check("db.checkpoint.truncate")?;
        // Truncate by recreating the file, then swap the writer handle.
        std::fs::write(&wal_path, [])?;
        *wal_guard = WalWriter::open(&wal_path, p.sync_mode == WalSync::EveryAppend)?;
        Ok(())
    }

    /// Is this database persistent?
    pub fn is_persistent(&self) -> bool {
        self.persistence.is_some()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("collections", &self.collection_names())
            .field("persistent", &self.is_persistent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cryptext-db-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed(db: &Database) {
        db.create_collection("tokens").unwrap();
        db.create_index("tokens", "codes").unwrap();
        for (t, codes) in [
            ("the", vec!["TH000"]),
            ("thee", vec!["TH000"]),
            ("dirrrty", vec!["DI630"]),
        ] {
            db.insert(
                "tokens",
                Document::new().with("token", t).with(
                    "codes",
                    codes.into_iter().map(Value::from).collect::<Vec<_>>(),
                ),
            )
            .unwrap();
        }
    }

    #[test]
    fn in_memory_crud() {
        let db = Database::in_memory();
        seed(&db);
        assert_eq!(db.len("tokens").unwrap(), 3);
        let hits = db.find("tokens", &Filter::eq("codes", "TH000")).unwrap();
        assert_eq!(hits.len(), 2);
        let (id, _) = hits[0].clone();
        db.update("tokens", id, Document::new().with("token", "THE"))
            .unwrap();
        assert_eq!(
            db.get("tokens", id).unwrap().unwrap().get("token"),
            Some(&Value::from("THE"))
        );
        assert!(db.delete("tokens", id).unwrap());
        assert_eq!(db.len("tokens").unwrap(), 2);
    }

    #[test]
    fn missing_collection_errors() {
        let db = Database::in_memory();
        assert!(db.insert("nope", Document::new()).is_err());
        assert!(db.find("nope", &Filter::All).is_err());
        assert!(matches!(db.len("nope").unwrap_err(), Error::NotFound(_)));
    }

    #[test]
    fn collections_with_prefix_filters_and_sorts() {
        let db = Database::in_memory();
        for name in ["tokens", "tokens__shard1", "tokens__shard0", "other"] {
            db.create_collection(name).unwrap();
        }
        assert_eq!(
            db.collections_with_prefix("tokens__shard"),
            vec!["tokens__shard0".to_string(), "tokens__shard1".to_string()]
        );
        assert!(db.collections_with_prefix("nope").is_empty());
    }

    #[test]
    fn rename_collection_replaces_destination_and_survives_recovery() {
        let dir = tmp_dir("rename");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            seed(&db); // "tokens" with 3 docs
            db.create_collection("tokens__staging").unwrap();
            db.create_index("tokens__staging", "codes").unwrap();
            db.insert("tokens__staging", Document::new().with("token", "fresh"))
                .unwrap();
            db.rename_collection("tokens__staging", "tokens").unwrap();
            assert_eq!(db.len("tokens").unwrap(), 1, "destination replaced");
            assert!(!db.has_collection("tokens__staging"));
        }
        // The swap is one WAL record: recovery replays it atomically.
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.len("tokens").unwrap(), 1);
        assert!(!db.has_collection("tokens__staging"));
        // The renamed collection's own name field followed it (snapshots
        // key on it).
        db.checkpoint().unwrap();
        drop(db);
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.len("tokens").unwrap(), 1, "consistent after snapshot");
    }

    #[test]
    fn rename_missing_collection_errors() {
        let db = Database::in_memory();
        assert!(matches!(
            db.rename_collection("nope", "x").unwrap_err(),
            Error::NotFound(_)
        ));
    }

    #[test]
    fn checkpoint_crash_before_truncate_recovers_idempotently() {
        // Crash window between snapshot install and WAL truncation: the
        // snapshot already holds the state and the stale WAL replays on
        // top of it. Replay is idempotent (explicit ids, replacing
        // inserts), so the reopened state matches exactly.
        let dir = tmp_dir("ckpt-crash");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            seed(&db);
            cryptext_common::failpoint::reset_hits();
            let _g = cryptext_common::failpoint::arm("db.checkpoint.truncate", "kill@1");
            let err = db.checkpoint().unwrap_err();
            assert!(cryptext_common::failpoint::is_injected(&err));
        }
        assert!(
            std::fs::metadata(dir.join("wal.log")).unwrap().len() > 0,
            "WAL survived (truncate never ran)"
        );
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.len("tokens").unwrap(), 3, "snapshot + stale WAL replay");
        assert_eq!(
            db.find("tokens", &Filter::eq("codes", "TH000"))
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn create_collection_idempotent() {
        let db = Database::in_memory();
        db.create_collection("c").unwrap();
        db.insert("c", Document::new().with("x", 1i64)).unwrap();
        db.create_collection("c").unwrap();
        assert_eq!(db.len("c").unwrap(), 1, "re-create does not clear");
    }

    #[test]
    fn persistent_recovery_from_wal_only() {
        let dir = tmp_dir("wal-only");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            seed(&db);
        } // dropped without checkpoint: WAL is the only record
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.len("tokens").unwrap(), 3);
        let hits = db.find("tokens", &Filter::eq("codes", "TH000")).unwrap();
        assert_eq!(hits.len(), 2, "indexes rebuilt through WAL replay");
    }

    #[test]
    fn persistent_recovery_from_snapshot_plus_wal() {
        let dir = tmp_dir("snap-wal");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            seed(&db);
            db.checkpoint().unwrap();
            // Post-checkpoint mutations only live in the new WAL.
            db.insert(
                "tokens",
                Document::new()
                    .with("token", "new")
                    .with("codes", vec!["NE000"]),
            )
            .unwrap();
        }
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.len("tokens").unwrap(), 4);
        assert_eq!(
            db.find("tokens", &Filter::eq("codes", "NE000"))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn ids_continue_after_recovery() {
        let dir = tmp_dir("ids");
        let last_id;
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            db.create_collection("c").unwrap();
            db.insert("c", Document::new().with("n", 0i64)).unwrap();
            last_id = db.insert("c", Document::new().with("n", 1i64)).unwrap();
        }
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        let next = db.insert("c", Document::new().with("n", 2i64)).unwrap();
        assert!(next.0 > last_id.0, "no id reuse after recovery");
    }

    #[test]
    fn torn_wal_tail_recovers_prefix() {
        let dir = tmp_dir("torn");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            seed(&db);
        }
        // Tear the last few bytes off the WAL.
        let wal_path = dir.join("wal.log");
        let data = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &data[..data.len() - 5]).unwrap();
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        // Last insert lost, earlier ones intact.
        assert_eq!(db.len("tokens").unwrap(), 2);
        // And the database re-checkpointed, so reopening is clean.
        drop(db);
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.len("tokens").unwrap(), 2);
    }

    #[test]
    fn open_with_corrupt_snapshot_is_error_not_panic() {
        // The startup load path: a snapshot file that is garbage, or one
        // with a valid frame but absurd structural counts, must surface as
        // `Err` from `open` — the process stays alive to report it.
        let dir = tmp_dir("corrupt-snap");
        std::fs::write(dir.join("db.snapshot"), b"CXDBgarbage-not-a-snapshot").unwrap();
        assert!(Database::open(&dir, DbOptions::default()).is_err());

        // Truncated snapshot (half a real one).
        let dir2 = tmp_dir("trunc-snap");
        {
            let db = Database::open(&dir2, DbOptions::default()).unwrap();
            seed(&db);
            db.checkpoint().unwrap();
        }
        let snap = std::fs::read(dir2.join("db.snapshot")).unwrap();
        std::fs::write(dir2.join("db.snapshot"), &snap[..snap.len() / 2]).unwrap();
        assert!(Database::open(&dir2, DbOptions::default()).is_err());
    }

    #[test]
    fn open_with_garbage_wal_recovers_snapshot_state() {
        // Snapshot intact, WAL replaced with garbage: replay treats it as
        // a torn log, recovers the checkpointed state, and re-checkpoints.
        let dir = tmp_dir("garbage-wal");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            seed(&db);
            db.checkpoint().unwrap();
        }
        std::fs::write(dir.join("wal.log"), [0xFFu8; 64]).unwrap();
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.len("tokens").unwrap(), 3, "snapshot state intact");
        drop(db);
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert_eq!(db.len("tokens").unwrap(), 3, "clean after re-checkpoint");
    }

    #[test]
    fn checkpoint_truncates_wal() {
        let dir = tmp_dir("ckpt");
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        seed(&db);
        let wal_len_before = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert!(wal_len_before > 0);
        db.checkpoint().unwrap();
        let wal_len_after = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert_eq!(wal_len_after, 0);
        assert!(dir.join("db.snapshot").exists());
    }

    #[test]
    fn drop_collection_survives_recovery() {
        let dir = tmp_dir("drop");
        {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            seed(&db);
            db.drop_collection("tokens").unwrap();
        }
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        assert!(!db.has_collection("tokens"));
    }

    #[test]
    fn every_append_sync_mode_works() {
        let dir = tmp_dir("sync");
        let db = Database::open(
            &dir,
            DbOptions {
                wal_sync: WalSync::EveryAppend,
            },
        )
        .unwrap();
        seed(&db);
        assert_eq!(db.len("tokens").unwrap(), 3);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        use std::sync::Arc;
        let db = Arc::new(Database::in_memory());
        db.create_collection("c").unwrap();
        db.create_index("c", "shard").unwrap();
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..100i64 {
                    db.insert("c", Document::new().with("shard", t).with("i", i))
                        .unwrap();
                    let _ = db.find("c", &Filter::eq("shard", t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len("c").unwrap(), 400);
        for t in 0..4i64 {
            assert_eq!(db.count("c", &Filter::eq("shard", t)).unwrap(), 100);
        }
    }

    #[test]
    fn read_collection_gives_zero_copy_access() {
        let db = Database::in_memory();
        seed(&db);
        let n = db
            .read_collection("tokens", |c| {
                c.scan().filter(|(_, d)| d.get("token").is_some()).count()
            })
            .unwrap();
        assert_eq!(n, 3);
    }
}
