//! Write-ahead log.
//!
//! Every mutation is appended here before being applied in memory. Records
//! are framed `[len: u32][crc32: u32][payload]`; recovery reads frames
//! until end-of-file or the first frame whose length/CRC fails, treating a
//! torn tail (a crash mid-append) as a clean end of log — standard
//! ARIES-style physical logging, minus the undo side because applies happen
//! strictly after append.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cryptext_common::{Error, Result};

use crate::encoding::{crc32, decode_document, encode_document, get_str, put_str};
use crate::value::Document;

/// One logical WAL operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A collection came into existence.
    CreateCollection {
        /// Collection name.
        name: String,
    },
    /// A collection was dropped.
    DropCollection {
        /// Collection name.
        name: String,
    },
    /// A secondary index was created.
    CreateIndex {
        /// Collection name.
        collection: String,
        /// Indexed field path.
        field: String,
    },
    /// A document was inserted (or replaced at an explicit id).
    Insert {
        /// Collection name.
        collection: String,
        /// Assigned document id.
        id: u64,
        /// Full document payload.
        doc: Document,
    },
    /// A document was replaced.
    Update {
        /// Collection name.
        collection: String,
        /// Target document id.
        id: u64,
        /// New document payload.
        doc: Document,
    },
    /// A document was deleted.
    Delete {
        /// Collection name.
        collection: String,
        /// Target document id.
        id: u64,
    },
}

const OP_CREATE_COLLECTION: u8 = 1;
const OP_DROP_COLLECTION: u8 = 2;
const OP_CREATE_INDEX: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_UPDATE: u8 = 5;
const OP_DELETE: u8 = 6;

impl WalOp {
    /// Encode the op payload (without framing).
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            WalOp::CreateCollection { name } => {
                buf.put_u8(OP_CREATE_COLLECTION);
                put_str(&mut buf, name);
            }
            WalOp::DropCollection { name } => {
                buf.put_u8(OP_DROP_COLLECTION);
                put_str(&mut buf, name);
            }
            WalOp::CreateIndex { collection, field } => {
                buf.put_u8(OP_CREATE_INDEX);
                put_str(&mut buf, collection);
                put_str(&mut buf, field);
            }
            WalOp::Insert {
                collection,
                id,
                doc,
            } => {
                buf.put_u8(OP_INSERT);
                put_str(&mut buf, collection);
                buf.put_u64_le(*id);
                encode_document(doc, &mut buf);
            }
            WalOp::Update {
                collection,
                id,
                doc,
            } => {
                buf.put_u8(OP_UPDATE);
                put_str(&mut buf, collection);
                buf.put_u64_le(*id);
                encode_document(doc, &mut buf);
            }
            WalOp::Delete { collection, id } => {
                buf.put_u8(OP_DELETE);
                put_str(&mut buf, collection);
                buf.put_u64_le(*id);
            }
        }
        buf
    }

    /// Decode an op payload.
    pub fn decode(mut buf: Bytes) -> Result<WalOp> {
        if buf.is_empty() {
            return Err(Error::corrupt("empty wal record"));
        }
        let tag = buf.get_u8();
        let op = match tag {
            OP_CREATE_COLLECTION => WalOp::CreateCollection {
                name: get_str(&mut buf)?,
            },
            OP_DROP_COLLECTION => WalOp::DropCollection {
                name: get_str(&mut buf)?,
            },
            OP_CREATE_INDEX => WalOp::CreateIndex {
                collection: get_str(&mut buf)?,
                field: get_str(&mut buf)?,
            },
            OP_INSERT => {
                let collection = get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(Error::corrupt("truncated insert record"));
                }
                let id = buf.get_u64_le();
                let doc = decode_document(&mut buf)?;
                WalOp::Insert {
                    collection,
                    id,
                    doc,
                }
            }
            OP_UPDATE => {
                let collection = get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(Error::corrupt("truncated update record"));
                }
                let id = buf.get_u64_le();
                let doc = decode_document(&mut buf)?;
                WalOp::Update {
                    collection,
                    id,
                    doc,
                }
            }
            OP_DELETE => {
                let collection = get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(Error::corrupt("truncated delete record"));
                }
                let id = buf.get_u64_le();
                WalOp::Delete { collection, id }
            }
            other => return Err(Error::corrupt(format!("unknown wal op tag {other}"))),
        };
        if !buf.is_empty() {
            return Err(Error::corrupt("trailing bytes in wal record"));
        }
        Ok(op)
    }
}

/// Append-side handle to a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    writer: BufWriter<File>,
    sync_every_append: bool,
    appended: u64,
}

impl WalWriter {
    /// Open (creating if missing) the WAL at `path` for appending.
    pub fn open(path: &Path, sync_every_append: bool) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            writer: BufWriter::new(file),
            sync_every_append,
            appended: 0,
        })
    }

    /// Append one framed record; flushes (and optionally fsyncs) before
    /// returning, so a successful append is at worst torn, never silent.
    pub fn append(&mut self, op: &WalOp) -> Result<()> {
        let payload = op.encode();
        let mut frame = BytesMut::with_capacity(payload.len() + 8);
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(&payload));
        frame.extend_from_slice(&payload);
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        if self.sync_every_append {
            self.writer.get_ref().sync_data()?;
        }
        self.appended += 1;
        Ok(())
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Force an fsync regardless of the per-append setting.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }
}

/// Outcome of reading a WAL file.
#[derive(Debug)]
pub struct WalReadResult {
    /// Successfully decoded operations, in append order.
    pub ops: Vec<WalOp>,
    /// True when the file ended with a torn/corrupt frame that was
    /// discarded (expected after a crash; alarming otherwise).
    pub truncated_tail: bool,
}

/// Read all intact records from the WAL at `path`. A missing file reads as
/// an empty log.
pub fn read_wal(path: &Path) -> Result<WalReadResult> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReadResult {
                ops: Vec::new(),
                truncated_tail: false,
            })
        }
        Err(e) => return Err(e.into()),
    }

    let mut ops = Vec::new();
    let mut offset = 0usize;
    let mut truncated_tail = false;
    while offset < data.len() {
        if data.len() - offset < 8 {
            truncated_tail = true;
            break;
        }
        let len =
            u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let body_start = offset + 8;
        if data.len() - body_start < len {
            truncated_tail = true;
            break;
        }
        let payload = &data[body_start..body_start + len];
        if crc32(payload) != crc {
            truncated_tail = true;
            break;
        }
        match WalOp::decode(Bytes::copy_from_slice(payload)) {
            Ok(op) => ops.push(op),
            Err(_) => {
                truncated_tail = true;
                break;
            }
        }
        offset = body_start + len;
    }
    Ok(WalReadResult {
        ops,
        truncated_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cryptext-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::CreateCollection {
                name: "tokens".into(),
            },
            WalOp::CreateIndex {
                collection: "tokens".into(),
                field: "codes".into(),
            },
            WalOp::Insert {
                collection: "tokens".into(),
                id: 0,
                doc: Document::new().with("token", "the").with("count", 1i64),
            },
            WalOp::Update {
                collection: "tokens".into(),
                id: 0,
                doc: Document::new().with("token", "the").with("count", 2i64),
            },
            WalOp::Delete {
                collection: "tokens".into(),
                id: 0,
            },
            WalOp::DropCollection {
                name: "tokens".into(),
            },
        ]
    }

    #[test]
    fn ops_encode_decode_round_trip() {
        for op in sample_ops() {
            let encoded = op.encode().freeze();
            assert_eq!(WalOp::decode(encoded).unwrap(), op);
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut buf = WalOp::CreateCollection { name: "x".into() }.encode();
        buf.put_u8(0xFF);
        assert!(WalOp::decode(buf.freeze()).is_err());
    }

    #[test]
    fn append_then_read_back() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
            assert_eq!(w.appended(), ops.len() as u64);
        }
        let read = read_wal(&path).unwrap();
        assert_eq!(read.ops, ops);
        assert!(!read.truncated_tail);
    }

    #[test]
    fn missing_file_is_empty_log() {
        let dir = tmp_dir("missing");
        let read = read_wal(&dir.join("nope.log")).unwrap();
        assert!(read.ops.is_empty());
        assert!(!read.truncated_tail);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        // Chop bytes off the end to simulate a crash mid-append.
        let full = std::fs::read(&path).unwrap();
        for cut in [1usize, 3, 7] {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let read = read_wal(&path).unwrap();
            assert!(read.truncated_tail, "cut {cut} detected");
            assert_eq!(read.ops, ops[..ops.len() - 1], "only the last record lost");
        }
    }

    #[test]
    fn corrupt_crc_stops_replay_at_that_frame() {
        let dir = tmp_dir("crc");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip one payload byte in the middle of the file.
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let read = read_wal(&path).unwrap();
        assert!(read.truncated_tail);
        assert!(read.ops.len() < ops.len());
        // Whatever was read must be a prefix of the original sequence.
        assert_eq!(read.ops[..], ops[..read.ops.len()]);
    }

    #[test]
    fn garbage_wal_file_reads_as_torn_not_panic() {
        // A WAL replaced wholesale with non-WAL bytes (the load path's
        // worst case) must come back as a clean empty-or-prefix read with
        // the torn flag set — never a panic or abort during replay.
        let dir = tmp_dir("garbage");
        let path = dir.join("wal.log");
        std::fs::write(&path, [0xDEu8, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03]).unwrap();
        let read = read_wal(&path).unwrap();
        assert!(read.ops.is_empty());
        assert!(read.truncated_tail);
    }

    #[test]
    fn absurd_frame_length_is_torn_tail() {
        // A frame header declaring a body far past end-of-file: the reader
        // must treat it as a torn tail instead of slicing out of bounds or
        // allocating the declared length.
        let dir = tmp_dir("absurd-len");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&ops[0]).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes()); // len: absurd
        frame.extend_from_slice(&0u32.to_le_bytes()); // crc: irrelevant
        frame.extend_from_slice(b"short");
        data.extend_from_slice(&frame);
        std::fs::write(&path, &data).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.ops, vec![ops[0].clone()], "intact prefix kept");
        assert!(read.truncated_tail);
    }

    #[test]
    fn append_is_durable_across_reopen() {
        let dir = tmp_dir("reopen");
        let path = dir.join("wal.log");
        {
            let mut w = WalWriter::open(&path, true).unwrap();
            w.append(&WalOp::CreateCollection { name: "a".into() })
                .unwrap();
        }
        {
            let mut w = WalWriter::open(&path, true).unwrap();
            w.append(&WalOp::CreateCollection { name: "b".into() })
                .unwrap();
            w.sync().unwrap();
        }
        let read = read_wal(&path).unwrap();
        assert_eq!(
            read.ops,
            vec![
                WalOp::CreateCollection { name: "a".into() },
                WalOp::CreateCollection { name: "b".into() },
            ]
        );
    }
}
