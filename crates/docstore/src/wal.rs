//! Write-ahead log.
//!
//! Every mutation is appended here before being applied in memory. Records
//! are framed `[len: u32][crc32: u32][payload]`; recovery reads frames
//! until end-of-file or the first frame whose length/CRC fails, treating a
//! torn tail (a crash mid-append) as a clean end of log — standard
//! ARIES-style physical logging, minus the undo side because applies happen
//! strictly after append.
//!
//! The framing layer ([`FrameWriter`], [`read_frames`]) is generic over the
//! payload and is reused by the streaming-ingest delta logs in
//! `cryptext-core`; [`WalWriter`]/[`read_wal`] specialize it to [`WalOp`]
//! payloads.
//!
//! Opening a writer is *recovering*: [`FrameWriter::open`] scans the file
//! and truncates anything past the last intact frame before appending.
//! Without that, a writer reopened after a crash would append fresh frames
//! *after* the torn bytes, and recovery — which stops at the first bad
//! frame — would silently discard every frame written after the crash.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cryptext_common::failpoint::{self, FailAction};
use cryptext_common::{Error, Result};

use crate::encoding::{crc32, decode_document, encode_document, get_str, put_str};
use crate::value::Document;

/// One logical WAL operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A collection came into existence.
    CreateCollection {
        /// Collection name.
        name: String,
    },
    /// A collection was dropped.
    DropCollection {
        /// Collection name.
        name: String,
    },
    /// A secondary index was created.
    CreateIndex {
        /// Collection name.
        collection: String,
        /// Indexed field path.
        field: String,
    },
    /// A document was inserted (or replaced at an explicit id).
    Insert {
        /// Collection name.
        collection: String,
        /// Assigned document id.
        id: u64,
        /// Full document payload.
        doc: Document,
    },
    /// A document was replaced.
    Update {
        /// Collection name.
        collection: String,
        /// Target document id.
        id: u64,
        /// New document payload.
        doc: Document,
    },
    /// A document was deleted.
    Delete {
        /// Collection name.
        collection: String,
        /// Target document id.
        id: u64,
    },
    /// A collection was renamed, replacing any collection already at the
    /// destination name. One WAL record, applied atomically on replay —
    /// this is the commit point crash-safe persists pivot on: build the
    /// new state under a staging name, then rename it over the live name.
    RenameCollection {
        /// Source collection name (must exist).
        from: String,
        /// Destination name; an existing collection here is replaced.
        to: String,
    },
}

const OP_CREATE_COLLECTION: u8 = 1;
const OP_DROP_COLLECTION: u8 = 2;
const OP_CREATE_INDEX: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_UPDATE: u8 = 5;
const OP_DELETE: u8 = 6;
const OP_RENAME_COLLECTION: u8 = 7;

impl WalOp {
    /// Encode the op payload (without framing).
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            WalOp::CreateCollection { name } => {
                buf.put_u8(OP_CREATE_COLLECTION);
                put_str(&mut buf, name);
            }
            WalOp::DropCollection { name } => {
                buf.put_u8(OP_DROP_COLLECTION);
                put_str(&mut buf, name);
            }
            WalOp::CreateIndex { collection, field } => {
                buf.put_u8(OP_CREATE_INDEX);
                put_str(&mut buf, collection);
                put_str(&mut buf, field);
            }
            WalOp::Insert {
                collection,
                id,
                doc,
            } => {
                buf.put_u8(OP_INSERT);
                put_str(&mut buf, collection);
                buf.put_u64_le(*id);
                encode_document(doc, &mut buf);
            }
            WalOp::Update {
                collection,
                id,
                doc,
            } => {
                buf.put_u8(OP_UPDATE);
                put_str(&mut buf, collection);
                buf.put_u64_le(*id);
                encode_document(doc, &mut buf);
            }
            WalOp::Delete { collection, id } => {
                buf.put_u8(OP_DELETE);
                put_str(&mut buf, collection);
                buf.put_u64_le(*id);
            }
            WalOp::RenameCollection { from, to } => {
                buf.put_u8(OP_RENAME_COLLECTION);
                put_str(&mut buf, from);
                put_str(&mut buf, to);
            }
        }
        buf
    }

    /// Decode an op payload.
    pub fn decode(mut buf: Bytes) -> Result<WalOp> {
        if buf.is_empty() {
            return Err(Error::corrupt("empty wal record"));
        }
        let tag = buf.get_u8();
        let op = match tag {
            OP_CREATE_COLLECTION => WalOp::CreateCollection {
                name: get_str(&mut buf)?,
            },
            OP_DROP_COLLECTION => WalOp::DropCollection {
                name: get_str(&mut buf)?,
            },
            OP_CREATE_INDEX => WalOp::CreateIndex {
                collection: get_str(&mut buf)?,
                field: get_str(&mut buf)?,
            },
            OP_INSERT => {
                let collection = get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(Error::corrupt("truncated insert record"));
                }
                let id = buf.get_u64_le();
                let doc = decode_document(&mut buf)?;
                WalOp::Insert {
                    collection,
                    id,
                    doc,
                }
            }
            OP_UPDATE => {
                let collection = get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(Error::corrupt("truncated update record"));
                }
                let id = buf.get_u64_le();
                let doc = decode_document(&mut buf)?;
                WalOp::Update {
                    collection,
                    id,
                    doc,
                }
            }
            OP_DELETE => {
                let collection = get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(Error::corrupt("truncated delete record"));
                }
                let id = buf.get_u64_le();
                WalOp::Delete { collection, id }
            }
            OP_RENAME_COLLECTION => WalOp::RenameCollection {
                from: get_str(&mut buf)?,
                to: get_str(&mut buf)?,
            },
            other => return Err(Error::corrupt(format!("unknown wal op tag {other}"))),
        };
        if !buf.is_empty() {
            return Err(Error::corrupt("trailing bytes in wal record"));
        }
        Ok(op)
    }
}

/// Scan raw log bytes, returning `(intact_len, frames)`: the byte length
/// of the longest prefix made of whole valid frames, and those frames'
/// payloads in order. Everything past `intact_len` is a torn tail.
fn scan_frames(data: &[u8]) -> (usize, Vec<Bytes>) {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        if data.len() - offset < 8 {
            break;
        }
        let len =
            u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let body_start = offset + 8;
        if data.len() - body_start < len {
            break;
        }
        let payload = &data[body_start..body_start + len];
        if crc32(payload) != crc {
            break;
        }
        frames.push(Bytes::copy_from_slice(payload));
        offset = body_start + len;
    }
    (offset, frames)
}

/// Outcome of reading a framed log file.
#[derive(Debug)]
pub struct FrameReadResult {
    /// Payloads of all intact frames, in append order.
    pub frames: Vec<Bytes>,
    /// True when the file ended with a torn/corrupt frame that was
    /// discarded (expected after a crash; alarming otherwise).
    pub truncated_tail: bool,
}

/// Read all intact frames from the log at `path`. A missing file reads as
/// an empty log.
pub fn read_frames(path: &Path) -> Result<FrameReadResult> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(FrameReadResult {
                frames: Vec::new(),
                truncated_tail: false,
            })
        }
        Err(e) => return Err(e.into()),
    }
    let (intact_len, frames) = scan_frames(&data);
    Ok(FrameReadResult {
        frames,
        truncated_tail: intact_len < data.len(),
    })
}

/// Append-side handle to a CRC-framed log file. Generic over payloads;
/// [`WalWriter`] specializes it to [`WalOp`] records, the streaming-ingest
/// delta logs append their own record encodings.
#[derive(Debug)]
pub struct FrameWriter {
    writer: BufWriter<File>,
    sync_every_append: bool,
    appended: u64,
    failpoint: &'static str,
}

impl FrameWriter {
    /// Open (creating if missing) the framed log at `path` for appending,
    /// in recovery mode: any torn tail left by a crash is truncated away
    /// first, so new frames land directly after the last intact one and
    /// stay reachable by recovery scans. `failpoint` names the crash
    /// boundary this writer's appends hit (fault-injection tests).
    pub fn open(path: &Path, sync_every_append: bool, failpoint: &'static str) -> Result<Self> {
        // Scan for the intact prefix and chop off any torn tail.
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let (intact_len, _) = scan_frames(&data);
        if intact_len < data.len() {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(intact_len as u64)?;
            f.sync_data()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FrameWriter {
            writer: BufWriter::new(file),
            sync_every_append,
            appended: 0,
            failpoint,
        })
    }

    /// Append one framed payload; flushes (and optionally fsyncs) before
    /// returning, so a successful append is at worst torn, never silent.
    pub fn append_frame(&mut self, payload: &[u8]) -> Result<()> {
        let mut frame = BytesMut::with_capacity(payload.len() + 8);
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(payload));
        frame.extend_from_slice(payload);
        match failpoint::trigger(self.failpoint) {
            Some(FailAction::Kill) => return Err(failpoint::injected(self.failpoint)),
            Some(FailAction::Torn(k)) => {
                // Simulate a crash mid-write(2): the first k bytes of the
                // frame reach the file, then the "process dies".
                self.writer.write_all(&frame[..k.min(frame.len())])?;
                self.writer.flush()?;
                return Err(failpoint::injected(self.failpoint));
            }
            Some(FailAction::Delay(ms)) => {
                // A slow disk, not a dead one: stall, then write normally.
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            None => {}
        }
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        if self.sync_every_append {
            self.writer.get_ref().sync_data()?;
        }
        self.appended += 1;
        Ok(())
    }

    /// Frames appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Force an fsync regardless of the per-append setting.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }
}

/// Append-side handle to a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    inner: FrameWriter,
}

impl WalWriter {
    /// Open (creating if missing) the WAL at `path` for appending. Opens in
    /// recovery mode: a torn tail from a prior crash is truncated before
    /// the first append (see [`FrameWriter::open`]).
    pub fn open(path: &Path, sync_every_append: bool) -> Result<Self> {
        Ok(WalWriter {
            inner: FrameWriter::open(path, sync_every_append, "wal.append")?,
        })
    }

    /// Append one framed record; flushes (and optionally fsyncs) before
    /// returning, so a successful append is at worst torn, never silent.
    pub fn append(&mut self, op: &WalOp) -> Result<()> {
        self.inner.append_frame(&op.encode())
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.inner.appended()
    }

    /// Force an fsync regardless of the per-append setting.
    pub fn sync(&mut self) -> Result<()> {
        self.inner.sync()
    }
}

/// Outcome of reading a WAL file.
#[derive(Debug)]
pub struct WalReadResult {
    /// Successfully decoded operations, in append order.
    pub ops: Vec<WalOp>,
    /// True when the file ended with a torn/corrupt frame that was
    /// discarded (expected after a crash; alarming otherwise).
    pub truncated_tail: bool,
}

/// Read all intact records from the WAL at `path`. A missing file reads as
/// an empty log.
pub fn read_wal(path: &Path) -> Result<WalReadResult> {
    let read = read_frames(path)?;
    let mut ops = Vec::with_capacity(read.frames.len());
    let mut truncated_tail = read.truncated_tail;
    for payload in read.frames {
        match WalOp::decode(payload) {
            Ok(op) => ops.push(op),
            Err(_) => {
                // CRC-valid but undecodable: treat like a torn tail so the
                // prefix still recovers.
                truncated_tail = true;
                break;
            }
        }
    }
    Ok(WalReadResult {
        ops,
        truncated_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cryptext-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::CreateCollection {
                name: "tokens".into(),
            },
            WalOp::CreateIndex {
                collection: "tokens".into(),
                field: "codes".into(),
            },
            WalOp::Insert {
                collection: "tokens".into(),
                id: 0,
                doc: Document::new().with("token", "the").with("count", 1i64),
            },
            WalOp::Update {
                collection: "tokens".into(),
                id: 0,
                doc: Document::new().with("token", "the").with("count", 2i64),
            },
            WalOp::Delete {
                collection: "tokens".into(),
                id: 0,
            },
            WalOp::RenameCollection {
                from: "tokens__staging".into(),
                to: "tokens".into(),
            },
            WalOp::DropCollection {
                name: "tokens".into(),
            },
        ]
    }

    #[test]
    fn ops_encode_decode_round_trip() {
        for op in sample_ops() {
            let encoded = op.encode().freeze();
            assert_eq!(WalOp::decode(encoded).unwrap(), op);
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut buf = WalOp::CreateCollection { name: "x".into() }.encode();
        buf.put_u8(0xFF);
        assert!(WalOp::decode(buf.freeze()).is_err());
    }

    #[test]
    fn append_then_read_back() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
            assert_eq!(w.appended(), ops.len() as u64);
        }
        let read = read_wal(&path).unwrap();
        assert_eq!(read.ops, ops);
        assert!(!read.truncated_tail);
    }

    #[test]
    fn missing_file_is_empty_log() {
        let dir = tmp_dir("missing");
        let read = read_wal(&dir.join("nope.log")).unwrap();
        assert!(read.ops.is_empty());
        assert!(!read.truncated_tail);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        // Chop bytes off the end to simulate a crash mid-append.
        let full = std::fs::read(&path).unwrap();
        for cut in [1usize, 3, 7] {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let read = read_wal(&path).unwrap();
            assert!(read.truncated_tail, "cut {cut} detected");
            assert_eq!(read.ops, ops[..ops.len() - 1], "only the last record lost");
        }
    }

    #[test]
    fn reopen_after_torn_tail_truncates_then_appends() {
        // The crash-recovery append path: a torn tail must not poison
        // frames appended after reopen. Before `open` recovered, the new
        // frame landed after the garbage bytes and `read_wal` — which
        // stops at the first bad frame — never saw it.
        let dir = tmp_dir("torn-reopen");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        for cut in [1usize, 3, 7, 11] {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            {
                let mut w = WalWriter::open(&path, false).unwrap();
                w.append(&WalOp::CreateCollection {
                    name: "post-crash".into(),
                })
                .unwrap();
            }
            let read = read_wal(&path).unwrap();
            assert!(!read.truncated_tail, "cut {cut}: tail was truncated");
            let mut want = ops[..ops.len() - 1].to_vec();
            want.push(WalOp::CreateCollection {
                name: "post-crash".into(),
            });
            assert_eq!(read.ops, want, "cut {cut}: prefix + post-crash append");
        }
    }

    #[test]
    fn corrupt_crc_stops_replay_at_that_frame() {
        let dir = tmp_dir("crc");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip one payload byte in the middle of the file.
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let read = read_wal(&path).unwrap();
        assert!(read.truncated_tail);
        assert!(read.ops.len() < ops.len());
        // Whatever was read must be a prefix of the original sequence.
        assert_eq!(read.ops[..], ops[..read.ops.len()]);
    }

    #[test]
    fn garbage_wal_file_reads_as_torn_not_panic() {
        // A WAL replaced wholesale with non-WAL bytes (the load path's
        // worst case) must come back as a clean empty-or-prefix read with
        // the torn flag set — never a panic or abort during replay.
        let dir = tmp_dir("garbage");
        let path = dir.join("wal.log");
        std::fs::write(&path, [0xDEu8, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03]).unwrap();
        let read = read_wal(&path).unwrap();
        assert!(read.ops.is_empty());
        assert!(read.truncated_tail);
    }

    #[test]
    fn absurd_frame_length_is_torn_tail() {
        // A frame header declaring a body far past end-of-file: the reader
        // must treat it as a torn tail instead of slicing out of bounds or
        // allocating the declared length.
        let dir = tmp_dir("absurd-len");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            w.append(&ops[0]).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes()); // len: absurd
        frame.extend_from_slice(&0u32.to_le_bytes()); // crc: irrelevant
        frame.extend_from_slice(b"short");
        data.extend_from_slice(&frame);
        std::fs::write(&path, &data).unwrap();
        let read = read_wal(&path).unwrap();
        assert_eq!(read.ops, vec![ops[0].clone()], "intact prefix kept");
        assert!(read.truncated_tail);
    }

    #[test]
    fn append_is_durable_across_reopen() {
        let dir = tmp_dir("reopen");
        let path = dir.join("wal.log");
        {
            let mut w = WalWriter::open(&path, true).unwrap();
            w.append(&WalOp::CreateCollection { name: "a".into() })
                .unwrap();
        }
        {
            let mut w = WalWriter::open(&path, true).unwrap();
            w.append(&WalOp::CreateCollection { name: "b".into() })
                .unwrap();
            w.sync().unwrap();
        }
        let read = read_wal(&path).unwrap();
        assert_eq!(
            read.ops,
            vec![
                WalOp::CreateCollection { name: "a".into() },
                WalOp::CreateCollection { name: "b".into() },
            ]
        );
    }

    #[test]
    fn generic_frames_round_trip() {
        let dir = tmp_dir("frames");
        let path = dir.join("delta.log");
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"\x00\x01\x02", b"last"];
        {
            let mut w = FrameWriter::open(&path, false, "test.append").unwrap();
            for p in &payloads {
                w.append_frame(p).unwrap();
            }
            assert_eq!(w.appended(), payloads.len() as u64);
        }
        let read = read_frames(&path).unwrap();
        assert!(!read.truncated_tail);
        let got: Vec<&[u8]> = read.frames.iter().map(|b| b.as_ref()).collect();
        assert_eq!(got, payloads);
    }

    #[test]
    fn failpoint_kill_leaves_no_partial_frame() {
        let dir = tmp_dir("fp-kill");
        let path = dir.join("wal.log");
        let mut w = WalWriter::open(&path, false).unwrap();
        w.append(&WalOp::CreateCollection { name: "a".into() })
            .unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        {
            cryptext_common::failpoint::reset_hits();
            let _g = cryptext_common::failpoint::arm("wal.append", "kill@1");
            let err = w
                .append(&WalOp::CreateCollection { name: "b".into() })
                .unwrap_err();
            assert!(cryptext_common::failpoint::is_injected(&err));
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            before,
            "kill fires before any bytes are written"
        );
        let read = read_wal(&path).unwrap();
        assert_eq!(read.ops.len(), 1);
        assert!(!read.truncated_tail);
    }

    #[test]
    fn kill_at_every_byte_prefix_recovers_valid_prefix_state() {
        // Exhaustive crash simulation: truncate the log at *every* byte
        // offset. Whatever the cut, reading must not panic, must yield a
        // prefix of the original op sequence, and a writer reopened on the
        // wreckage must recover (truncate the tail) and append cleanly.
        let dir = tmp_dir("every-prefix");
        let path = dir.join("wal.log");
        let ops = sample_ops();
        {
            let mut w = WalWriter::open(&path, false).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let read = read_wal(&path).unwrap();
            assert!(read.ops.len() <= ops.len());
            assert_eq!(
                read.ops[..],
                ops[..read.ops.len()],
                "cut {cut}: recovered ops must be a prefix"
            );
            // Reopen-and-append must leave a clean log: prefix + new op.
            {
                let mut w = WalWriter::open(&path, false).unwrap();
                w.append(&WalOp::CreateCollection { name: "z".into() })
                    .unwrap();
            }
            let after = read_wal(&path).unwrap();
            assert!(!after.truncated_tail, "cut {cut}: clean after recovery");
            assert_eq!(
                after.ops.last(),
                Some(&WalOp::CreateCollection { name: "z".into() }),
                "cut {cut}: post-recovery append visible"
            );
            assert_eq!(after.ops.len(), read.ops.len() + 1);
        }
    }

    #[test]
    fn failpoint_torn_write_recovers_to_prefix() {
        let dir = tmp_dir("fp-torn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::open(&path, false).unwrap();
        w.append(&WalOp::CreateCollection { name: "a".into() })
            .unwrap();
        {
            cryptext_common::failpoint::reset_hits();
            let _g = cryptext_common::failpoint::arm("wal.append", "torn@1:6");
            let err = w
                .append(&WalOp::CreateCollection { name: "b".into() })
                .unwrap_err();
            assert!(cryptext_common::failpoint::is_injected(&err));
        }
        // 6 bytes of the new frame are on disk: a torn tail.
        let read = read_wal(&path).unwrap();
        assert_eq!(read.ops, vec![WalOp::CreateCollection { name: "a".into() }]);
        assert!(read.truncated_tail);
        // Reopen recovers: truncate the torn bytes, append cleanly.
        let mut w = WalWriter::open(&path, false).unwrap();
        w.append(&WalOp::CreateCollection { name: "c".into() })
            .unwrap();
        let read = read_wal(&path).unwrap();
        assert!(!read.truncated_tail);
        assert_eq!(
            read.ops,
            vec![
                WalOp::CreateCollection { name: "a".into() },
                WalOp::CreateCollection { name: "c".into() },
            ]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary bytes fed to the frame scanner either parse as a
        /// valid frame prefix or stop — never a panic, never an
        /// out-of-bounds slice. (Recovery runs this over whatever a crash
        /// left on disk.)
        #[test]
        fn scan_frames_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let (intact_len, frames) = scan_frames(&bytes);
            prop_assert!(intact_len <= bytes.len());
            // Re-scanning the intact prefix reproduces the same frames.
            let (len2, frames2) = scan_frames(&bytes[..intact_len]);
            prop_assert_eq!(len2, intact_len);
            prop_assert_eq!(frames2, frames);
        }

        /// A log of arbitrary payload frames truncated at an arbitrary
        /// offset always scans to a prefix of the payload sequence.
        #[test]
        fn truncated_frame_log_scans_to_prefix(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..32), 0..8),
            cut_pct in 0u32..=100,
        ) {
            let mut data = Vec::new();
            for p in &payloads {
                data.extend_from_slice(&(p.len() as u32).to_le_bytes());
                data.extend_from_slice(&crc32(p).to_le_bytes());
                data.extend_from_slice(p);
            }
            let cut = data.len() * (cut_pct as usize) / 100;
            let (_, frames) = scan_frames(&data[..cut.min(data.len())]);
            prop_assert!(frames.len() <= payloads.len());
            for (got, want) in frames.iter().zip(payloads.iter()) {
                prop_assert_eq!(got.as_ref(), &want[..]);
            }
        }
    }
}
