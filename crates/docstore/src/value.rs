//! The dynamic value model: a BSON-like [`Value`] and the [`Document`]
//! wrapper stored in collections.

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically-typed database value.
///
/// Deliberately small: the CrypText schema needs strings, numbers, bools,
/// arrays and nested objects. `Float` keeps raw `f64`; index keys canonicalize
/// NaN separately (see [`crate::index`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// Absent/None.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list.
    Array(Vec<Value>),
    /// String-keyed object with deterministic (sorted) iteration order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// As a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an i64, if integral.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// As an f64; integers widen losslessly for small magnitudes.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// As a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Navigate a dotted path (`"stats.count"`). A path segment applied to
    /// a non-object yields `None`.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut current = self;
        for seg in path.split('.') {
            current = current.as_object()?.get(seg)?;
        }
        Some(current)
    }

    /// Total order across all values, used by range filters: by type rank
    /// first (null < bool < numbers < str < array < object), numerics
    /// compared cross-type, NaN greater than every number.
    pub fn cmp_total(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                Array(_) => 4,
                Object(_) => 5,
            }
        }
        match (self, other) {
            (Null, Null) => Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (a @ (Int(_) | Float(_)), b @ (Int(_) | Float(_))) => {
                let fa = a.as_float().expect("numeric");
                let fb = b.as_float().expect("numeric");
                fa.partial_cmp(&fb).unwrap_or_else(|| {
                    // NaN sorts above all numbers; two NaNs tie.
                    match (fa.is_nan(), fb.is_nan()) {
                        (true, true) => Equal,
                        (true, false) => Greater,
                        (false, true) => Less,
                        (false, false) => unreachable!("partial_cmp covered"),
                    }
                })
            }
            (Str(a), Str(b)) => a.cmp(b),
            (Array(a), Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.cmp_total(y);
                    if ord != Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Object(a), Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.cmp_total(vb));
                    if ord != Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(o) => {
                write!(f, "{{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// A document: a named-field record. Stored in a [`Collection`] under a
/// [`DocId`](crate::collection::DocId) assigned at insert time.
///
/// [`Collection`]: crate::collection::Collection
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Document {
    fields: BTreeMap<String, Value>,
}

impl Document {
    /// Empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// Builder-style field setter.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.insert(key.into(), value.into());
        self
    }

    /// Insert or replace a field.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.insert(key.into(), value.into());
    }

    /// Fetch a field or nested path (dotted).
    pub fn get(&self, path: &str) -> Option<&Value> {
        match path.split_once('.') {
            None => self.fields.get(path),
            Some((head, rest)) => self.fields.get(head)?.get_path(rest),
        }
    }

    /// Remove a top-level field.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.fields.remove(key)
    }

    /// Iterate fields in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.fields.iter()
    }

    /// Number of top-level fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// View as a [`Value::Object`].
    pub fn to_value(&self) -> Value {
        Value::Object(self.fields.clone())
    }

    /// Build from a [`Value::Object`]; other variants yield `None`.
    pub fn from_value(v: Value) -> Option<Self> {
        match v {
            Value::Object(fields) => Some(Document { fields }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_froms() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from(7i64).as_float(), Some(7.0), "int widens");
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(vec![1i64, 2]).as_array().unwrap().len(), 2);
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn get_path_traverses_objects() {
        let doc = Document::new().with(
            "stats",
            Value::Object(BTreeMap::from([
                ("count".to_string(), Value::Int(5)),
                (
                    "inner".to_string(),
                    Value::Object(BTreeMap::from([("x".to_string(), Value::Int(9))])),
                ),
            ])),
        );
        assert_eq!(doc.get("stats.count"), Some(&Value::Int(5)));
        assert_eq!(doc.get("stats.inner.x"), Some(&Value::Int(9)));
        assert_eq!(doc.get("stats.missing"), None);
        assert_eq!(doc.get("stats.count.deeper"), None, "non-object dead end");
    }

    #[test]
    fn cmp_total_numeric_cross_type() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.5)), Less);
        assert_eq!(Value::Float(3.0).cmp_total(&Value::Int(3)), Equal);
        assert_eq!(Value::Float(f64::NAN).cmp_total(&Value::Int(1)), Greater);
        assert_eq!(
            Value::Float(f64::NAN).cmp_total(&Value::Float(f64::NAN)),
            Equal
        );
    }

    #[test]
    fn cmp_total_type_ranking() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Null.cmp_total(&Value::Bool(false)), Less);
        assert_eq!(Value::Str("a".into()).cmp_total(&Value::Int(999)), Greater);
        assert_eq!(
            Value::Array(vec![]).cmp_total(&Value::Str("zzz".into())),
            Greater
        );
    }

    #[test]
    fn cmp_total_arrays_lexicographic() {
        use std::cmp::Ordering::*;
        let a = Value::from(vec![1i64, 2]);
        let b = Value::from(vec![1i64, 3]);
        let c = Value::from(vec![1i64, 2, 0]);
        assert_eq!(a.cmp_total(&b), Less);
        assert_eq!(a.cmp_total(&c), Less, "prefix sorts first");
        assert_eq!(a.cmp_total(&a), Equal);
    }

    #[test]
    fn document_round_trips_value() {
        let doc = Document::new()
            .with("token", "demokRATs")
            .with("count", 3i64)
            .with("codes", vec!["DE56232", "DE56233"]);
        let v = doc.to_value();
        assert_eq!(Document::from_value(v), Some(doc));
        assert_eq!(Document::from_value(Value::Int(1)), None);
    }

    #[test]
    fn document_set_remove_len() {
        let mut d = Document::new();
        assert!(d.is_empty());
        d.set("a", 1i64);
        d.set("a", 2i64);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get("a"), Some(&Value::Int(2)));
        assert_eq!(d.remove("a"), Some(Value::Int(2)));
        assert!(d.is_empty());
    }

    #[test]
    fn display_is_stable_and_readable() {
        let d = Document::new().with("b", 1i64).with("a", "x");
        // BTreeMap iteration: sorted keys.
        assert_eq!(d.to_value().to_string(), r#"{"a": "x", "b": 1}"#);
    }
}
