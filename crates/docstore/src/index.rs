//! Secondary hash indexes.
//!
//! A [`HashIndex`] maps a field's value to the set of document ids holding
//! that value. Array-valued fields index **every element** — the property
//! the token database depends on: a token document carries
//! `codes: ["SU243", "SU230"]` and must be found by either code.

use cryptext_common::hash::{FxHashMap, FxHashSet};

use crate::value::{Document, Value};

/// Hashable canonical form of an indexable [`Value`].
///
/// Scalars only; arrays are decomposed into element keys, objects are not
/// indexable. Numeric canonicalization follows the query layer's equality:
/// an integral float keys identically to the integer (`3.0` ≡ `3`), `-0.0`
/// keys as `0`, NaN collapses to one canonical bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// Null key.
    Null,
    /// Boolean key.
    Bool(bool),
    /// Integer key (also integral floats).
    Int(i64),
    /// Non-integral float, keyed by canonical bits.
    FloatBits(u64),
    /// String key.
    Str(String),
}

impl IndexKey {
    /// Canonical key for a scalar value; `None` for arrays/objects.
    pub fn from_value(v: &Value) -> Option<IndexKey> {
        Some(match v {
            Value::Null => IndexKey::Null,
            Value::Bool(b) => IndexKey::Bool(*b),
            Value::Int(i) => IndexKey::Int(*i),
            Value::Float(f) => {
                if f.is_nan() {
                    IndexKey::FloatBits(f64::NAN.to_bits())
                } else if *f == f.trunc() && f.abs() < (1i64 << 62) as f64 {
                    IndexKey::Int(*f as i64)
                } else {
                    // +0.0 for -0.0 is covered by the integral branch.
                    IndexKey::FloatBits(f.to_bits())
                }
            }
            Value::Str(s) => IndexKey::Str(s.clone()),
            Value::Array(_) | Value::Object(_) => return None,
        })
    }
}

/// A hash index over one (dotted) field path.
#[derive(Debug, Default)]
pub struct HashIndex {
    field: String,
    map: FxHashMap<IndexKey, FxHashSet<u64>>,
}

impl HashIndex {
    /// New empty index over `field`.
    pub fn new(field: impl Into<String>) -> Self {
        HashIndex {
            field: field.into(),
            map: FxHashMap::default(),
        }
    }

    /// The indexed field path.
    pub fn field(&self) -> &str {
        &self.field
    }

    fn keys_for(&self, doc: &Document) -> Vec<IndexKey> {
        match doc.get(&self.field) {
            None => Vec::new(),
            Some(Value::Array(items)) => items.iter().filter_map(IndexKey::from_value).collect(),
            Some(v) => IndexKey::from_value(v).into_iter().collect(),
        }
    }

    /// Register `doc` under `id`.
    pub fn insert_doc(&mut self, id: u64, doc: &Document) {
        for key in self.keys_for(doc) {
            self.map.entry(key).or_default().insert(id);
        }
    }

    /// Remove `doc`'s entries for `id`.
    pub fn remove_doc(&mut self, id: u64, doc: &Document) {
        for key in self.keys_for(doc) {
            if let Some(set) = self.map.get_mut(&key) {
                set.remove(&id);
                if set.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Document ids whose field equals (or, for array fields, contains) `v`.
    pub fn lookup(&self, v: &Value) -> impl Iterator<Item = u64> + '_ {
        IndexKey::from_value(v)
            .and_then(|k| self.map.get(&k))
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of (key, id) postings.
    pub fn posting_count(&self) -> usize {
        self.map.values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_key_numeric_canonicalization() {
        assert_eq!(
            IndexKey::from_value(&Value::Float(3.0)),
            Some(IndexKey::Int(3)),
            "integral float keys as int"
        );
        assert_eq!(
            IndexKey::from_value(&Value::Float(-0.0)),
            Some(IndexKey::Int(0))
        );
        assert_eq!(
            IndexKey::from_value(&Value::Float(f64::NAN)),
            IndexKey::from_value(&Value::Float(-f64::NAN)),
            "all NaNs collapse"
        );
        assert_ne!(
            IndexKey::from_value(&Value::Float(0.5)),
            IndexKey::from_value(&Value::Int(0))
        );
    }

    #[test]
    fn arrays_and_objects_not_scalar_keyable() {
        assert_eq!(IndexKey::from_value(&Value::Array(vec![])), None);
        assert_eq!(
            IndexKey::from_value(&Value::Object(Default::default())),
            None
        );
    }

    #[test]
    fn scalar_field_round_trip() {
        let mut idx = HashIndex::new("token");
        let doc = Document::new().with("token", "suic1de");
        idx.insert_doc(7, &doc);
        assert_eq!(
            idx.lookup(&Value::from("suic1de")).collect::<Vec<_>>(),
            vec![7]
        );
        assert_eq!(idx.lookup(&Value::from("other")).count(), 0);
        idx.remove_doc(7, &doc);
        assert_eq!(idx.lookup(&Value::from("suic1de")).count(), 0);
        assert_eq!(idx.key_count(), 0, "empty postings pruned");
    }

    #[test]
    fn array_field_indexes_every_element() {
        let mut idx = HashIndex::new("codes");
        let doc = Document::new().with("codes", vec!["SU243", "SU230"]);
        idx.insert_doc(1, &doc);
        assert_eq!(
            idx.lookup(&Value::from("SU243")).collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(
            idx.lookup(&Value::from("SU230")).collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(idx.posting_count(), 2);
    }

    #[test]
    fn multiple_docs_share_keys() {
        let mut idx = HashIndex::new("code");
        idx.insert_doc(1, &Document::new().with("code", "TH000"));
        idx.insert_doc(2, &Document::new().with("code", "TH000"));
        idx.insert_doc(3, &Document::new().with("code", "DI630"));
        let mut hits: Vec<u64> = idx.lookup(&Value::from("TH000")).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        idx.remove_doc(1, &Document::new().with("code", "TH000"));
        assert_eq!(
            idx.lookup(&Value::from("TH000")).collect::<Vec<_>>(),
            vec![2]
        );
    }

    #[test]
    fn missing_field_not_indexed() {
        let mut idx = HashIndex::new("absent");
        idx.insert_doc(1, &Document::new().with("other", 1i64));
        assert_eq!(idx.key_count(), 0);
    }

    #[test]
    fn nested_path_indexing() {
        let mut idx = HashIndex::new("meta.lang");
        let doc = Document::new().with(
            "meta",
            Value::Object(std::collections::BTreeMap::from([(
                "lang".to_string(),
                Value::Str("en".into()),
            )])),
        );
        idx.insert_doc(4, &doc);
        assert_eq!(idx.lookup(&Value::from("en")).collect::<Vec<_>>(), vec![4]);
    }
}
