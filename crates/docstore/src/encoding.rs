//! Binary encoding of [`Value`]s, documents and WAL frames.
//!
//! A small, versioned, self-describing format (one type-tag byte per value,
//! little-endian fixed-width lengths). Chosen over a textual format because
//! the WAL sits on the write path of every ingest and replays at startup;
//! the encoding is allocation-light and validates eagerly so corruption is
//! caught at the frame that contains it.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cryptext_common::{Error, Result};

use crate::value::{Document, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_ARRAY: u8 = 6;
const TAG_OBJECT: u8 = 7;

/// Append the encoding of `v` to `buf`.
pub fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_str(buf, s);
        }
        Value::Array(items) => {
            buf.put_u8(TAG_ARRAY);
            buf.put_u32_le(items.len() as u32);
            for item in items {
                encode_value(item, buf);
            }
        }
        Value::Object(map) => {
            buf.put_u8(TAG_OBJECT);
            buf.put_u32_le(map.len() as u32);
            for (k, val) in map {
                put_str(buf, k);
                encode_value(val, buf);
            }
        }
    }
}

/// Decode one value from the front of `buf`.
pub fn decode_value(buf: &mut Bytes) -> Result<Value> {
    if buf.is_empty() {
        return Err(Error::corrupt("unexpected end of value stream"));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => {
            ensure(buf, 8)?;
            Value::Int(buf.get_i64_le())
        }
        TAG_FLOAT => {
            ensure(buf, 8)?;
            Value::Float(buf.get_f64_le())
        }
        TAG_STR => Value::Str(get_str(buf)?),
        TAG_ARRAY => {
            ensure(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            // Guard against corrupt lengths demanding absurd allocation:
            // each element needs at least its 1-byte tag.
            if n > buf.remaining() {
                return Err(Error::corrupt(format!("array length {n} exceeds frame")));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(buf)?);
            }
            Value::Array(items)
        }
        TAG_OBJECT => {
            ensure(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            if n > buf.remaining() {
                return Err(Error::corrupt(format!("object length {n} exceeds frame")));
            }
            let mut map = std::collections::BTreeMap::new();
            for _ in 0..n {
                let k = get_str(buf)?;
                let v = decode_value(buf)?;
                map.insert(k, v);
            }
            Value::Object(map)
        }
        other => return Err(Error::corrupt(format!("unknown value tag {other}"))),
    })
}

/// Encode a document (as its object value).
pub fn encode_document(doc: &Document, buf: &mut BytesMut) {
    encode_value(&doc.to_value(), buf);
}

/// Decode a document; errors when the value is not an object.
pub fn decode_document(buf: &mut Bytes) -> Result<Document> {
    let v = decode_value(buf)?;
    Document::from_value(v).ok_or_else(|| Error::corrupt("document is not an object"))
}

/// Append a length-prefixed string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed string.
pub fn get_str(buf: &mut Bytes) -> Result<String> {
    ensure(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    ensure(buf, len)?;
    let bytes = buf.split_to(len);
    String::from_utf8(bytes.to_vec()).map_err(|e| Error::corrupt(format!("invalid utf-8: {e}")))
}

fn ensure(buf: &Bytes, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(Error::corrupt(format!(
            "truncated value: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) used to frame WAL records and
/// validate snapshots. Implemented locally to stay inside the approved
/// dependency set; table generated at first use.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn round_trip(v: &Value) -> Value {
        let mut buf = BytesMut::new();
        encode_value(v, &mut buf);
        let mut bytes = buf.freeze();
        let out = decode_value(&mut bytes).expect("decode");
        assert!(bytes.is_empty(), "all bytes consumed");
        out
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(-0.0),
            Value::Str(String::new()),
            Value::Str("ünïcødé 🙂".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn float_nan_round_trips_as_nan() {
        let out = round_trip(&Value::Float(f64::NAN));
        match out {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Object(BTreeMap::from([
            ("token".to_string(), Value::Str("suic1de".into())),
            (
                "codes".to_string(),
                Value::Array(vec![Value::Str("SU243".into()), Value::Str("SU230".into())]),
            ),
            (
                "meta".to_string(),
                Value::Object(BTreeMap::from([
                    ("count".to_string(), Value::Int(12)),
                    ("ratio".to_string(), Value::Float(0.5)),
                    ("flag".to_string(), Value::Bool(true)),
                    ("nothing".to_string(), Value::Null),
                ])),
            ),
        ]));
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn document_round_trip() {
        let doc = Document::new().with("a", 1i64).with("b", "x");
        let mut buf = BytesMut::new();
        encode_document(&doc, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_document(&mut bytes).unwrap(), doc);
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut bytes = Bytes::from_static(&[99]);
        assert!(decode_value(&mut bytes).is_err());
    }

    #[test]
    fn decode_rejects_truncation_at_every_prefix() {
        let v = Value::Object(BTreeMap::from([(
            "k".to_string(),
            Value::Array(vec![Value::Int(1), Value::Str("s".into())]),
        )]));
        let mut buf = BytesMut::new();
        encode_value(&v, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut prefix = full.slice(0..cut);
            assert!(
                decode_value(&mut prefix).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn decode_rejects_absurd_length() {
        // Array claiming u32::MAX elements with a 1-byte body.
        let mut buf = BytesMut::new();
        buf.put_u8(6);
        buf.put_u32_le(u32::MAX);
        buf.put_u8(0);
        let mut bytes = buf.freeze();
        assert!(decode_value(&mut bytes).is_err());
    }

    #[test]
    fn decode_rejects_non_object_document() {
        let mut buf = BytesMut::new();
        encode_value(&Value::Int(5), &mut buf);
        let mut bytes = buf.freeze();
        assert!(decode_document(&mut bytes).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn value_strategy() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            // Finite floats only: NaN breaks PartialEq round-trip checks.
            (-1e12f64..1e12).prop_map(Value::Float),
            "\\PC{0,16}".prop_map(Value::Str),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
                proptest::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Value::Object),
            ]
        })
    }

    proptest! {
        /// Every value round-trips bit-exactly through the binary encoding.
        #[test]
        fn encode_decode_round_trip(v in value_strategy()) {
            let mut buf = BytesMut::new();
            encode_value(&v, &mut buf);
            let mut bytes = buf.freeze();
            let out = decode_value(&mut bytes).expect("decode");
            prop_assert!(bytes.is_empty());
            prop_assert_eq!(out, v);
        }

        /// Corrupting any single byte of an encoded value either still
        /// decodes (the byte was inert, e.g. inside a string) or errors —
        /// it must never panic.
        #[test]
        fn single_byte_corruption_never_panics(v in value_strategy(), idx in any::<prop::sample::Index>(), flip in 1u8..=255) {
            let mut buf = BytesMut::new();
            encode_value(&v, &mut buf);
            let mut data = buf.to_vec();
            if !data.is_empty() {
                let i = idx.index(data.len());
                data[i] ^= flip;
                let mut bytes = Bytes::from(data);
                let _ = decode_value(&mut bytes); // must not panic
            }
        }
    }
}
